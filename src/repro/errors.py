"""Exception hierarchy for the repro miniature DBMS.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type at the API boundary.  Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SqlError(ReproError):
    """Base class for errors in SQL text (lexing, parsing, semantics)."""


class LexerError(SqlError):
    """Invalid token in SQL text."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """SQL text does not match the grammar."""


class SemanticError(SqlError):
    """SQL is grammatical but invalid against the catalog.

    Examples: unknown table or column, ambiguous column reference, type
    mismatch in a comparison, aggregate misuse.
    """


class CatalogError(ReproError):
    """Catalog manipulation error (duplicate table, unknown index, ...)."""


class StorageError(ReproError):
    """Low-level RSS failure (page overflow, bad TID, segment misuse)."""


class PageFullError(StorageError):
    """A tuple does not fit in the remaining free space of a page."""


class TupleTooLargeError(StorageError):
    """A tuple cannot fit on any page, even an empty one."""


class IntegrityError(ReproError):
    """Constraint violation (duplicate key in a unique index)."""


class PlannerError(ReproError):
    """The optimizer could not produce a plan for a valid query."""


class ExecutionError(ReproError):
    """Runtime failure while executing a plan."""
