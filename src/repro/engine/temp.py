"""Temporary lists: sorted intermediates with real page accounting.

System R sorts into a "temporary list, an internal form which is more
efficient than a relation but which can only be accessed sequentially".
Here a temp list is a private run of real pages: building it writes every
row (one RSI call per insert, page fetches through the buffer pool), and
scanning it back reads the pages sequentially (one RSI call per row), so
sort costs are measured in the same currency the cost model predicts.
"""

from __future__ import annotations

from typing import Iterator

from ..datatypes import DataType
from ..rss.page import Page
from ..rss.storage import StorageEngine
from ..rss.tuples import DecodePlan, encode_tuple
from .rows import Row

#: Relation id tag used for temp records (never a real relation id).
_TEMP_RELATION_ID = 0


class TempList:  # concurrency: statement-scoped
    """A materialized, sequentially readable list of composite rows."""

    def __init__(
        self,
        storage: StorageEngine,
        schema: list[tuple[str, list[DataType]]],
    ):
        self._storage = storage
        self._schema = schema
        self._datatypes = [
            datatype for __, datatypes in schema for datatype in datatypes
        ]
        self._decode_plan = DecodePlan(self._datatypes)
        self._page_ids: list[int] = []
        self._tail_page: Page | None = None
        self.row_count = 0

    def append(self, row: Row) -> None:
        """Write one row (counted: page fetch on new page, one RSI call)."""
        flat = tuple(
            value
            for alias, datatypes in self._schema
            for value in _alias_values(row, alias, len(datatypes))
        )
        record = encode_tuple(_TEMP_RELATION_ID, flat, self._datatypes)
        page = self._tail_page
        if page is None or not page.can_fit(len(record)):
            page = self._storage.store.allocate_data_page(temp=True)
            self._page_ids.append(page.page_id)
            self._storage.buffer.fetch(page.page_id)
            self._tail_page = page
        page.insert(record)
        self._storage.counters.count_rsi_call()
        self.row_count += 1

    def build(self, rows: list[Row]) -> None:
        """Write rows into pages (counted: pages + one RSI per row)."""
        for row in rows:
            self.append(row)

    def scan(self) -> Iterator[Row]:
        """Sequential read-back (counted: pages + one RSI per row)."""
        buffer = self._storage.buffer
        counters = self._storage.counters
        decode = self._decode_plan.decode
        for page_id in self._page_ids:
            page = buffer.fetch(page_id)
            assert isinstance(page, Page)
            for __, record in page.records():
                flat = decode(record)
                counters.count_rsi_call()
                yield self._unflatten(flat)

    def page_count(self) -> int:
        """Number of pages currently allocated."""
        return len(self._page_ids)

    def drop(self) -> None:
        """Free the temp pages."""
        for page_id in self._page_ids:
            self._storage.buffer.invalidate(page_id)
            self._storage.store.free(page_id)
        self._page_ids.clear()
        self._tail_page = None

    def _unflatten(self, flat: tuple) -> Row:
        values: dict[str, tuple] = {}
        offset = 0
        for alias, datatypes in self._schema:
            width = len(datatypes)
            values[alias] = flat[offset : offset + width]
            offset += width
        return Row(values=values)


def _alias_values(row: Row, alias: str, width: int) -> tuple:
    values = row.values.get(alias)
    if values is None:
        return (None,) * width
    return values
