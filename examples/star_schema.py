"""A small data warehouse: star joins through the Selinger optimizer.

Builds a FACT table with three dimensions, then runs the classic
warehouse query shapes — selective dimension filters, star joins, grouped
rollups — printing each chosen plan and its predicted vs. measured cost.
The interesting part is watching the optimizer start from the most
selective dimension rather than the fact table.

Run with::

    python examples/star_schema.py
"""

import random

from repro.optimizer.explain import plan_summary
from repro.workloads import build_database, random_star_spec, star_join_query


def run(db, label, sql):
    planned = db.plan(sql)
    db.cold_cache()
    result = db.executor().execute(planned)
    counters = db.counters
    measured = counters.page_fetches + planned.w * counters.rsi_calls
    print(f"-- {label}")
    print(f"   {sql[:100]}{'...' if len(sql) > 100 else ''}")
    print(f"   plan: {plan_summary(planned.root)}")
    print(
        f"   predicted {planned.estimated_total():8.2f}   "
        f"measured {measured:8.2f}   rows {len(result.rows)}"
    )
    print()
    return result


def main() -> None:
    rng = random.Random(2024)
    specs = random_star_spec(
        3, rng, fact_rows=5000, min_dim_rows=30, max_dim_rows=150
    )
    db = build_database(specs, seed=2024, buffer_pages=24)
    for spec in specs:
        stats = db.catalog.relation_stats(spec.name)
        print(f"{spec.name:<6} {stats}")
    print()

    run(db, "full star join", star_join_query(specs))
    run(
        db,
        "selective dimension filter",
        star_join_query(specs, [("DIM1", "ATTR", 2)]),
    )
    run(
        db,
        "two dimension filters",
        star_join_query(specs, [("DIM1", "ATTR", 2), ("DIM3", "ATTR", 1)]),
    )
    run(
        db,
        "rollup by dimension attribute",
        "SELECT DIM1.ATTR, COUNT(*) FROM FACT, DIM1 "
        "WHERE FACT.FK1 = DIM1.KEY GROUP BY DIM1.ATTR",
    )
    run(
        db,
        "fact rows above a dimension-driven threshold",
        "SELECT FACT.FID FROM FACT, DIM2 "
        "WHERE FACT.FK2 = DIM2.KEY AND DIM2.ATTR = 3 "
        "AND FACT.FK1 > (SELECT AVG(KEY) FROM DIM1)",
    )


if __name__ == "__main__":
    main()
