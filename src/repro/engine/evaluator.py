"""Expression evaluation with SQL three-valued logic.

Value expressions evaluate to Python values (or ``None`` for NULL);
predicates evaluate to ``True`` / ``False`` / ``None`` (unknown).  Filters
keep a row only when the predicate is ``True``.

Evaluation environments chain outward: a correlated subquery's scans
evaluate their probe values against the enclosing block's current row by
walking the chain, which is exactly the "candidate tuple of a higher level
query block" mechanism of Section 6.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..datatypes import compare_values
from ..errors import ExecutionError
from ..rss.sargs import CompareOp
from ..sql import ast
from ..optimizer.bound import AggregateRef, BoundColumn, BoundSubquery
from .rows import AGGREGATE_ALIAS, Row


@dataclass
class EvalEnv:  # concurrency: statement-scoped
    """A row plus the chain of enclosing rows and the runtime services."""

    row: Row
    runtime: object  # duck-typed: scalar_subquery_value / in_subquery_set
    outer: "EvalEnv | None" = None

    def lookup(self, alias: str) -> tuple | None:
        """Find an alias's tuple in this row or any enclosing row."""
        env: EvalEnv | None = self
        while env is not None:
            if alias in env.row.values:
                return env.row.values[alias]
            env = env.outer
        return None

    def child(self, row: Row) -> "EvalEnv":
        """A sibling environment for another row at the same nesting depth."""
        return EvalEnv(row=row, runtime=self.runtime, outer=self.outer)


def evaluate(expr: ast.Expr, env: EvalEnv) -> object:
    """Evaluate a bound expression; predicates may return None (unknown)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, BoundColumn):
        values = env.lookup(expr.alias)
        if values is None:
            raise ExecutionError(f"no row bound for alias {expr.alias!r}")
        return values[expr.position]
    if isinstance(expr, AggregateRef):
        aggregates = env.lookup(AGGREGATE_ALIAS)
        if aggregates is None:
            raise ExecutionError("aggregate referenced outside aggregation")
        return aggregates[expr.index]
    if isinstance(expr, BoundSubquery):
        return env.runtime.scalar_subquery_value(expr, env)  # type: ignore[attr-defined]
    if isinstance(expr, ast.BinaryOp):
        return _arithmetic(expr, env)
    if isinstance(expr, ast.Negate):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"cannot negate {value!r}")
        return -value
    if isinstance(expr, ast.Comparison):
        return _comparison(expr, env)
    if isinstance(expr, ast.Between):
        return _between(expr, env)
    if isinstance(expr, ast.InList):
        return _in_list(expr, env)
    if isinstance(expr, ast.InSubquery):
        return _in_subquery(expr, env)
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, env)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.Like):
        return _like(expr, env)
    if isinstance(expr, ast.And):
        return _kleene_and(expr.operands, env)
    if isinstance(expr, ast.Or):
        return _kleene_or(expr.operands, env)
    if isinstance(expr, ast.Not):
        inner = evaluate(expr.operand, env)
        if inner is None:
            return None
        return not inner
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def predicate_holds(expr: ast.Expr, env: EvalEnv) -> bool:
    """A filter keeps a row only on TRUE; unknown counts as not satisfied."""
    return evaluate(expr, env) is True


# -- helpers ------------------------------------------------------------------


def _arithmetic(expr: ast.BinaryOp, env: EvalEnv) -> object:
    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if left is None or right is None:
        return None
    for operand in (left, right):
        if not isinstance(operand, (int, float)) or isinstance(operand, bool):
            raise ExecutionError(f"arithmetic on non-numeric value {operand!r}")
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if right == 0:
        raise ExecutionError("division by zero")
    return left / right


def _comparison(expr: ast.Comparison, env: EvalEnv) -> bool | None:
    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    ordering = compare_values(left, right)
    if ordering is None:
        return None
    if expr.op is CompareOp.EQ:
        return ordering == 0
    if expr.op is CompareOp.NE:
        return ordering != 0
    if expr.op is CompareOp.LT:
        return ordering < 0
    if expr.op is CompareOp.LE:
        return ordering <= 0
    if expr.op is CompareOp.GT:
        return ordering > 0
    return ordering >= 0


def _between(expr: ast.Between, env: EvalEnv) -> bool | None:
    operand = evaluate(expr.operand, env)
    low = evaluate(expr.low, env)
    high = evaluate(expr.high, env)
    lower = compare_values(operand, low)
    upper = compare_values(operand, high)
    if lower is None or upper is None:
        return None
    return lower >= 0 and upper <= 0


def _in_list(expr: ast.InList, env: EvalEnv) -> bool | None:
    operand = evaluate(expr.operand, env)
    if operand is None:
        return None
    saw_null = False
    for literal in expr.values:
        value = evaluate(literal, env)
        ordering = compare_values(operand, value)
        if ordering is None:
            saw_null = True
        elif ordering == 0:
            return True
    return None if saw_null else False


def _in_subquery(expr: ast.InSubquery, env: EvalEnv) -> bool | None:
    operand = evaluate(expr.operand, env)
    if operand is None:
        return None
    subquery = expr.subquery
    assert isinstance(subquery, BoundSubquery)
    values, saw_null = env.runtime.in_subquery_set(subquery, env)  # type: ignore[attr-defined]
    if operand in values:
        return True
    # Integers and floats compare equal across types, but hash-based lookup
    # already handles that (hash(1) == hash(1.0) in Python).
    return None if saw_null else False


def like_regex(like_pattern: str) -> re.Pattern[str]:
    """The compiled regex for a LIKE pattern (``%`` → ``.*``, ``_`` → ``.``).

    Pure on purpose: an earlier module-level memo dict here was flagged by
    ``repro check --concurrency`` (rule ``unguarded-parallel-state``) —
    it was written from inside plan compilation, which the parallel PRs
    put on worker threads.  The compiled path already calls this once per
    plan (``engine/compile.py``), and the interpreter path rides
    ``re.compile``'s internal cache, so the memo bought nothing.
    """
    regex_parts: list[str] = []
    for char in like_pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    return re.compile("^" + "".join(regex_parts) + "$", re.DOTALL)


def _like(expr: ast.Like, env: EvalEnv) -> bool | None:
    operand = evaluate(expr.operand, env)
    if operand is None:
        return None
    if not isinstance(operand, str):
        raise ExecutionError("LIKE requires a string operand")
    matched = like_regex(expr.pattern).match(operand) is not None
    return (not matched) if expr.negated else matched


def _kleene_and(operands: tuple[ast.Expr, ...], env: EvalEnv) -> bool | None:
    saw_unknown = False
    for operand in operands:
        value = evaluate(operand, env)
        if value is False:
            return False
        if value is None:
            saw_unknown = True
    return None if saw_unknown else True


def _kleene_or(operands: tuple[ast.Expr, ...], env: EvalEnv) -> bool | None:
    saw_unknown = False
    for operand in operands:
        value = evaluate(operand, env)
        if value is True:
            return True
        if value is None:
            saw_unknown = True
    return None if saw_unknown else False
