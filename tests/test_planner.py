"""Unit tests for whole-statement planning."""

import pytest

from repro.optimizer.plan import (
    AggregateNode,
    DistinctNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    ProjectNode,
    ScanNode,
    SortNode,
    walk_plan,
)
from repro.workloads import FIG1_QUERY


def nodes_of(planned, node_type):
    return [n for n in walk_plan(planned.root) if isinstance(n, node_type)]


class TestSingleRelationPlans:
    def test_project_at_root(self, empdept):
        planned = empdept.plan("SELECT NAME FROM EMP")
        assert isinstance(planned.root, ProjectNode)

    def test_equal_predicate_picks_index(self, empdept):
        planned = empdept.plan("SELECT NAME FROM EMP WHERE DNO = 3")
        scan = nodes_of(planned, ScanNode)[0]
        assert isinstance(scan.access, IndexAccess)
        assert scan.access.index.name == "EMP_DNO"

    def test_tiny_table_prefers_segment_scan_over_unique_index(self, empdept):
        from repro.optimizer.plan import SegmentAccess

        # DEPT occupies a single page: TCARD/P = 1 beats the unique-index
        # formula's 1 + 1 + W, so the segment scan must win.
        planned = empdept.plan("SELECT DNAME FROM DEPT WHERE DNO = 3")
        scan = nodes_of(planned, ScanNode)[0]
        assert isinstance(scan.access, SegmentAccess)
        assert planned.estimated_cost.pages < 2.0

    def test_unique_index_for_large_table(self, db):
        db.execute("CREATE TABLE BIG (ID INTEGER, V INTEGER)")
        db.execute("CREATE UNIQUE INDEX BIG_ID ON BIG (ID)")
        from repro.workloads import load_rows

        load_rows(db, "BIG", [(i, i % 7) for i in range(3000)])
        db.execute("UPDATE STATISTICS")
        planned = db.plan("SELECT V FROM BIG WHERE ID = 1234")
        scan = [n for n in walk_plan(planned.root) if isinstance(n, ScanNode)][0]
        assert isinstance(scan.access, IndexAccess)
        assert scan.access.index.name == "BIG_ID"
        # Table 2, row 1: 1 + 1 + W.
        assert planned.estimated_cost.pages == pytest.approx(2.0)
        assert planned.estimated_cost.rsi == pytest.approx(1.0)

    def test_unselective_predicate_picks_segment_scan(self, empdept):
        from repro.optimizer.plan import SegmentAccess

        planned = empdept.plan("SELECT NAME FROM EMP WHERE SAL > 0.0")
        scan = nodes_of(planned, ScanNode)[0]
        assert isinstance(scan.access, SegmentAccess)

    def test_order_by_indexed_column_avoids_sort(self, empdept):
        planned = empdept.plan("SELECT DNO FROM EMP ORDER BY DNO")
        assert not nodes_of(planned, SortNode)
        scan = nodes_of(planned, ScanNode)[0]
        assert isinstance(scan.access, IndexAccess)

    def test_order_by_unindexed_column_sorts(self, empdept):
        planned = empdept.plan("SELECT SAL FROM EMP ORDER BY SAL")
        assert len(nodes_of(planned, SortNode)) == 1

    def test_order_by_desc_sorts(self, empdept):
        planned = empdept.plan("SELECT DNO FROM EMP ORDER BY DNO DESC")
        assert len(nodes_of(planned, SortNode)) == 1

    def test_distinct_node(self, empdept):
        planned = empdept.plan("SELECT DISTINCT DNO FROM EMP")
        assert isinstance(planned.root, DistinctNode)


class TestAggregation:
    def test_group_by_gets_aggregate_node(self, empdept):
        planned = empdept.plan("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO")
        aggregates = nodes_of(planned, AggregateNode)
        assert len(aggregates) == 1
        assert [c.name for c in aggregates[0].aggregates] == ["AVG"]

    def test_group_by_indexed_column_avoids_sort(self, empdept):
        planned = empdept.plan("SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO")
        assert not nodes_of(planned, SortNode)

    def test_group_by_unindexed_column_sorts(self, empdept):
        planned = empdept.plan("SELECT JOB, SAL, COUNT(*) FROM EMP GROUP BY JOB, SAL")
        assert len(nodes_of(planned, SortNode)) == 1

    def test_ungrouped_aggregate(self, empdept):
        planned = empdept.plan("SELECT COUNT(*) FROM EMP")
        aggregate = nodes_of(planned, AggregateNode)[0]
        assert not aggregate.group_by
        assert planned.root.rows == pytest.approx(1.0)


class TestJoins:
    def test_fig1_query_plans(self, empdept):
        planned = empdept.plan(FIG1_QUERY)
        joins = nodes_of(planned, NestedLoopJoinNode) + nodes_of(
            planned, MergeJoinNode
        )
        assert len(joins) == 2
        scans = nodes_of(planned, ScanNode)
        assert {scan.alias for scan in scans} == {"EMP", "DEPT", "JOB"}

    def test_join_predicate_pushed_to_inner(self, empdept):
        planned = empdept.plan(
            "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
        )
        nl_joins = nodes_of(planned, NestedLoopJoinNode)
        assert nl_joins
        inner = nl_joins[0].inner
        # The join predicate rides the inner scan as a probe SARG (or as
        # index bounds), never as a post-join filter.
        assert inner.sargs or (
            isinstance(inner.access, IndexAccess) and inner.access.low
        )
        assert not nl_joins[0].residual

    def test_join_probe_uses_index_when_inner_exceeds_buffer(self, db):
        from repro.workloads import load_rows

        db.storage.buffer.capacity = 8
        db.execute("CREATE TABLE BIGT (K INTEGER, PAD VARCHAR(80))")
        db.execute("CREATE TABLE SMALL (K INTEGER)")
        load_rows(db, "BIGT", [(i % 50, "x" * 72) for i in range(3000)])
        load_rows(db, "SMALL", [(i,) for i in range(10)])
        db.execute("CREATE INDEX BIGT_K ON BIGT (K) CLUSTER")
        db.execute("UPDATE STATISTICS")
        planned = db.plan(
            "SELECT SMALL.K FROM SMALL, BIGT WHERE SMALL.K = BIGT.K"
        )
        nl_joins = nodes_of(planned, NestedLoopJoinNode)
        assert nl_joins
        inner = nl_joins[0].inner
        assert inner.alias == "BIGT"
        assert isinstance(inner.access, IndexAccess)
        assert inner.access.low  # probe bound from the outer column

    def test_subquery_plans_attached(self, empdept):
        planned = empdept.plan(
            "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)"
        )
        assert len(planned.subquery_plans) == 1

    def test_nested_subquery_plans_attached(self, empdept):
        planned = empdept.plan(
            "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT "
            "WHERE LOC = 'DENVER') AND SAL > (SELECT AVG(SAL) FROM EMP)"
        )
        assert len(planned.subquery_plans) == 2

    def test_search_stats_present(self, empdept):
        planned = empdept.plan(FIG1_QUERY)
        assert planned.search_stats is not None
        assert planned.search_stats.plans_considered > 0


class TestCostOrdering:
    def test_optimizer_cost_at_most_naive(self, empdept):
        from repro.baselines import NaivePlanner
        from repro.optimizer.binder import Binder
        from repro.sql import parse_statement

        optimizer = empdept.optimizer()
        block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        chosen = optimizer.plan_block(block)
        naive = NaivePlanner(optimizer, empdept.catalog).plan_block(
            Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        )
        assert chosen.estimated_total() <= naive.estimated_total() + 1e-9

    def test_explain_renders(self, empdept):
        text = empdept.explain(FIG1_QUERY)
        assert "estimated cost" in text
        assert "scan" in text
