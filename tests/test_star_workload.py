"""Tests for the star-schema workload and star-join planning."""

import random

import pytest

from repro.workloads import build_database, random_star_spec, star_join_query


@pytest.fixture(scope="module")
def star():
    rng = random.Random(5)
    specs = random_star_spec(3, rng, fact_rows=600)
    db = build_database(specs, seed=5)
    return db, specs


class TestStarSchema:
    def test_shapes(self, star):
        db, specs = star
        assert specs[0].name == "FACT"
        assert [s.name for s in specs[1:]] == ["DIM1", "DIM2", "DIM3"]
        assert db.execute("SELECT COUNT(*) FROM FACT").scalar() == 600

    def test_dimension_keys_unique(self, star):
        db, specs = star
        for spec in specs[1:]:
            total = db.execute(f"SELECT COUNT(*) FROM {spec.name}").scalar()
            distinct = db.execute(
                f"SELECT COUNT(DISTINCT KEY) FROM {spec.name}"
            ).scalar()
            assert total == distinct == spec.rows

    def test_star_join_preserves_fact_rows(self, star):
        """FK joins to unique dimension keys: output = fact cardinality."""
        db, specs = star
        sql = star_join_query(specs)
        assert len(db.execute(sql).rows) == 600

    def test_star_join_with_selection(self, star):
        db, specs = star
        sql = star_join_query(specs, [("DIM1", "ATTR", 1)])
        result = db.execute(sql)
        # Every output row's DIM1.ATTR is 1; fewer rows than the full join.
        assert 0 < len(result.rows) < 600

    def test_planner_starts_from_selective_dimension(self, star):
        """With a selective dimension filter, the plan should not start by
        scanning the whole fact table."""
        from repro.optimizer.plan import ScanNode, walk_plan

        db, specs = star
        sql = star_join_query(specs, [("DIM2", "ATTR", 0)])
        planned = db.plan(sql)
        scans = [n for n in walk_plan(planned.root) if isinstance(n, ScanNode)]
        # Left-deep: the first scan executed is the deepest outer.
        deepest = planned.root
        while deepest.children():
            deepest = deepest.children()[0]
        assert isinstance(deepest, ScanNode)
        assert deepest.alias != "FACT"

    def test_heuristic_prevents_dim_cross_products(self, star):
        db, specs = star
        optimizer = db.optimizer()
        from repro.optimizer.binder import Binder
        from repro.sql import parse_statement

        block = Binder(db.catalog).bind(parse_statement(star_join_query(specs)))
        search, __, ___ = optimizer.run_join_search(block)
        # Dimension-only subsets are Cartesian products: never formed.
        assert not search.solutions_for({"DIM1", "DIM2"})
        assert not search.solutions_for({"DIM1", "DIM3"})

    def test_results_match_python_reference(self, star):
        db, specs = star
        fact = db.execute("SELECT * FROM FACT").rows
        dims = {
            spec.name: dict(
                (row[0], row)
                for row in db.execute(f"SELECT * FROM {spec.name}").rows
            )
            for spec in specs[1:]
        }
        sql = star_join_query(specs, [("DIM3", "ATTR", 2)])
        got = len(db.execute(sql).rows)
        want = sum(
            1
            for row in fact
            if row[1] in dims["DIM1"]
            and row[2] in dims["DIM2"]
            and row[3] in dims["DIM3"]
            and dims["DIM3"][row[3]][1] == 2
        )
        assert got == want
