"""Plan operators: iterators that pull rows through the chosen access paths.

Each plan node type has an ``_iter_*`` function; :func:`iterate` dispatches.
Operators receive an :class:`ExecContext` (runtime services plus the
current block's alias schemas) and an optional outer :class:`EvalEnv`
chain carrying enclosing blocks' candidate tuples for correlation and
nested-loop probes.

Expressions never evaluate by tree-walking here.  On first execution each
node's predicates, projections, and SARG value expressions are compiled
once (:mod:`repro.engine.compile`) into closure programs cached on the
node (``PlanNode.compiled``, keyed by execution mode), and the per-row
loops call those closures against a single mutated environment per
operator — no per-row ``EvalEnv`` construction, no ``isinstance``
dispatch, no alias-chain walks for block-local columns.  Expressions
evaluated at *open* (SARG comparison values, index bounds) compile with an
empty local-alias set: their environment's own row is empty, and probe or
correlation values genuinely live in the enclosing chain.

RSI accounting stays exact: scans are consumed through uncounted
``batches()`` and every consumed tuple is charged via
``CostCounters.count_rsi_call`` at the moment it surfaces, so partial
consumption (a merge join that stops pulling) counts precisely the tuples
the tuple-at-a-time interface would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..datatypes import DataType
from ..errors import ExecutionError
from ..optimizer.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    walk_plan,
)
from ..rss.sargs import (
    CompareOp,
    and_matcher,
    dnf_matcher,
    predicate_factory,
    type_family,
)
from ..rss.tuples import DecodePlan
from ..sql import ast
from .compile import EvalFn, ExprCompiler, ordering_fns
from .evaluator import EvalEnv
from .rows import AGGREGATE_ALIAS, OUTPUT_ALIAS, Row


@dataclass
class ExecContext:
    """Per-block execution context."""

    runtime: object  # Runtime (duck-typed to avoid an import cycle)
    schemas: dict[str, list[DataType]]
    #: When set, compiled programs are thin wrappers over the reference
    #: interpreter — identical operators, interpreted expressions.
    interpret: bool = False
    #: When set, plans execute through the fused per-batch drivers of
    #: :mod:`repro.engine.fuse` instead of one generator per operator.
    fused: bool = False
    #: When set (implies ``fused``), eligible fused chains run through the
    #: worker-pool drivers of :mod:`repro.engine.parallel`.
    parallel: bool = False
    #: Worker count for parallel drivers; read at call time, so compiled
    #: drivers cached on plan nodes stay worker-count-independent.
    workers: int = 1
    #: Execution backend for parallel drivers (``"thread"`` or
    #: ``"process"``); read at call time like ``workers``, so cached
    #: drivers stay backend-independent too.
    backend: str = "thread"

    @property
    def storage(self):
        """The storage engine behind this execution."""
        return self.runtime.storage  # type: ignore[attr-defined]

    def env(self, row: Row, outer: EvalEnv | None) -> EvalEnv:
        """An evaluation environment for one row plus the enclosing chain."""
        return EvalEnv(row=row, runtime=self.runtime, outer=outer)


def iterate(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None = None
) -> Iterator[Row]:
    """Execute a plan node, yielding composite rows.

    In fused mode the whole subtree is handed to the pipeline compiler,
    which drives maximal Scan→Filter→Project chains as single per-batch
    closures; the generator-per-operator dispatch below is the
    ``compiled``/``interp`` reference path.
    """
    if ctx.fused:
        from .fuse import fused_rows

        return fused_rows(node, ctx, outer)
    if isinstance(node, ScanNode):
        return _iter_scan(node, ctx, outer)
    if isinstance(node, FilterNode):
        return _iter_filter(node, ctx, outer)
    if isinstance(node, NestedLoopJoinNode):
        return _iter_nested_loop(node, ctx, outer)
    if isinstance(node, MergeJoinNode):
        return _iter_merge_join(node, ctx, outer)
    if isinstance(node, HashJoinNode):
        return _iter_hash_join(node, ctx, outer)
    if isinstance(node, SortNode):
        return _iter_sort(node, ctx, outer)
    if isinstance(node, AggregateNode):
        return _iter_aggregate(node, ctx, outer)
    if isinstance(node, ProjectNode):
        return _iter_project(node, ctx, outer)
    if isinstance(node, DistinctNode):
        return _iter_distinct(node, ctx, outer)
    raise ExecutionError(f"no operator for plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# compiled-program cache
# ---------------------------------------------------------------------------


def _program(node: PlanNode, ctx: ExecContext, build: Callable):
    """The node's compiled program for the context's execution mode."""
    key = "interp" if ctx.interpret else "compiled"
    cache = node.compiled
    if key not in cache:
        cache[key] = build(node, ctx)
    return cache[key]


def _local_aliases(node: PlanNode) -> tuple[str, ...]:
    """Aliases whose tuples are present in the rows this subtree produces."""
    return tuple(
        scan.alias for scan in walk_plan(node) if isinstance(scan, ScanNode)
    )


def _compiler(node: PlanNode, ctx: ExecContext) -> ExprCompiler:
    return ExprCompiler(_local_aliases(node), interpret=ctx.interpret)


# ---------------------------------------------------------------------------
# scans
# ---------------------------------------------------------------------------


@dataclass
class _ScanProgram:
    """Everything per-query-constant about opening and driving one scan."""

    decode_plan: DecodePlan
    #: per sargable factor, per DNF group: (matcher factory, value closure)
    sarg_parts: list[list[list[tuple[Callable, EvalFn]]]]
    #: structural mirror of ``sarg_parts``: (column position, operator) per
    #: predicate, so the parallel exchange can recognize equality probe
    #: keys without re-walking the plan.
    sarg_specs: list[list[list[tuple[int, CompareOp]]]] = field(
        default_factory=list
    )
    low_fns: tuple[EvalFn, ...] = ()
    high_fns: tuple[EvalFn, ...] = ()
    residual: Callable[[EvalEnv], bool] | None = None


def _build_scan(node: ScanNode, ctx: ExecContext) -> _ScanProgram:
    # SARG values and index bounds evaluate at open against an empty row,
    # so every column they mention resolves through the enclosing chain.
    opens = ExprCompiler((), interpret=ctx.interpret)
    sarg_parts: list[list[list[tuple[Callable, EvalFn]]]] = []
    sarg_specs: list[list[list[tuple[int, CompareOp]]]] = []
    for expression in node.sargs:
        part: list[list[tuple[Callable, EvalFn]]] = []
        spec_part: list[list[tuple[int, CompareOp]]] = []
        for group in expression.groups:
            compiled_group: list[tuple[Callable, EvalFn]] = []
            spec_group: list[tuple[int, CompareOp]] = []
            for pred in group:
                family = (
                    None
                    if ctx.interpret
                    else type_family(pred.column.datatype)
                )
                make = predicate_factory(pred.column.position, pred.op, family)
                compiled_group.append((make, opens.expr_fn(pred.value)))
                spec_group.append((pred.column.position, pred.op))
            part.append(compiled_group)
            spec_part.append(spec_group)
        sarg_parts.append(part)
        sarg_specs.append(spec_part)
    low_fns: tuple[EvalFn, ...] = ()
    high_fns: tuple[EvalFn, ...] = ()
    if isinstance(node.access, IndexAccess):
        low_fns = tuple(opens.expr_fn(expr) for expr in node.access.low)
        high_fns = tuple(opens.expr_fn(expr) for expr in node.access.high)
    residual = ExprCompiler((node.alias,), interpret=ctx.interpret).conjunction(
        node.residual
    )
    return _ScanProgram(
        decode_plan=DecodePlan(ctx.schemas[node.alias]),
        sarg_parts=sarg_parts,
        sarg_specs=sarg_specs,
        low_fns=low_fns,
        high_fns=high_fns,
        residual=residual,
    )


def compile_sarg_matcher(
    program: _ScanProgram, value_env: EvalEnv
) -> Callable[[tuple], bool] | None:
    """The scan's per-open SARG matcher: probe and correlation values are
    evaluated against the enclosing environment chain and bound into the
    prebuilt predicate factories."""
    if not program.sarg_parts:
        return None
    parts = []
    for part in program.sarg_parts:
        groups = [
            [make(value_fn(value_env)) for make, value_fn in group]
            for group in part
        ]
        parts.append(dnf_matcher(groups))
    return and_matcher(parts)


def open_scan(
    node: ScanNode,
    program: _ScanProgram,
    ctx: ExecContext,
    outer: EvalEnv | None,
    decode_cache: dict | None = None,
):
    """Open the node's RSS scan: evaluate SARG values and index bounds
    against the enclosing environment chain, compile the matcher, and
    return the scan — or ``None`` when a NULL bound can never match.

    ``decode_cache`` (fused nested-loop probes only) is shared across
    repeated opens of the same node so unchanged pages decode once; page
    fetches and counters are unaffected (see :mod:`repro.rss.scan`).
    """
    value_env = ctx.env(Row(), outer)
    matcher = compile_sarg_matcher(program, value_env)
    storage = ctx.storage
    if not program.low_fns and not program.high_fns and not isinstance(
        node.access, IndexAccess
    ):
        return storage.segment_scan(
            node.table,
            matcher=matcher,
            decode_plan=program.decode_plan,
            decode_cache=decode_cache,
        )
    access = node.access
    assert isinstance(access, IndexAccess)
    low = tuple(fn(value_env) for fn in program.low_fns)
    high = tuple(fn(value_env) for fn in program.high_fns)
    if any(value is None for value in low) or any(
        value is None for value in high
    ):
        return None  # a NULL bound can never be satisfied
    return storage.index_scan(
        access.index,
        node.table,
        low=low or None,
        high=high or None,
        low_inclusive=access.low_inclusive,
        high_inclusive=access.high_inclusive,
        matcher=matcher,
        decode_plan=program.decode_plan,
        decode_cache=decode_cache,
    )


def _iter_scan(
    node: ScanNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    program: _ScanProgram = _program(node, ctx, _build_scan)
    scan = open_scan(node, program, ctx, outer)
    if scan is None:
        return
    count_rsi = ctx.storage.counters.count_rsi_call
    alias = node.alias
    residual = program.residual
    if residual is None:
        for batch in scan.batches():
            for tid, values in batch:
                count_rsi()
                yield Row(values={alias: values}, tids={alias: tid})
    else:
        env = ctx.env(Row(), outer)
        for batch in scan.batches():
            for tid, values in batch:
                count_rsi()
                row = Row(values={alias: values}, tids={alias: tid})
                env.row = row
                if residual(env):
                    yield row


# ---------------------------------------------------------------------------
# filters and joins
# ---------------------------------------------------------------------------


def _build_filter(node: FilterNode, ctx: ExecContext):
    return _compiler(node.child, ctx).conjunction(node.predicates)


def _iter_filter(
    node: FilterNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    keep = _program(node, ctx, _build_filter)
    child = iterate(node.child, ctx, outer)
    if keep is None:
        yield from child
        return
    env = ctx.env(Row(), outer)
    for row in child:
        env.row = row
        if keep(env):
            yield row


def _build_nested_loop(node: NestedLoopJoinNode, ctx: ExecContext):
    return _compiler(node, ctx).conjunction(node.residual)


def _iter_nested_loop(
    node: NestedLoopJoinNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    residual = _program(node, ctx, _build_nested_loop)
    probe_env = ctx.env(Row(), outer)
    env = ctx.env(Row(), outer)
    for outer_row in iterate(node.outer, ctx, outer):
        # The inner pipeline is exhausted before the next outer row, so one
        # probe environment is safely re-pointed at each outer row in turn.
        probe_env.row = outer_row
        if residual is None:
            for inner_row in iterate(node.inner, ctx, probe_env):
                yield outer_row.merged(inner_row)
        else:
            for inner_row in iterate(node.inner, ctx, probe_env):
                merged = outer_row.merged(inner_row)
                env.row = merged
                if residual(env):
                    yield merged


@dataclass
class _MergeProgram:
    outer_get: Callable[[Row], object]
    inner_get: Callable[[Row], object]
    key_eq: Callable[[object, object], bool]
    key_ge: Callable[[object, object], bool]
    residual: Callable[[EvalEnv], bool] | None


def _build_merge(node: MergeJoinNode, ctx: ExecContext) -> _MergeProgram:
    compiler = _compiler(node, ctx)
    key_eq, key_ge = ordering_fns(
        node.outer_column.datatype,
        node.inner_column.datatype,
        interpret=ctx.interpret,
    )
    return _MergeProgram(
        outer_get=compiler.column_getter(node.outer_column),
        inner_get=compiler.column_getter(node.inner_column),
        key_eq=key_eq,
        key_ge=key_ge,
        residual=compiler.conjunction(node.residual),
    )


_EMPTY_MARKER = object()


def _iter_merge_join(
    node: MergeJoinNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    program: _MergeProgram = _program(node, ctx, _build_merge)
    return merge_join_rows(
        program,
        ctx.storage.counters.count_rsi_call,
        ctx.env(Row(), outer),
        iterate(node.outer, ctx, outer),
        iterate(node.inner, ctx, outer),
    )


def merge_join_rows(
    program: _MergeProgram,
    count_rsi: Callable[[], None],
    env: EvalEnv,
    outer_rows: Iterator[Row],
    inner_rows: Iterator[Row],
) -> Iterator[Row]:
    """Synchronized merging scans with join-group rewind.

    The inner's current group is buffered; when consecutive outer tuples
    carry the same join value the group is replayed, and each replayed
    tuple is counted as an RSI call — that re-retrieval is exactly what the
    cost formulas charge for.  The outer input is always fully consumed;
    the inner is pulled tuple-at-a-time and may be abandoned early, so
    callers must hand in a genuinely lazy inner iterator.
    """
    inner_key = program.inner_get
    outer_get = program.outer_get
    key_eq = program.key_eq
    key_ge = program.key_ge
    residual = program.residual

    inner_iter = iter(inner_rows)
    inner_current = next(inner_iter, None)
    group: list[Row] = []
    group_key: object = _EMPTY_MARKER
    group_served_once = False

    for outer_row in outer_rows:
        outer_key = outer_get(outer_row)
        if outer_key is None:
            continue  # NULL join keys never match
        if group_key is not _EMPTY_MARKER and key_eq(outer_key, group_key):
            replay = True
        else:
            # Advance the inner scan to the first key >= outer_key.
            while inner_current is not None:
                key = inner_key(inner_current)
                if key is not None and key_ge(key, outer_key):
                    break
                inner_current = next(inner_iter, None)
            group = []
            group_key = outer_key
            group_served_once = False
            while inner_current is not None:
                key = inner_key(inner_current)
                if key is None or not key_eq(key, outer_key):
                    break
                group.append(inner_current)
                inner_current = next(inner_iter, None)
            replay = False
        for inner_row in group:
            if replay or group_served_once:
                # Re-retrieving a buffered group tuple is an RSI call.
                count_rsi()
            merged = outer_row.merged(inner_row)
            if residual is not None:
                env.row = merged
                if not residual(env):
                    continue
            yield merged
        group_served_once = True


# ---------------------------------------------------------------------------
# hash join
# ---------------------------------------------------------------------------


@dataclass
class _HashJoinProgram:
    """Per-query-constant parts of a build/probe hash join."""

    outer_getters: tuple[Callable[[Row], object], ...]
    inner_getters: tuple[Callable[[Row], object], ...]
    #: per key column: a deterministic 32-bit hash of one value, used only
    #: for grace partition assignment (never Python's randomized str hash,
    #: so partition contents — and therefore temp page counts — are
    #: identical across runs and processes).
    partition_fns: tuple[Callable[[object], int], ...]
    residual: Callable[[EvalEnv], bool] | None


def _partition_value_fn(datatype: DataType) -> Callable[[object], int]:
    if type_family(datatype) == "str":
        from zlib import crc32

        return lambda value: crc32(str(value).encode())
    # Python's numeric hash is not seed-randomized and agrees across int
    # and float representations of the same value (hash(1) == hash(1.0)),
    # so equal keys always land in the same partition.
    return lambda value: hash(value) & 0xFFFFFFFF


def _build_hash_join(node: HashJoinNode, ctx: ExecContext) -> _HashJoinProgram:
    compiler = _compiler(node, ctx)
    return _HashJoinProgram(
        outer_getters=tuple(
            compiler.column_getter(outer_col) for outer_col, __ in node.keys
        ),
        inner_getters=tuple(
            compiler.column_getter(inner_col) for __, inner_col in node.keys
        ),
        partition_fns=tuple(
            _partition_value_fn(inner_col.datatype) for __, inner_col in node.keys
        ),
        residual=compiler.conjunction(node.residual),
    )


def build_hash_table(
    node: HashJoinNode,
    program: _HashJoinProgram,
    ctx: ExecContext,
    outer: EvalEnv | None,
) -> dict[tuple, list[Row]]:
    """Scan the build (inner) side once and bucket it by join key.

    The scan is fully counted — pages through the buffer pool, one RSI
    call per tuple — exactly like any other consumption of that access
    path, so the fetch trace is identical in every execution mode.  Rows
    with a NULL key component never enter the table (an equijoin on NULL
    is not true under 3VL).  Runs once per execution of the join — once
    per statement for a top-level query.
    """
    getters = program.inner_getters
    table: dict[tuple, list[Row]] = {}
    for row in _iter_scan(node.inner, ctx, outer):
        key = tuple([getter(row) for getter in getters])
        if None in key:
            continue
        bucket = table.get(key)
        if bucket is None:
            table[key] = [row]
        else:
            bucket.append(row)
    return table


def hash_join_rows(
    program: _HashJoinProgram,
    count_rsi: Callable[..., None],
    env: EvalEnv,
    table: dict[tuple, list[Row]],
    outer_rows: Iterator[Row],
) -> Iterator[Row]:
    """Probe the built table with each outer row.

    Every tuple delivered from a bucket is one RSI call — the same
    consumption charge the merge join pays for group replays and the cost
    formula's ``matches`` term predicts.  A probe key with a NULL
    component can never be in the table, so the bucket miss handles 3VL.
    """
    getters = program.outer_getters
    residual = program.residual
    for outer_row in outer_rows:
        key = tuple([getter(outer_row) for getter in getters])
        bucket = table.get(key)
        if bucket is None:
            continue
        count_rsi(len(bucket))
        if residual is None:
            for inner_row in bucket:
                yield outer_row.merged(inner_row)
        else:
            for inner_row in bucket:
                merged = outer_row.merged(inner_row)
                env.row = merged
                if residual(env):
                    yield merged


def _iter_hash_join(
    node: HashJoinNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    program: _HashJoinProgram = _program(node, ctx, _build_hash_join)
    if node.partitions > 1:
        return _grace_hash_join(node, program, ctx, outer)
    table = build_hash_table(node, program, ctx, outer)
    return hash_join_rows(
        program,
        ctx.storage.counters.count_rsi_call,
        ctx.env(Row(), outer),
        table,
        iterate(node.outer, ctx, outer),
    )


def _grace_hash_join(
    node: HashJoinNode,
    program: _HashJoinProgram,
    ctx: ExecContext,
    outer: EvalEnv | None,
) -> Iterator[Row]:
    """Grace-partitioned path for builds that exceed their buffer share.

    Both inputs are hash-partitioned into counted temporary lists (one
    write plus one read-back per tuple — the spill term of the plan's
    cost), then each partition pair is joined in memory.  All execution
    modes run this same serial code, so rows and counters agree
    trivially; the deterministic partition hash keeps temp page counts
    stable across runs.
    """
    from .temp import TempList

    count = node.partitions
    fns = program.partition_fns
    inner_schema = [(node.inner.alias, ctx.schemas[node.inner.alias])]
    outer_aliases = sorted(_local_aliases(node.outer))
    outer_schema = [(alias, ctx.schemas[alias]) for alias in outer_aliases]
    storage = ctx.storage
    build_parts = [TempList(storage, inner_schema) for __ in range(count)]
    probe_parts = [TempList(storage, outer_schema) for __ in range(count)]
    inner_getters = program.inner_getters
    outer_getters = program.outer_getters
    try:
        for row in _iter_scan(node.inner, ctx, outer):
            key = tuple([getter(row) for getter in inner_getters])
            if None in key:
                continue
            build_parts[_partition_of(key, fns, count)].append(row)
        for row in iterate(node.outer, ctx, outer):
            key = tuple([getter(row) for getter in outer_getters])
            if None in key:
                continue
            probe_parts[_partition_of(key, fns, count)].append(row)
        count_rsi = storage.counters.count_rsi_call
        env = ctx.env(Row(), outer)
        for build_part, probe_part in zip(build_parts, probe_parts):
            table: dict[tuple, list[Row]] = {}
            for row in build_part.scan():
                key = tuple([getter(row) for getter in inner_getters])
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
            yield from hash_join_rows(
                program, count_rsi, env, table, probe_part.scan()
            )
    finally:
        for part in build_parts:
            part.drop()
        for part in probe_parts:
            part.drop()


def _partition_of(
    key: tuple, fns: tuple[Callable[[object], int], ...], count: int
) -> int:
    """Stable partition assignment for one join key."""
    total = 0
    for value, fn in zip(key, fns):
        total = (total * 31 + fn(value)) & 0xFFFFFFFF
    return total % count


# ---------------------------------------------------------------------------
# sorting
# ---------------------------------------------------------------------------


def _sort_rows(rows: list[Row], keys) -> list[Row]:
    """Stable multi-key sort with NULLs first and per-key direction."""
    ordered = list(rows)
    for column, descending in reversed(list(keys)):
        def sort_key(row: Row, column=column):
            value = row.values[column.alias][column.position]
            return (0, 0) if value is None else (1, value)

        ordered.sort(key=sort_key, reverse=descending)
    return ordered


def sort_rows(
    node: SortNode, ctx: ExecContext, child_rows: Iterator[Row]
) -> Iterator[Row]:
    """Sort into a temporary list, spilling to multi-pass runs when the
    input exceeds a buffer-pool-sized workspace (§5: "several passes").

    The input stream is always fully consumed; the sorted output is lazy
    (run pages are read back only as rows are pulled), so partial
    consumers see the same page-fetch pattern on every path.
    """
    from ..rss.tuples import max_record_size
    from ..sorting import workspace_rows
    from .external_sort import ExternalSorter

    aliases = sorted(_local_aliases(node.child))
    materializable = aliases and all(alias in ctx.schemas for alias in aliases)
    has_aggregate = any(
        isinstance(n, AggregateNode) for n in walk_plan(node.child)
    )
    if not materializable or has_aggregate:
        # Post-aggregation (pseudo-alias) sorts stay in memory.
        return iter(_sort_rows(list(child_rows), node.keys))
    schema = [(alias, ctx.schemas[alias]) for alias in aliases]
    row_bytes = sum(
        max_record_size(datatypes) for __, datatypes in schema
    )
    run_sorter = None
    if ctx.parallel:
        # Parallel mode sorts each workspace run on the worker pool;
        # run boundaries and temp traffic are unchanged, so counters
        # and row order stay bit-identical to the serial sorter.
        from .parallel import parallel_run_sorter

        run_sorter = parallel_run_sorter(ctx, node.keys)
    sorter = ExternalSorter(
        ctx.storage,
        schema,
        node.keys,
        memory_rows=workspace_rows(ctx.storage.buffer.capacity, row_bytes),
        run_sorter=run_sorter,
    )
    return sorter.sort(child_rows)


def _iter_sort(
    node: SortNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    return sort_rows(node, ctx, iterate(node.child, ctx, outer))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


class _AggState:  # concurrency: statement-scoped
    """Accumulator for one aggregate call within one group."""

    def __init__(self, call: ast.FuncCall):
        self.call = call
        self.count = 0
        self.total: float | int = 0
        self.minimum: object = None
        self.maximum: object = None
        self.distinct: set | None = set() if call.distinct else None

    def add(self, value: object) -> None:
        """Fold one input value into the accumulator."""
        if self.call.argument is None:  # COUNT(*)
            self.count += 1
            return
        if value is None:
            return
        if self.distinct is not None:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        name = self.call.name
        if name in ("SUM", "AVG"):
            self.total += value  # type: ignore[operator]
        elif name == "MIN":
            if self.minimum is None or value < self.minimum:  # type: ignore[operator]
                self.minimum = value
        elif name == "MAX":
            if self.maximum is None or value > self.maximum:  # type: ignore[operator]
                self.maximum = value

    def merge(self, other: "_AggState") -> None:
        """Fold a later partial accumulator (same call, same group) in.

        The parallel aggregate driver folds disjoint, scan-order
        contiguous row slices into per-morsel states and merges at the
        gather — the aggregate-state twin of ``CostCounters.merge``.
        COUNT/SUM/AVG partials recompose by summation (column values
        here are integers, so partial sums are exact); MIN/MAX combine
        by comparison.  DISTINCT partials re-fold the other side's value
        set through :meth:`add`, which dedupes against this side before
        counting.
        """
        if self.call.argument is None:  # COUNT(*)
            self.count += other.count
            return
        if self.distinct is not None:
            for value in other.distinct or ():
                self.add(value)
            return
        self.count += other.count
        self.total += other.total  # type: ignore[operator]
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum  # type: ignore[operator]
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum  # type: ignore[operator]
        ):
            self.maximum = other.maximum

    def result(self) -> object:
        """The aggregate's final value for the finished group."""
        name = self.call.name
        if name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if name == "SUM":
            return self.total
        if name == "AVG":
            return self.total / self.count
        if name == "MIN":
            return self.minimum
        return self.maximum


@dataclass
class _AggregateProgram:
    key_getters: tuple[Callable[[Row], object], ...]
    #: aligned with ``node.aggregates``; None marks COUNT(*)
    arg_fns: tuple[EvalFn | None, ...]
    having: Callable[[EvalEnv], object] | None = None


def _build_aggregate(node: AggregateNode, ctx: ExecContext) -> _AggregateProgram:
    compiler = _compiler(node.child, ctx)
    arg_fns = tuple(
        None if call.argument is None else compiler.expr_fn(call.argument)
        for call in node.aggregates
    )
    having = None
    if node.having is not None:
        having = compiler.truth_fn(node.having)
    return _AggregateProgram(
        key_getters=tuple(
            compiler.column_getter(column) for column in node.group_by
        ),
        arg_fns=arg_fns,
        having=having,
    )


def _iter_aggregate(
    node: AggregateNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    program: _AggregateProgram = _program(node, ctx, _build_aggregate)
    return aggregate_rows(
        node, program, ctx, outer, iterate(node.child, ctx, outer)
    )


def aggregate_rows(
    node: AggregateNode,
    program: _AggregateProgram,
    ctx: ExecContext,
    outer: EvalEnv | None,
    child_rows: Iterator[Row],
) -> Iterator[Row]:
    """Streaming aggregation over input ordered on the grouping columns."""
    key_getters = program.key_getters
    arg_fns = program.arg_fns
    having = program.having
    arg_env = ctx.env(Row(), outer)
    having_env = ctx.env(Row(), outer)

    def emit(representative: Row, states: list[_AggState]) -> Row | None:
        results = tuple(state.result() for state in states)
        out = representative.with_alias(AGGREGATE_ALIAS, results)
        if having is not None:
            having_env.row = out
            if having(having_env) is not True:
                return None
        return out

    current_key: object = _EMPTY_MARKER
    representative: Row | None = None
    states: list[_AggState] = []
    saw_rows = False
    for row in child_rows:
        saw_rows = True
        key = tuple([getter(row) for getter in key_getters])
        if current_key is _EMPTY_MARKER or key != current_key:
            if representative is not None:
                out = emit(representative, states)
                if out is not None:
                    yield out
            current_key = key
            representative = row
            states = [_AggState(call) for call in node.aggregates]
        arg_env.row = row
        for state, fn in zip(states, arg_fns):
            state.add(None if fn is None else fn(arg_env))
    if representative is not None:
        out = emit(representative, states)
        if out is not None:
            yield out
    elif not saw_rows and not node.group_by:
        # Aggregates over an empty input still produce one row.
        out = emit(Row(), [_AggState(call) for call in node.aggregates])
        if out is not None:
            yield out


# ---------------------------------------------------------------------------
# projection / distinct
# ---------------------------------------------------------------------------


def _build_project(node: ProjectNode, ctx: ExecContext):
    compiler = _compiler(node.child, ctx)
    return tuple(compiler.expr_fn(expr) for expr in node.exprs)


def _iter_project(
    node: ProjectNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    fns = _program(node, ctx, _build_project)
    env = ctx.env(Row(), outer)
    for row in iterate(node.child, ctx, outer):
        env.row = row
        output = tuple([fn(env) for fn in fns])
        yield Row(values={**row.values, OUTPUT_ALIAS: output}, tids=row.tids)


def _iter_distinct(
    node: DistinctNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in iterate(node.child, ctx, outer):
        key = row.values[OUTPUT_ALIAS]
        if key in seen:
            continue
        seen.add(key)
        yield row
