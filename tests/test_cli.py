"""Tests for the interactive SQL shell."""

import io

import pytest

from repro.cli import Shell, format_table


def run_shell(lines, db=None):
    out = io.StringIO()
    shell = Shell(db=db, out=out)
    shell.run(lines)
    return shell, out.getvalue()


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "LONGNAME"], [(1, "x"), (22, "yy")])
        lines = text.splitlines()
        assert lines[0] == "A  | LONGNAME"
        assert lines[2] == "1  | x       "

    def test_null_rendering(self):
        text = format_table(["A"], [(None,)])
        assert "NULL" in text

    def test_row_limit(self):
        text = format_table(["A"], [(i,) for i in range(150)], limit=100)
        assert "(50 more rows)" in text


class TestStatements:
    def test_full_session(self):
        __, output = run_shell(
            [
                "CREATE TABLE T (A INTEGER, B VARCHAR(8));",
                "INSERT INTO T VALUES (1, 'one'), (2, 'two');",
                "SELECT * FROM T;",
            ]
        )
        assert "CREATE TABLE: ok" in output
        assert "INSERT: 2 row(s)" in output
        assert "one" in output
        assert "(2 row(s))" in output

    def test_multiline_statement(self):
        __, output = run_shell(
            [
                "CREATE TABLE T (A INTEGER);",
                "SELECT *",
                "FROM T",
                "WHERE A = 1;",
            ]
        )
        assert "(0 row(s))" in output

    def test_error_reported_not_raised(self):
        __, output = run_shell(["SELECT * FROM NOPE;"])
        assert "error:" in output

    def test_explain(self):
        __, output = run_shell(
            [
                "CREATE TABLE T (A INTEGER);",
                "EXPLAIN SELECT * FROM T;",
            ]
        )
        assert "estimated cost" in output
        assert "segment scan" in output

    def test_timing_toggle(self):
        __, output = run_shell(
            [
                "\\timing",
                "CREATE TABLE T (A INTEGER);",
                "SELECT * FROM T;",
            ]
        )
        assert "timing on" in output
        assert "page fetches" in output


class TestMetaCommands:
    def test_quit(self):
        shell, __ = run_shell(["\\q", "SELECT * FROM NOPE;"])
        assert shell.finished

    def test_list_tables_empty(self):
        __, output = run_shell(["\\d"])
        assert "(no tables)" in output

    def test_list_and_describe(self):
        __, output = run_shell(
            [
                "CREATE TABLE T (A INTEGER, B VARCHAR(4));",
                "CREATE INDEX T_A ON T (A);",
                "\\d",
                "\\d T",
            ]
        )
        assert "table T:" in output
        assert "A INTEGER" in output
        assert "T_A" in output

    def test_describe_unknown(self):
        __, output = run_shell(["\\d NOPE"])
        assert "error:" in output

    def test_unknown_command(self):
        __, output = run_shell(["\\frobnicate"])
        assert "unknown command" in output

    def test_input_file(self, tmp_path):
        script = tmp_path / "setup.sql"
        script.write_text(
            "CREATE TABLE T (A INTEGER);\nINSERT INTO T VALUES (7);\n"
        )
        __, output = run_shell([f"\\i {script}", "SELECT A FROM T;"])
        assert "7" in output

    def test_input_file_missing(self):
        __, output = run_shell(["\\i /no/such/file.sql"])
        assert "error:" in output
