"""The Research Storage System (RSS) substrate.

This package reproduces Section 3 of the paper: physical storage of relations
as tuples packed into 4 KiB slotted pages, pages grouped into segments that
may interleave several relations, B-tree indexes whose chained leaves hold
(key, tuple-identifier) entries, and a tuple-at-a-time scan interface (the
RSI) offering segment scans and index scans with optional search arguments
(SARGs) applied below the interface.

Cost accounting is built in: every page touched through the buffer pool and
every tuple returned across the RSI is counted, so the optimizer's predicted
``PAGE FETCHES + W * RSI CALLS`` can be compared against measurements.
"""

from .buffer import BufferPool
from .counters import CostCounters
from .page import PAGE_SIZE, Page, TupleId
from .pagestore import PageStore
from .segment import Segment
from .btree import BTree
from .sargs import SargPredicate, Sargs, CompareOp
from .scan import IndexScan, SegmentScan
from .storage import StorageEngine
from .tuples import decode_tuple, encode_tuple

__all__ = [
    "BTree",
    "BufferPool",
    "CompareOp",
    "CostCounters",
    "IndexScan",
    "PAGE_SIZE",
    "Page",
    "PageStore",
    "SargPredicate",
    "Sargs",
    "Segment",
    "SegmentScan",
    "StorageEngine",
    "TupleId",
    "decode_tuple",
    "encode_tuple",
]
