"""Unit tests for single-relation access path enumeration."""

import pytest

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER, varchar
from repro.optimizer.access_paths import enumerate_paths, probe_factor
from repro.optimizer.binder import Binder
from repro.optimizer.cost import CostModel
from repro.optimizer.orders import InterestingOrders, UNORDERED
from repro.optimizer.plan import IndexAccess, SegmentAccess
from repro.optimizer.predicates import (
    join_factor_as_sarg,
    partition_factors,
    to_cnf_factors,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP",
        [("ENO", INTEGER), ("NAME", varchar(16)), ("DNO", INTEGER), ("SAL", INTEGER)],
    )
    catalog.create_table("DEPT", [("DNO", INTEGER), ("LOC", varchar(16))])
    catalog.create_index("EMP_ENO", "EMP", ["ENO"], unique=True)
    catalog.create_index("EMP_DNO", "EMP", ["DNO"])
    catalog.set_relation_stats("EMP", RelationStats(5000, 60, 1.0))
    catalog.set_relation_stats("DEPT", RelationStats(50, 2, 1.0))
    catalog.set_index_stats("EMP_ENO", IndexStats(5000, 15, 1, 5000))
    catalog.set_index_stats("EMP_DNO", IndexStats(50, 12, 1, 50))
    return catalog


def paths_for(catalog, where=None, tables="EMP"):
    sql = f"SELECT * FROM {tables}"
    if where:
        sql += f" WHERE {where}"
    block = Binder(catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    orders = InterestingOrders(block, factors)
    estimator = SelectivityEstimator(catalog)
    model = CostModel(catalog, w=0.05, buffer_pages=128)
    partition = partition_factors(factors, block.aliases)
    candidates = enumerate_paths(
        "EMP",
        block.alias_table("EMP"),
        partition.local["EMP"],
        catalog,
        estimator,
        model,
        orders,
    )
    return block, factors, candidates, model


class TestEnumeration:
    def test_segment_scan_plus_one_per_index(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog)
        assert len(candidates) == 3
        kinds = [type(candidate.node.access) for candidate in candidates]
        assert kinds.count(SegmentAccess) == 1
        assert kinds.count(IndexAccess) == 2

    def test_unique_equal_path_is_cheapest(self, catalog):
        __, ___, candidates, model = paths_for(catalog, "ENO = 17")
        best = min(candidates, key=lambda c: model.total(c.node.cost))
        assert isinstance(best.node.access, IndexAccess)
        assert best.node.access.index.name == "EMP_ENO"
        assert best.node.cost.pages == 2.0
        assert best.node.rows <= 1.0

    def test_matching_index_beats_segment_scan_when_selective(self, catalog):
        __, ___, candidates, model = paths_for(catalog, "DNO = 9")
        by_cost = sorted(candidates, key=lambda c: model.total(c.node.cost))
        assert isinstance(by_cost[0].node.access, IndexAccess)
        assert by_cost[0].node.access.index.name == "EMP_DNO"

    def test_index_bounds_from_equality(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "DNO = 9")
        access = next(
            c.node.access
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        assert len(access.low) == 1 and len(access.high) == 1
        assert access.low_inclusive and access.high_inclusive

    def test_index_bounds_from_range(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "DNO > 9")
        access = next(
            c.node.access
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        assert len(access.low) == 1
        assert not access.low_inclusive
        assert not access.high

    def test_segment_scan_is_unordered(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog)
        seg = next(
            c for c in candidates if isinstance(c.node.access, SegmentAccess)
        )
        assert seg.order_key == UNORDERED

    def test_non_sargable_becomes_residual(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "NAME LIKE 'A%'")
        for candidate in candidates:
            assert len(candidate.node.residual) == 1
            assert not candidate.node.sargs

    def test_rsicard_excludes_non_sargable(self, catalog):
        # RSICARD uses only sargable factors; rows estimate uses all.
        __, ___, candidates, ____ = paths_for(
            catalog, "DNO = 9 AND NAME LIKE 'A%'"
        )
        seg = next(
            c for c in candidates if isinstance(c.node.access, SegmentAccess)
        )
        assert seg.node.cost.rsi == pytest.approx(5000 / 50)
        assert seg.node.rows == pytest.approx(5000 / 50 * 0.1)


class TestCompositePrefix:
    """Multi-column indexes: SARGs on a key prefix become a range scan."""

    @pytest.fixture
    def composite_catalog(self):
        catalog = Catalog()
        catalog.create_table(
            "EMP",
            [
                ("ENO", INTEGER),
                ("NAME", varchar(16)),
                ("DNO", INTEGER),
                ("SAL", INTEGER),
            ],
        )
        catalog.create_index("EMP_DNO_SAL", "EMP", ["DNO", "SAL"])
        catalog.set_relation_stats("EMP", RelationStats(5000, 60, 1.0))
        catalog.set_index_stats(
            "EMP_DNO_SAL",
            IndexStats(2000, 15, 0, 999, prefix_icards=(40, 2000)),
        )
        return catalog

    @staticmethod
    def _composite_path(candidates):
        return next(
            c
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO_SAL"
        )

    def test_leading_equality_is_a_matching_prefix_range(
        self, composite_catalog
    ):
        __, ___, candidates, ____ = paths_for(composite_catalog, "DNO = 9")
        access = self._composite_path(candidates).node.access
        assert len(access.low) == 1 and len(access.high) == 1
        assert access.low_inclusive and access.high_inclusive
        assert "[prefix 1/2]" in access.describe()

    def test_prefix_selectivity_uses_prefix_cardinality(
        self, composite_catalog
    ):
        # 1 / prefix_icards[0] = 1/40, not 1 / ICARD = 1/2000: the full
        # composite cardinality wildly overstates a one-column prefix.
        __, ___, candidates, ____ = paths_for(composite_catalog, "DNO = 9")
        path = self._composite_path(candidates)
        # The whole relation fits the pool: F * (NINDX + TCARD) pages.
        assert path.node.cost.pages == pytest.approx((15 + 60) / 40)

    def test_row_estimate_uses_leading_prefix_cardinality(
        self, composite_catalog
    ):
        # Table 1's ICARD for "DNO = value" is the leading-prefix count.
        __, ___, candidates, ____ = paths_for(composite_catalog, "DNO = 9")
        for candidate in candidates:
            assert candidate.node.rows == pytest.approx(5000 / 40)

    def test_prefix_plus_range_closes_the_key(self, composite_catalog):
        block, factors, candidates, ____ = paths_for(
            composite_catalog, "DNO = 9 AND SAL > 100"
        )
        path = self._composite_path(candidates)
        access = path.node.access
        # equality bounds both sides; the range factor extends low only
        assert len(access.low) == 2 and len(access.high) == 1
        assert not access.low_inclusive
        estimator = SelectivityEstimator(composite_catalog)
        range_factor = next(
            f for f in factors if "SAL" in str(f.expr)
        )
        expected = (1 / 40) * estimator.factor_selectivity(range_factor)
        assert path.node.cost.pages == pytest.approx(expected * (15 + 60))

    def test_missing_prefix_statistics_fall_back_to_table1(
        self, composite_catalog
    ):
        composite_catalog.set_index_stats(
            "EMP_DNO_SAL", IndexStats(2000, 15, 0, 999)
        )
        __, ___, candidates, ____ = paths_for(composite_catalog, "DNO = 9")
        path = self._composite_path(candidates)
        # Without prefix statistics the estimator sees only ICARD=2000.
        assert path.node.cost.pages == pytest.approx((15 + 60) / 2000)


class TestProbePaths:
    def test_join_probe_enables_index(self, catalog):
        block = Binder(catalog).bind(
            parse_statement(
                "SELECT * FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
            )
        )
        factors = to_cnf_factors(block.where, block)
        join_factor = factors[0]
        sarg = join_factor_as_sarg(join_factor, "EMP")
        probes = [probe_factor(join_factor, sarg)]
        orders = InterestingOrders(block, factors)
        estimator = SelectivityEstimator(catalog)
        model = CostModel(catalog, w=0.05, buffer_pages=128)
        candidates = enumerate_paths(
            "EMP",
            block.alias_table("EMP"),
            [],
            catalog,
            estimator,
            model,
            orders,
            probe_factors=probes,
        )
        probed = next(
            c
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        # The probe bounds the index with the outer column's value.
        assert len(probed.node.access.low) == 1
        # Matching 1/50 of (NINDX + TCARD) pages.
        assert probed.node.cost.pages == pytest.approx((12 + 60) / 50)
