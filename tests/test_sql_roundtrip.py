"""Property test: rendering a parsed query re-parses to the same AST."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse_statement

_columns = st.sampled_from(["A", "B", "C"])
_qualified = st.sampled_from([None, "T", "U"])
_literals = st.one_of(
    st.integers(-999, 999).map(ast.Literal),
    st.text(
        alphabet="abcXYZ '",
        max_size=8,
    ).map(ast.Literal),
    st.just(ast.Literal(None)),
)
_ops = st.sampled_from(list(ast.CompareOp))


@st.composite
def column_refs(draw):
    return ast.ColumnRef(draw(_qualified), draw(_columns))


@st.composite
def predicates(draw):
    kind = draw(st.integers(0, 4))
    column = draw(column_refs())
    if kind == 0:
        return ast.Comparison(draw(_ops), column, draw(_literals))
    if kind == 1:
        low = ast.Literal(draw(st.integers(-99, 0)))
        high = ast.Literal(draw(st.integers(1, 99)))
        return ast.Between(column, low, high)
    if kind == 2:
        values = tuple(
            ast.Literal(v) for v in draw(st.lists(st.integers(-9, 9), min_size=1, max_size=3))
        )
        return ast.InList(column, values)
    if kind == 3:
        return ast.IsNull(column, draw(st.booleans()))
    return ast.Like(column, draw(st.sampled_from(["a%", "_b", "%x%"])), draw(st.booleans()))


def boolean_exprs():
    def extend(children):
        groups = st.lists(children, min_size=2, max_size=3)
        return st.one_of(
            st.builds(lambda items: ast.And(tuple(items)), groups),
            st.builds(lambda items: ast.Or(tuple(items)), groups),
            st.builds(ast.Not, children),
        )

    return st.recursive(predicates(), extend, max_leaves=6)


@given(boolean_exprs())
@settings(max_examples=300)
def test_where_clause_roundtrip(expr):
    """str() of a parsed WHERE re-parses to an equivalent AST."""
    sql = f"SELECT * FROM T, U WHERE {expr}"
    first = parse_statement(sql)
    assert isinstance(first, ast.SelectQuery)
    second = parse_statement(str(first))
    assert first == second


@given(
    st.lists(column_refs(), min_size=1, max_size=3),
    st.lists(st.tuples(column_refs(), st.booleans()), max_size=2),
    st.booleans(),
)
@settings(max_examples=100)
def test_select_shape_roundtrip(select_columns, order_items, distinct):
    parts = ["SELECT"]
    if distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(str(column) for column in select_columns))
    parts.append("FROM T, U")
    if order_items:
        rendered = ", ".join(
            f"{column}{' DESC' if desc else ''}" for column, desc in order_items
        )
        parts.append(f"ORDER BY {rendered}")
    sql = " ".join(parts)
    first = parse_statement(sql)
    second = parse_statement(str(first))
    assert first == second
