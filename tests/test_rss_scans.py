"""Direct tests of the RSI scan layer (segment and index scans)."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import INTEGER, varchar
from repro.rss import StorageEngine
from repro.rss.sargs import CompareOp, SargPredicate, Sargs


@pytest.fixture
def loaded():
    catalog = Catalog()
    table = catalog.create_table(
        "T", [("K", INTEGER), ("NAME", varchar(12)), ("G", INTEGER)]
    )
    engine = StorageEngine(buffer_pages=16)
    engine.ensure_segment(table.segment_name)
    index = catalog.create_index("T_K", "T", ["K"])
    engine.create_index(index, table)
    for i in range(200):
        engine.insert(table, [index], (i, f"n{i}", i % 8))
    return catalog, table, index, engine


class TestIndexScanBounds:
    def test_closed_range(self, loaded):
        __, table, index, engine = loaded
        rows = list(engine.index_scan(index, table, low=(10,), high=(14,)))
        assert [values[0] for __, values in rows] == [10, 11, 12, 13, 14]

    def test_exclusive_low(self, loaded):
        __, table, index, engine = loaded
        rows = list(
            engine.index_scan(
                index, table, low=(10,), high=(13,), low_inclusive=False
            )
        )
        assert [values[0] for __, values in rows] == [11, 12, 13]

    def test_exclusive_high(self, loaded):
        __, table, index, engine = loaded
        rows = list(
            engine.index_scan(
                index, table, low=(10,), high=(13,), high_inclusive=False
            )
        )
        assert [values[0] for __, values in rows] == [10, 11, 12]

    def test_unbounded_scan_in_key_order(self, loaded):
        __, table, index, engine = loaded
        keys = [values[0] for __, values in engine.index_scan(index, table)]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_sargs_filter_below_rsi(self, loaded):
        __, table, index, engine = loaded
        sargs = Sargs.conjunction([SargPredicate(2, CompareOp.EQ, 3)])
        engine.counters.reset()
        rows = list(
            engine.index_scan(index, table, low=(0,), high=(79,), sargs=sargs)
        )
        assert len(rows) == 10  # G == 3 within K 0..79
        assert engine.counters.rsi_calls == 10

    def test_dnf_sargs(self, loaded):
        __, table, ___, engine = loaded
        sargs = Sargs(
            [
                [SargPredicate(0, CompareOp.LT, 3)],
                [SargPredicate(0, CompareOp.GE, 197)],
            ]
        )
        rows = list(engine.segment_scan(table, sargs))
        assert sorted(values[0] for __, values in rows) == [0, 1, 2, 197, 198, 199]

    def test_sarg_with_null_value_matches_nothing(self, loaded):
        __, table, ___, engine = loaded
        sargs = Sargs.conjunction([SargPredicate(0, CompareOp.EQ, None)])
        assert list(engine.segment_scan(table, sargs)) == []

    def test_index_scan_counts_index_and_data_pages(self, loaded):
        __, table, index, engine = loaded
        engine.counters.reset()
        engine.cold_cache()
        list(engine.index_scan(index, table, low=(100,), high=(100,)))
        # Descent + leaf + one data page: a handful, not a scan.
        assert 1 <= engine.counters.page_fetches <= 5

    def test_segment_scan_counts_every_page_once(self, loaded):
        __, table, ___, engine = loaded
        engine.counters.reset()
        engine.cold_cache()
        list(engine.segment_scan(table))
        segment = engine.segment(table.segment_name)
        assert engine.counters.page_fetches == segment.page_count()

    def test_scan_skips_other_relations_tuples(self, loaded):
        catalog, table, __, engine = loaded
        other = catalog.create_table(
            "U", [("X", INTEGER)], segment_name=table.segment_name
        )
        engine.insert(other, [], (999,))
        names = [values[1] for __, values in engine.segment_scan(table)]
        assert len(names) == 200  # U's tuple invisible to T's scan
        xs = [values[0] for __, values in engine.segment_scan(other)]
        assert xs == [999]


class TestBatchingEdgeCases:
    def test_empty_segment_yields_no_batches(self):
        catalog = Catalog()
        table = catalog.create_table("E", [("K", INTEGER)])
        engine = StorageEngine(buffer_pages=8)
        engine.ensure_segment(table.segment_name)
        assert list(engine.segment_scan(table).batches()) == []

    def test_batch_size_one_preserves_order(self, loaded):
        __, table, ___, engine = loaded
        batches = list(engine.segment_scan(table, batch_size=1).batches())
        assert all(len(batch) == 1 for batch in batches)
        keys = [values[0] for batch in batches for __, values in batch]
        assert keys == list(range(200))

    def test_segment_batches_never_span_pages(self, loaded):
        __, table, ___, engine = loaded
        batches = list(engine.segment_scan(table, batch_size=10_000).batches())
        for batch in batches:
            assert len({tid.page_id for tid, __ in batch}) == 1
        assert sum(len(batch) for batch in batches) == 200

    def test_fully_filtered_scan_yields_no_empty_batches(self, loaded):
        __, table, ___, engine = loaded
        scan = engine.segment_scan(table, matcher=lambda values: False)
        assert list(scan.batches()) == []

    def test_index_scan_flushes_final_partial_batch(self, loaded):
        __, table, index, engine = loaded
        scan = engine.index_scan(
            index, table, low=(0,), high=(6,), batch_size=3
        )
        sizes = [len(batch) for batch in scan.batches()]
        assert sizes == [3, 3, 1]


class TestScanViewFrozenAtOpen:
    def test_pages_snapshot_once_per_open(self, loaded):
        """The page list is copied at open, not per ``batches()`` call,
        and appends after the open are invisible to the running scan."""
        catalog, table, index, engine = loaded
        scan = engine.segment_scan(table)
        pages_at_open = scan._page_ids
        assert isinstance(pages_at_open, tuple)
        assert sum(len(b) for b in scan.batches()) == 200
        for i in range(200, 800):
            engine.insert(table, [index], (i, f"n{i}", i % 8))
        # The open scan still walks exactly the frozen page list...
        assert scan._page_ids is pages_at_open
        seen_pages = {
            tid.page_id for b in scan.batches() for tid, __ in b
        }
        assert seen_pages <= set(pages_at_open)
        # ...while a fresh open sees the appended pages.
        fresh = engine.segment_scan(table)
        assert len(fresh._page_ids) > len(pages_at_open)
        assert sum(len(b) for b in fresh.batches()) == 800


class TestDecodeCache:
    def test_segment_cache_reuse_is_invisible(self, loaded):
        __, table, ___, engine = loaded
        cache: dict = {}
        warm = [
            item
            for b in engine.segment_scan(table, decode_cache=cache).batches()
            for item in b
        ]
        assert cache  # populated on the first pass
        engine.counters.reset()
        engine.cold_cache()
        cached = [
            item
            for b in engine.segment_scan(table, decode_cache=cache).batches()
            for item in b
        ]
        cached_fetches = engine.counters.page_fetches
        engine.counters.reset()
        engine.cold_cache()
        plain = [
            item for b in engine.segment_scan(table).batches() for item in b
        ]
        assert cached == plain == warm
        # The fetch trace is identical: the cache skips decoding only.
        assert cached_fetches == engine.counters.page_fetches

    def test_segment_cache_respects_per_open_matcher(self, loaded):
        __, table, ___, engine = loaded
        cache: dict = {}
        # Warm the cache with an unfiltered pass, then scan with SARGs.
        list(engine.segment_scan(table, decode_cache=cache).batches())
        sargs = Sargs.conjunction([SargPredicate(2, CompareOp.EQ, 3)])
        filtered = [
            values[0]
            for b in engine.segment_scan(
                table, sargs, decode_cache=cache
            ).batches()
            for __, values in b
        ]
        reference = [
            values[0]
            for b in engine.segment_scan(table, sargs).batches()
            for __, values in b
        ]
        assert filtered == reference
        assert filtered == [k for k in range(200) if k % 8 == 3]

    def test_index_cache_reuse_is_invisible(self, loaded):
        __, table, index, engine = loaded
        cache: dict = {}
        warm = list(
            engine.index_scan(
                index, table, low=(10,), high=(30,), decode_cache=cache
            ).batches()
        )
        assert cache
        again = list(
            engine.index_scan(
                index, table, low=(10,), high=(30,), decode_cache=cache
            ).batches()
        )
        plain = list(
            engine.index_scan(index, table, low=(10,), high=(30,)).batches()
        )
        assert again == plain == warm
