"""Baseline planners for the evaluation experiments.

The paper's conclusion claims the optimizer "selects the true optimal path
in a large majority of cases"; validating that requires alternatives to
compare against:

- :mod:`repro.baselines.common` — a shared builder of executable left-deep
  plans for an explicit join order and explicit per-step choices.
- :mod:`repro.baselines.exhaustive` — enumerate *every* candidate plan
  (all permutations, all methods, all access paths, Cartesian products
  included) so the true optimum can be found by measurement.
- :mod:`repro.baselines.greedy` — smallest-intermediate-result-first
  greedy join ordering.
- :mod:`repro.baselines.random_order` — seeded random plan choice.
- :mod:`repro.baselines.naive` — the "syntactic" planner: FROM-list order,
  segment scans, nested loops only (what a system without access path
  selection would do).
"""

from .common import LeftDeepBuilder
from .exhaustive import ExhaustivePlanner
from .greedy import GreedyPlanner
from .naive import NaivePlanner
from .random_order import RandomPlanner

__all__ = [
    "ExhaustivePlanner",
    "GreedyPlanner",
    "LeftDeepBuilder",
    "NaivePlanner",
    "RandomPlanner",
]
