"""The concurrent serving layer: sessions, group commit, stress.

Covers the serving contract end to end: snapshot-isolated reads pinned
at statement start, writer serialization through the commit lock with a
typed busy timeout, group-commit batching with per-participant outcomes
(all-or-nothing on commit failure, lone rollback on a statement error),
the Database context-manager/close lifecycle, cost-counter bit-identity
between the session path and the classic engine path in every exec
mode, and the stress harness at the acceptance scale of 100 concurrent
clients plus the serving-layer fault legs.
"""

import threading
import time

import pytest

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.errors import (
    CommitAbortedError,
    DatabaseBusyError,
    FaultInjectedError,
    IntegrityError,
    SimulatedCrash,
    StorageError,
)
from repro.rss.disk import DiskManager
from repro.rss.faults import FaultPlan, get_injector
from repro.serving.stress import run_fault_smoke, run_stress


@pytest.fixture(autouse=True)
def _disarm():
    yield
    get_injector().disarm()


def make_db(tmp_path=None, **kwargs):
    path = str(tmp_path / "serving.pages") if tmp_path is not None else None
    db = Database(path=path, **kwargs)
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)")
    return db


def queue_writers(db, statements):
    """Hold the commit lock, enqueue one writer thread per statement,
    release, and return each thread's outcome (result or exception)."""
    coordinator = db._coordinator
    assert coordinator._commit_lock.try_acquire()
    outcomes = [None] * len(statements)

    def submit(i, sql):
        session = db.session(f"w{i}")
        try:
            outcomes[i] = session.execute(sql)
        except Exception as error:  # noqa: BLE001 — outcome under test
            outcomes[i] = error
        finally:
            session.close()

    threads = [
        threading.Thread(target=submit, args=(i, sql), daemon=True)
        for i, sql in enumerate(statements)
    ]
    try:
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with coordinator._queue_lock:
                if len(coordinator._queue) == len(statements):
                    break
            time.sleep(0.002)
        else:
            raise AssertionError("writers never queued")
    finally:
        coordinator._commit_lock.release()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    return outcomes


# -- snapshot-isolated sessions ---------------------------------------------


def test_session_read_matches_classic_path():
    db = make_db()
    with db.session() as session:
        result = session.execute("SELECT A, B FROM T WHERE A >= 2")
        assert sorted(result.rows) == [(2, 20), (3, 30)]
        assert result.snapshot_version is not None
        assert db.execute("SELECT A, B FROM T WHERE A >= 2").rows == result.rows
    db.close()


def test_pinned_snapshot_ignores_later_commits():
    from repro.engine.executor import Executor
    from repro.serving.session import SnapshotStorage
    from repro.sql import parse_statement

    db = make_db()
    version, meta = db.storage.pin_snapshot()
    try:
        db.execute("INSERT INTO T VALUES (4, 40)")
        db.execute("UPDATE T SET B = 99 WHERE A = 1")
        planned = db.plan_query(parse_statement("SELECT A, B FROM T"))
        frozen = Executor(
            SnapshotStorage(db.storage, version, meta),
            db.catalog,
            db.subquery_cache_mode,
        ).execute(planned)
        # the pinned view is the state at pin time ...
        assert sorted(frozen.rows) == [(1, 10), (2, 20), (3, 30)]
    finally:
        db.storage.unpin(version)
    # ... while a fresh session statement pins the new version
    with db.session() as session:
        now = session.execute("SELECT A, B FROM T")
        assert sorted(now.rows) == [(1, 99), (2, 20), (3, 30), (4, 40)]
        assert now.snapshot_version > version
    db.close()


def test_session_write_returns_commit_version_and_is_readable():
    db = make_db()
    with db.session() as session:
        write = session.execute("INSERT INTO T VALUES (7, 70)")
        assert write.commit_version is not None
        read = session.execute("SELECT B FROM T WHERE A = 7")
        assert read.rows == [(70,)]
        assert read.snapshot_version >= write.commit_version
    db.close()


# -- lifecycle ---------------------------------------------------------------


def test_database_context_manager_and_idempotent_close(tmp_path):
    with Database(path=str(tmp_path / "ctx.pages")) as db:
        db.execute("CREATE TABLE C (A INTEGER)")
        session = db.session("held")
    # close() ran on __exit__: the db and its sessions refuse new work
    with pytest.raises(StorageError):
        session.execute("SELECT A FROM C")
    with pytest.raises(StorageError):
        db.session("late")
    db.close()  # idempotent
    session.close()  # idempotent
    with Database(path=str(tmp_path / "ctx.pages")) as again:
        assert again.execute("SELECT A FROM C").rows == []


# -- commit lock and busy timeout -------------------------------------------


def test_busy_timeout_raises_typed_error():
    db = make_db(commit_timeout=0.05)
    assert db._coordinator._commit_lock.try_acquire()
    try:
        with pytest.raises(DatabaseBusyError) as caught:
            db.execute("INSERT INTO T VALUES (9, 90)")
    finally:
        db._coordinator._commit_lock.release()
    assert isinstance(caught.value, StorageError)
    assert caught.value.timeout == pytest.approx(0.05)
    # the statement never ran and a retry succeeds
    assert db.execute("SELECT A FROM T WHERE A = 9").rows == []
    assert db.execute("INSERT INTO T VALUES (9, 90)").affected_rows == 1
    db.close()


# -- group commit ------------------------------------------------------------


def test_queued_writers_share_one_flip():
    db = make_db()
    coordinator = db._coordinator
    before = (coordinator.batches_committed, coordinator.statements_committed)
    outcomes = queue_writers(
        db,
        [f"INSERT INTO T VALUES ({100 + i}, {i})" for i in range(3)],
    )
    assert all(result.commit_version is not None for result in outcomes)
    assert coordinator.batches_committed == before[0] + 1
    assert coordinator.statements_committed == before[1] + 3
    assert coordinator.largest_batch >= 3
    # one batch -> one page-table flip -> one shared commit version
    assert len({result.commit_version for result in outcomes}) == 1
    assert db.execute("SELECT A FROM T WHERE A >= 100").affected_rows == 3
    db.close()


def test_group_commit_off_flips_per_statement():
    db = make_db(group_commit=False)
    coordinator = db._coordinator
    before = coordinator.batches_committed
    outcomes = queue_writers(
        db,
        [f"INSERT INTO T VALUES ({200 + i}, {i})" for i in range(3)],
    )
    assert coordinator.batches_committed == before + 3
    assert len({result.commit_version for result in outcomes}) == 3
    db.close()


def test_failed_statement_rolls_back_alone():
    db = make_db()
    db.execute("CREATE UNIQUE INDEX TA ON T (A)")
    outcomes = queue_writers(
        db,
        [
            "INSERT INTO T VALUES (300, 1)",
            "INSERT INTO T VALUES (1, 111)",  # duplicate key
            "INSERT INTO T VALUES (301, 2)",
        ],
    )
    assert outcomes[0].commit_version is not None
    assert isinstance(outcomes[1], IntegrityError)
    assert outcomes[2].commit_version is not None
    rows = db.execute("SELECT A, B FROM T WHERE A >= 300 OR A = 1").rows
    assert sorted(rows) == [(1, 10), (300, 1), (301, 2)]
    db.close()


def test_batched_commit_failure_aborts_every_participant(tmp_path):
    db = make_db(tmp_path)
    before = logical_dump(db)
    coordinator = db._coordinator
    assert coordinator._commit_lock.try_acquire()
    get_injector().arm(FaultPlan("group-commit.before-flip", 1, "error"))
    try:
        outcomes = [None] * 3

        def submit(i):
            try:
                outcomes[i] = db.execute(f"INSERT INTO T VALUES ({400 + i}, 0)")
            except Exception as error:  # noqa: BLE001
                outcomes[i] = error

        threads = [
            threading.Thread(target=submit, args=(i,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with coordinator._queue_lock:
                if len(coordinator._queue) == 3:
                    break
            time.sleep(0.002)
    finally:
        coordinator._commit_lock.release()
    for thread in threads:
        thread.join(timeout=30.0)
    assert all(isinstance(outcome, CommitAbortedError) for outcome in outcomes)
    assert all(outcome.participants == 3 for outcome in outcomes)
    assert all(
        isinstance(outcome.__cause__, FaultInjectedError)
        for outcome in outcomes
    )
    # all-or-nothing: nothing of the batch landed, and the engine is clean
    assert logical_dump(db) == before
    assert verify_storage(db) == []
    assert db.execute("INSERT INTO T VALUES (400, 0)").affected_rows == 1
    db.close()


def test_solo_commit_failure_raises_the_original_error():
    db = make_db()
    get_injector().arm(FaultPlan("group-commit.before-flip", 1, "error"))
    with pytest.raises(FaultInjectedError):
        db.execute("INSERT INTO T VALUES (500, 0)")
    assert db.execute("SELECT A FROM T WHERE A = 500").rows == []
    db.close()


# -- new fault points through sessions ---------------------------------------


def test_commit_lock_fault_point_error_and_crash(tmp_path):
    db = Database(path=str(tmp_path / "fp.pages"))
    db.execute("CREATE TABLE F (A INTEGER)")
    get_injector().arm(FaultPlan("commit.lock", 1, "error"))
    with pytest.raises(FaultInjectedError):
        db.execute("INSERT INTO F VALUES (1)")
    get_injector().disarm()
    db.execute("INSERT INTO F VALUES (1)")
    get_injector().arm(FaultPlan("commit.lock", 1, "crash"))
    with db.session() as session:
        with pytest.raises(SimulatedCrash) as caught:
            session.execute("INSERT INTO F VALUES (2)")
    get_injector().disarm()
    restored = DiskManager.restore(
        caught.value.snapshot, tmp_path / "fp-recovered.pages"
    )
    with Database(path=str(restored)) as survivor:
        assert verify_storage(survivor) == []
        assert survivor.execute("SELECT A FROM F").rows == [(1,)]
    db.close()


# -- counter bit-identity ----------------------------------------------------


@pytest.mark.parametrize("mode", ["interp", "compiled", "fused", "parallel"])
def test_session_counters_bit_identical_to_engine(mode):
    db = Database(exec_mode=mode, workers=2)
    db.execute("CREATE TABLE E (A INTEGER, B INTEGER)")
    db.execute("CREATE INDEX EA ON E (A)")
    values = ", ".join(f"({i % 17}, {i})" for i in range(120))
    db.execute(f"INSERT INTO E VALUES {values}")
    db.execute("UPDATE STATISTICS")
    query = "SELECT A, B FROM E WHERE A >= 5 AND A <= 11 ORDER BY B"
    db.cold_cache()
    classic = db.execute(query)
    counters = (
        db.counters.page_fetches,
        db.counters.rsi_calls,
        db.counters.buffer_hits,
    )
    db.cold_cache()
    with db.session() as session:
        served = session.execute(query)
    assert served.rows == classic.rows
    assert (
        db.counters.page_fetches,
        db.counters.rsi_calls,
        db.counters.buffer_hits,
    ) == counters
    db.close()


# -- the stress harness at acceptance scale ----------------------------------


def test_stress_hundred_clients(tmp_path):
    report = run_stress(
        str(tmp_path / "stress.pages"), clients=100, statements=8, seed=11
    )
    assert report.violations == []
    assert report.outcomes == report.statements
    assert report.clients == 100


def test_stress_fault_smoke_legs(tmp_path):
    def make_path(label):
        leg = tmp_path / label.replace(":", "_")
        leg.mkdir()
        return str(leg / "stress.pages")

    for label, report in run_fault_smoke(
        make_path, clients=6, statements=12, seed=5, hit=3
    ):
        assert report.violations == [], (label, report.violations)
