"""Statement execution and nested-query evaluation (Section 6).

The :class:`Runtime` carries the services operators need across blocks:
uncorrelated subqueries are evaluated exactly once and their value (or
value set) cached; correlated subqueries are re-evaluated per referenced
candidate tuple, with the paper's optimization of skipping the
re-evaluation when the referenced value equals the previous one.
``subquery_cache_mode`` chooses between that behaviour (``"prev"``), no
caching (``"none"``), and full memoization (``"memo"``) for the E12
experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..errors import ExecutionError
from ..optimizer.bound import BoundQueryBlock, BoundSubquery
from ..optimizer.planner import PlannedStatement
from ..rss.storage import StorageEngine
from .evaluator import EvalEnv, evaluate
from .operators import ExecContext, iterate
from .rows import OUTPUT_ALIAS
from .scheduler import resolve_backend


@dataclass
class QueryResult:
    """Materialized result of a SELECT."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a single value, got {len(self.rows)} row(s) x "
                f"{len(self.columns)} column(s)"
            )
        return self.rows[0][0]


#: Every execution engine an entry point may select.
VALID_EXEC_MODES = ("fused", "parallel", "compiled", "interp")


def _parse_workers(text: str, source: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        workers = 0
    if workers < 1:
        raise ValueError(
            f"bad worker count {text!r} from {source}: "
            "expected a positive integer"
        )
    return workers


def resolve_exec_settings(
    exec_mode: str | None = None, workers: int | None = None
) -> tuple[str, int]:
    """Resolve ``(mode, workers)`` from arguments and the environment.

    ``exec_mode`` (or the ``REPRO_EXEC`` environment variable when it is
    ``None``) picks one of :data:`VALID_EXEC_MODES`; anything else —
    including a typo — raises a :class:`ValueError` naming the valid
    modes rather than silently falling through to a default engine.  The
    worker count for ``parallel`` comes from, in precedence order: an
    explicit ``workers`` argument, a ``parallel:N`` mode suffix, the
    ``REPRO_WORKERS`` environment variable, then the machine's CPU count.
    """
    mode = exec_mode or os.environ.get("REPRO_EXEC", "fused")
    if ":" in mode:
        mode, __, suffix = mode.partition(":")
        if mode != "parallel":
            raise ValueError(
                f"exec mode {mode!r} takes no ':N' worker suffix "
                "(only 'parallel:N' does)"
            )
        if workers is None:
            workers = _parse_workers(suffix, source="exec_mode suffix")
    if mode not in VALID_EXEC_MODES:
        raise ValueError(
            f"unknown exec mode {mode!r}; valid modes: "
            + ", ".join(VALID_EXEC_MODES)
        )
    if workers is None:
        env_workers = os.environ.get("REPRO_WORKERS")
        if env_workers is not None:
            workers = _parse_workers(env_workers, source="REPRO_WORKERS")
        else:
            workers = (os.cpu_count() or 1) if mode == "parallel" else 1
    elif workers < 1:
        raise ValueError(
            f"bad worker count {workers!r}: expected a positive integer"
        )
    return mode, workers


def resolve_exec_mode(exec_mode: str | None = None) -> str:
    """The execution mode: ``"fused"`` (default), ``"parallel"``,
    ``"compiled"``, or ``"interp"``.

    ``None`` falls back to the ``REPRO_EXEC`` environment variable, letting
    any entry point A/B the fused pipeline engine against the
    generator-per-operator compiled engine and the reference interpreter
    without code changes.
    """
    return resolve_exec_settings(exec_mode)[0]


class Runtime:  # concurrency: statement-scoped
    """Cross-block execution services for one statement."""

    def __init__(
        self,
        storage: StorageEngine,
        catalog: Catalog,
        planned: PlannedStatement,
        subquery_cache_mode: str = "prev",
        exec_mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ):
        if subquery_cache_mode not in ("prev", "none", "memo"):
            raise ValueError(f"bad subquery_cache_mode {subquery_cache_mode!r}")
        mode, resolved_workers = resolve_exec_settings(exec_mode, workers)
        self.backend = resolve_backend(backend)
        self.interpret = mode == "interp"
        # Parallel mode rides the fused driver infrastructure: eligible
        # chains get worker-pool drivers, everything else falls back to
        # the serial fused engine.
        self.parallel = mode == "parallel"
        self.fused = mode == "fused" or self.parallel
        self.workers = resolved_workers
        self.storage = storage
        self.catalog = catalog
        self.planned = planned
        self.cache_mode = subquery_cache_mode
        self._scalar_cache: dict[int, object] = {}
        self._set_cache: dict[int, tuple[set, bool]] = {}
        self._prev_scalar: dict[int, tuple[tuple, object]] = {}
        self._prev_set: dict[int, tuple[tuple, tuple[set, bool]]] = {}
        self._memo_scalar: dict[tuple[int, tuple], object] = {}
        self._memo_set: dict[tuple[int, tuple], tuple[set, bool]] = {}
        #: Times each block was actually (re-)evaluated, keyed by block id.
        self.evaluation_counts: dict[int, int] = {}

    # -- evaluator callbacks ----------------------------------------------------

    def scalar_subquery_value(self, subquery: BoundSubquery, env: EvalEnv) -> object:
        """The single value of a scalar subquery (cached per Section 6)."""
        block = subquery.block
        if not block.is_correlated:
            key = id(block)
            if key not in self._scalar_cache:
                self._scalar_cache[key] = self._evaluate_scalar(block, None)
            return self._scalar_cache[key]
        correlation = self._correlation_key(block, env)
        if self.cache_mode == "prev":
            cached = self._prev_scalar.get(id(block))
            if cached is not None and cached[0] == correlation:
                return cached[1]
        elif self.cache_mode == "memo":
            memo_key = (id(block), correlation)
            if memo_key in self._memo_scalar:
                return self._memo_scalar[memo_key]
        value = self._evaluate_scalar(block, env)
        if self.cache_mode == "prev":
            self._prev_scalar[id(block)] = (correlation, value)
        elif self.cache_mode == "memo":
            self._memo_scalar[(id(block), correlation)] = value
        return value

    def in_subquery_set(
        self, subquery: BoundSubquery, env: EvalEnv
    ) -> tuple[set, bool]:
        """The value set of an IN-subquery plus a saw-NULL flag (cached)."""
        block = subquery.block
        if not block.is_correlated:
            key = id(block)
            if key not in self._set_cache:
                self._set_cache[key] = self._evaluate_set(block, None)
            return self._set_cache[key]
        correlation = self._correlation_key(block, env)
        if self.cache_mode == "prev":
            cached = self._prev_set.get(id(block))
            if cached is not None and cached[0] == correlation:
                return cached[1]
        elif self.cache_mode == "memo":
            memo_key = (id(block), correlation)
            if memo_key in self._memo_set:
                return self._memo_set[memo_key]
        result = self._evaluate_set(block, env)
        if self.cache_mode == "prev":
            self._prev_set[id(block)] = (correlation, result)
        elif self.cache_mode == "memo":
            self._memo_set[(id(block), correlation)] = result
        return result

    # -- block evaluation ------------------------------------------------------------

    def _correlation_key(self, block: BoundQueryBlock, env: EvalEnv) -> tuple:
        return tuple(evaluate(column, env) for column in block.correlated_columns)

    def _block_values(
        self, block: BoundQueryBlock, env: EvalEnv | None
    ) -> list[object]:
        planned = self.planned.subquery_plans.get(id(block))
        if planned is None:
            raise ExecutionError(f"no plan for nested block #{block.block_id}")
        self.evaluation_counts[block.block_id] = (
            self.evaluation_counts.get(block.block_id, 0) + 1
        )
        ctx = _context_for(self, planned)
        if ctx.fused:
            from .fuse import output_tuples

            return [
                values[0]
                for values in output_tuples(planned.root, ctx, outer=env)
            ]
        return [
            row.values[OUTPUT_ALIAS][0]
            for row in iterate(planned.root, ctx, outer=env)
        ]

    def _evaluate_scalar(self, block: BoundQueryBlock, env: EvalEnv | None) -> object:
        values = self._block_values(block, env)
        if not values:
            return None
        if len(values) > 1:
            raise ExecutionError(
                f"scalar subquery returned {len(values)} rows"
            )
        return values[0]

    def _evaluate_set(
        self, block: BoundQueryBlock, env: EvalEnv | None
    ) -> tuple[set, bool]:
        values = self._block_values(block, env)
        result = {value for value in values if value is not None}
        saw_null = any(value is None for value in values)
        return result, saw_null


def _context_for(runtime: Runtime, planned: PlannedStatement) -> ExecContext:
    schemas = {
        entry.alias: [column.datatype for column in entry.table.columns]
        for entry in planned.block.tables
    }
    return ExecContext(
        runtime=runtime,
        schemas=schemas,
        interpret=getattr(runtime, "interpret", False),
        fused=getattr(runtime, "fused", False),
        parallel=getattr(runtime, "parallel", False),
        workers=getattr(runtime, "workers", 1),
        backend=getattr(runtime, "backend", "thread"),
    )


class Executor:  # concurrency: statement-scoped
    """Runs planned statements against a storage engine."""

    def __init__(
        self,
        storage: StorageEngine,
        catalog: Catalog,
        subquery_cache_mode: str = "prev",
        exec_mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ):
        self._storage = storage
        self._catalog = catalog
        self._cache_mode = subquery_cache_mode
        self._exec_mode, self._workers = resolve_exec_settings(
            exec_mode, workers
        )
        self._backend = resolve_backend(backend)
        self.last_runtime: Runtime | None = None

    def execute(self, planned: PlannedStatement) -> QueryResult:
        """Run a planned SELECT to completion."""
        runtime = Runtime(
            self._storage, self._catalog, planned, self._cache_mode,
            exec_mode=self._exec_mode, workers=self._workers,
            backend=self._backend,
        )
        self.last_runtime = runtime
        ctx = _context_for(runtime, planned)
        if ctx.fused:
            from .fuse import output_tuples

            rows = list(output_tuples(planned.root, ctx))
        else:
            rows = [
                row.values[OUTPUT_ALIAS]
                for row in iterate(planned.root, ctx, outer=None)
            ]
        return QueryResult(columns=list(planned.output_names), rows=rows)

    def execute_rows(self, planned: PlannedStatement):
        """Yield pre-projection rows (with TIDs) — used by UPDATE/DELETE."""
        runtime = Runtime(
            self._storage, self._catalog, planned, self._cache_mode,
            exec_mode=self._exec_mode, workers=self._workers,
            backend=self._backend,
        )
        self.last_runtime = runtime
        node = planned.root
        from ..optimizer.plan import DistinctNode, ProjectNode

        while isinstance(node, (ProjectNode, DistinctNode)):
            node = node.child
        ctx = _context_for(runtime, planned)
        return iterate(node, ctx, outer=None)
