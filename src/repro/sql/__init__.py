"""SQL front end: lexer, abstract syntax tree, and parser.

Covers the language surface the paper exercises: SELECT / FROM / WHERE with
boolean combinations of predicates (comparisons, BETWEEN, IN lists, LIKE,
IS NULL), GROUP BY / ORDER BY, aggregate functions, scalar and IN
subqueries including correlation references, plus the DDL and DML needed to
drive the system (CREATE TABLE / INDEX, INSERT, UPDATE, DELETE, and the
UPDATE STATISTICS command).
"""

from . import ast
from .lexer import Lexer, Token, TokenType, tokenize
from .parser import Parser, parse_statement

__all__ = [
    "Lexer",
    "Parser",
    "Token",
    "TokenType",
    "ast",
    "parse_statement",
    "tokenize",
]
