"""The DP must never be beaten on predicted cost by exhaustive enumeration.

With the join-order heuristic disabled, the dynamic program explores every
left-deep shape the exhaustive baseline can build (and more merge-join
variants), under the same cost model — so the DP's chosen predicted total
must be <= the predicted total of every exhaustively enumerated plan.
This is the classic correctness property of Selinger's search.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ExhaustivePlanner
from repro.optimizer.binder import Binder
from repro.sql import parse_statement
from repro.workloads import build_database, random_chain_spec, random_select_query


def check_dp_not_beaten(seed: int, tables_count: int) -> None:
    rng = random.Random(seed)
    tables = random_chain_spec(
        tables_count, rng, min_rows=30, max_rows=200, index_probability=0.8
    )
    db = build_database(tables, seed=seed)
    db.use_heuristic = False
    sql = random_select_query(tables, rng)
    chosen = db.plan(sql)
    planner = ExhaustivePlanner(db.optimizer(), db.catalog)
    block = Binder(db.catalog).bind(parse_statement(sql))
    candidates = planner.enumerate_statements(block, max_plans=300)
    best_enumerated = min(p.estimated_total() for p in candidates)
    assert chosen.estimated_total() <= best_enumerated * 1.0001 + 1e-9, (
        f"DP chose {chosen.estimated_total():.3f} but exhaustive found "
        f"{best_enumerated:.3f} (seed {seed}, {tables_count} tables)"
    )


class TestDpOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_two_tables(self, seed):
        check_dp_not_beaten(seed, 2)

    @pytest.mark.parametrize("seed", range(8))
    def test_three_tables(self, seed):
        check_dp_not_beaten(seed + 100, 3)

    @given(st.integers(0, 100_000))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_seeds(self, seed):
        check_dp_not_beaten(seed, 2)
