"""Unit tests for tuple serialization."""

import pytest

from repro.datatypes import FLOAT, INTEGER, varchar
from repro.errors import StorageError
from repro.rss.tuples import (
    decode_tuple,
    encode_tuple,
    max_record_size,
    record_relation_id,
)

SCHEMA = [INTEGER, varchar(20), FLOAT]


class TestRoundTrip:
    def test_simple(self):
        values = (42, "hello", 3.25)
        record = encode_tuple(7, values, SCHEMA)
        assert decode_tuple(record, SCHEMA) == values

    def test_relation_id_tag(self):
        record = encode_tuple(300, (1, "x", 0.0), SCHEMA)
        assert record_relation_id(record) == 300

    def test_nulls(self):
        values = (None, None, None)
        record = encode_tuple(1, values, SCHEMA)
        assert decode_tuple(record, SCHEMA) == values

    def test_mixed_nulls(self):
        values = (5, None, 2.5)
        record = encode_tuple(1, values, SCHEMA)
        assert decode_tuple(record, SCHEMA) == values

    def test_empty_string(self):
        record = encode_tuple(1, (0, "", 0.0), SCHEMA)
        assert decode_tuple(record, SCHEMA) == (0, "", 0.0)

    def test_unicode_string(self):
        record = encode_tuple(1, (0, "héllo", 0.0), SCHEMA)
        assert decode_tuple(record, SCHEMA)[1] == "héllo"

    def test_negative_integers(self):
        record = encode_tuple(1, (-(2**60), "x", -1.5), SCHEMA)
        assert decode_tuple(record, SCHEMA) == (-(2**60), "x", -1.5)

    def test_many_columns_bitmap(self):
        schema = [INTEGER] * 20
        values = tuple(i if i % 3 else None for i in range(20))
        record = encode_tuple(1, values, schema)
        assert decode_tuple(record, schema) == values


class TestErrors:
    def test_arity_mismatch(self):
        with pytest.raises(StorageError):
            encode_tuple(1, (1, "x"), SCHEMA)


class TestMaxRecordSize:
    def test_formula(self):
        # 2 (relid) + 1 (bitmap for 3 cols) + 8 + (2+20) + 8
        assert max_record_size(SCHEMA) == 2 + 1 + 8 + 22 + 8

    def test_encoded_never_exceeds_max(self):
        values = (2**62, "x" * 20, 1e300)
        assert len(encode_tuple(1, values, SCHEMA)) <= max_record_size(SCHEMA)
