"""``repro bench --serving`` — concurrent-serving throughput.

Sweeps the stress harness's mixed read/write workload over a grid of
client counts, once with group commit batching page-table flips and once
with every statement flipping alone, against a durable database.  Each
cell reuses :func:`repro.serving.stress.run_stress`, so a cell only
counts if its snapshot-isolation invariants verified clean — a benchmark
number from a run that broke isolation would be meaningless.

The report (``BENCH_serving.json``) records per-cell throughput so the
group-commit speedup under write contention is a committed, comparable
artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from ..serving.stress import run_stress

DEFAULT_OUTPUT = "BENCH_serving.json"
CLIENT_COUNTS = (1, 4, 16, 32)
QUICK_CLIENT_COUNTS = (1, 8)


def run_grid(
    client_counts=CLIENT_COUNTS, statements: int = 30, seed: int = 0
) -> dict:
    """Run the sweep and return the report dict."""
    cells = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as scratch:
        for clients in client_counts:
            for group_commit in (True, False):
                label = f"c{clients}-{'gc' if group_commit else 'solo'}"
                cell_dir = os.path.join(scratch, label)
                os.makedirs(cell_dir)
                report = run_stress(
                    os.path.join(cell_dir, "bench.pages"),
                    clients=clients,
                    statements=statements,
                    seed=seed,
                    group_commit=group_commit,
                )
                throughput = (
                    report.outcomes / report.elapsed
                    if report.elapsed > 0
                    else 0.0
                )
                cells.append(
                    {
                        "clients": clients,
                        "group_commit": group_commit,
                        "statements": report.statements,
                        "outcomes": report.outcomes,
                        "committed": report.committed,
                        "busy_timeouts": report.busy_timeouts,
                        "elapsed_s": round(report.elapsed, 4),
                        "throughput_stmt_s": round(throughput, 1),
                        "isolation_ok": report.ok,
                    }
                )
    return {
        "benchmark": "serving",
        "workload": {
            "statements_per_client": statements,
            "seed": seed,
            "mix": "45% log reads, 20% group reads, 25% inserts, "
            "7% group updates, 2% churn, 1% update statistics",
        },
        "cells": cells,
    }


def render(report: dict) -> str:
    lines = [
        f"{'clients':>7}  {'group commit':>12}  {'stmt/s':>8}  "
        f"{'committed':>9}  {'busy':>5}  isolation"
    ]
    for cell in report["cells"]:
        lines.append(
            f"{cell['clients']:>7}  "
            f"{'on' if cell['group_commit'] else 'off':>12}  "
            f"{cell['throughput_stmt_s']:>8.1f}  {cell['committed']:>9}  "
            f"{cell['busy_timeouts']:>5}  "
            f"{'ok' if cell['isolation_ok'] else 'VIOLATED'}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro bench --serving [--quick] [--output PATH]``."""
    parser = argparse.ArgumentParser(
        prog="repro bench --serving",
        description="benchmark concurrent serving throughput vs client "
        "count, group commit on and off",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small client grid for CI smoke runs",
    )
    parser.add_argument(
        "--statements",
        type=int,
        default=30,
        help="statements per client (default 30)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    counts = QUICK_CLIENT_COUNTS if args.quick else CLIENT_COUNTS
    report = run_grid(counts, statements=args.statements, seed=args.seed)
    print(render(report))
    broken = [cell for cell in report["cells"] if not cell["isolation_ok"]]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if broken:
        print(
            f"{len(broken)} cell(s) broke snapshot isolation", file=sys.stderr
        )
        return 1
    return 0
