"""Synthetic schema, data, and query generation.

Workloads are described declaratively (:class:`TableSpec` and friends) and
materialized into a fresh :class:`~repro.database.Database`; query
generators then produce SQL over that schema.  Everything is seeded for
reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..database import Database
from .empdept import load_rows


@dataclass
class ColumnSpec:
    """An integer column drawn uniformly from ``distinct`` values.

    Values range over [low, low + distinct); ``distinct`` therefore plays
    the role ICARD will measure once an index exists on the column.
    ``sequential`` columns instead take the values low, low+1, ... in row
    order (key-like, duplicate-free).  A nonzero ``zipf`` exponent skews
    the draw: value rank ``r`` (1-based) is drawn with weight
    ``1 / r**zipf``, so ``zipf=1.4`` over ``distinct=40`` puts roughly a
    third of all rows on the hottest value — the shape that starves
    static range partitioning.
    """

    name: str
    distinct: int
    low: int = 0
    sequential: bool = False
    zipf: float = 0.0


@dataclass
class IndexSpec:
    """Declarative index description for a synthetic table."""
    name: str
    columns: list[str]
    unique: bool = False
    clustered: bool = False


@dataclass
class TableSpec:
    """Declarative description of one synthetic table."""
    name: str
    rows: int
    columns: list[ColumnSpec]
    indexes: list[IndexSpec] = field(default_factory=list)
    pad_bytes: int = 0  # adds a PAD VARCHAR column to widen tuples
    #: Sort rows by this column before loading, so equal values sit on
    #: contiguous pages — with a skewed column this concentrates the hot
    #: value's pages in one static partition.
    cluster_by: str | None = None

    def column(self, name: str) -> ColumnSpec:
        """The column spec for a name; raises KeyError when absent."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)


def build_database(
    tables: list[TableSpec],
    seed: int = 0,
    buffer_pages: int = 64,
    collect_stats: bool = True,
) -> Database:
    """Materialize a schema spec into a populated database."""
    rng = random.Random(seed)
    db = Database(buffer_pages=buffer_pages)
    for spec in tables:
        columns_sql = ", ".join(
            f"{column.name} INTEGER" for column in spec.columns
        )
        if spec.pad_bytes:
            columns_sql += f", PAD VARCHAR({spec.pad_bytes})"
        db.execute(f"CREATE TABLE {spec.name} ({columns_sql})")
        rows = []
        padding = "x" * spec.pad_bytes
        zipf_values = {
            column.name: _zipf_values(column, spec.rows, rng)
            for column in spec.columns
            if column.zipf
        }
        for row_number in range(spec.rows):
            row = []
            for column in spec.columns:
                if column.sequential or (
                    column.distinct >= spec.rows and column.name.endswith("ID")
                ):
                    # Key-like columns get distinct sequential values.
                    row.append(column.low + row_number)
                elif column.zipf:
                    row.append(zipf_values[column.name][row_number])
                else:
                    row.append(column.low + rng.randrange(column.distinct))
            if spec.pad_bytes:
                row.append(padding)
            rows.append(tuple(row))
        if spec.cluster_by is not None:
            position = [c.name for c in spec.columns].index(spec.cluster_by)
            rows.sort(key=lambda row: row[position])
        load_rows(db, spec.name, rows)
        for index in spec.indexes:
            unique = "UNIQUE " if index.unique else ""
            cluster = " CLUSTER" if index.clustered else ""
            columns = ", ".join(index.columns)
            db.execute(
                f"CREATE {unique}INDEX {index.name} ON {spec.name} "
                f"({columns}){cluster}"
            )
    if collect_stats:
        db.execute("UPDATE STATISTICS")
    return db


def _zipf_values(
    column: ColumnSpec, rows: int, rng: random.Random
) -> list[int]:
    """``rows`` draws from a Zipf(``column.zipf``) over the value domain.

    Rank 1 (weight ``1/1**s``) maps to ``column.low``, rank 2 to
    ``low + 1``, and so on — deterministic given the seeded ``rng``.
    """
    weights = [
        1.0 / (rank ** column.zipf) for rank in range(1, column.distinct + 1)
    ]
    values = [column.low + rank for rank in range(column.distinct)]
    return rng.choices(values, weights=weights, k=rows)


def random_chain_spec(
    count: int,
    rng: random.Random,
    min_rows: int = 50,
    max_rows: int = 800,
    index_probability: float = 0.7,
    pad_bytes: int = 0,
) -> list[TableSpec]:
    """A chain-join schema: T1.J1 = T2.J1, T2.J2 = T3.J2, ...

    Each table Ti has an id column, join columns shared with its chain
    neighbours, and a filterable attribute column; indexes appear on join
    columns with the given probability.  The two sides of each join draw
    from one shared domain whose cardinality is comparable to the table
    sizes, so join outputs stay selective (FK-like), as in realistic
    workloads.
    """
    row_counts = [rng.randint(min_rows, max_rows) for __ in range(count)]
    join_domains = [
        rng.randint(max(10, min(row_counts) // 2), max(row_counts))
        for __ in range(max(0, count - 1))
    ]
    tables: list[TableSpec] = []
    for position in range(count):
        rows = row_counts[position]
        columns = [ColumnSpec(f"TID", distinct=rows * 2, low=0)]
        if position > 0:
            columns.append(
                ColumnSpec(f"J{position}", distinct=join_domains[position - 1])
            )
        if position < count - 1:
            columns.append(
                ColumnSpec(f"J{position + 1}", distinct=join_domains[position])
            )
        columns.append(ColumnSpec("ATTR", distinct=rng.randint(4, 100)))
        indexes = []
        for column in columns[1:]:
            if rng.random() < index_probability:
                indexes.append(
                    IndexSpec(f"IX_T{position + 1}_{column.name}", [column.name])
                )
        tables.append(
            TableSpec(
                name=f"T{position + 1}",
                rows=rows,
                columns=columns,
                indexes=indexes,
                pad_bytes=pad_bytes,
            )
        )
    return tables


def chain_join_query(
    tables: list[TableSpec],
    selections: list[tuple[str, str, int]] | None = None,
) -> str:
    """The natural chain join over :func:`random_chain_spec` tables.

    ``selections`` are extra (table, column, value) equality filters.
    """
    froms = ", ".join(spec.name for spec in tables)
    predicates = [
        f"{tables[i].name}.J{i + 1} = {tables[i + 1].name}.J{i + 1}"
        for i in range(len(tables) - 1)
    ]
    for table, column, value in selections or []:
        predicates.append(f"{table}.{column} = {value}")
    where = " AND ".join(predicates)
    return f"SELECT * FROM {froms} WHERE {where}"


def random_star_spec(
    dimensions: int,
    rng: random.Random,
    fact_rows: int = 2000,
    min_dim_rows: int = 20,
    max_dim_rows: int = 200,
    index_probability: float = 1.0,
    pad_bytes: int = 0,
) -> list[TableSpec]:
    """A star schema: FACT with one FK per dimension table.

    Dimension ``DIMi`` has ``rows`` distinct ``KEY`` values (0..rows-1,
    unique); FACT.FKi draws uniformly from that domain, so every
    FACT-DIM join is FK-like.  All relations join only through FACT —
    the topology that stresses the DP's extension fan-out most.
    """
    specs: list[TableSpec] = []
    fact_columns = [ColumnSpec("FID", distinct=fact_rows * 2)]
    for number in range(1, dimensions + 1):
        dim_rows = rng.randint(min_dim_rows, max_dim_rows)
        dim_columns = [
            ColumnSpec("KEY", distinct=dim_rows, sequential=True),
            ColumnSpec("ATTR", distinct=rng.randint(4, 50)),
        ]
        indexes = [IndexSpec(f"IX_DIM{number}_KEY", ["KEY"], unique=True)]
        if rng.random() < index_probability:
            indexes.append(IndexSpec(f"IX_DIM{number}_ATTR", ["ATTR"]))
        specs.append(
            TableSpec(
                name=f"DIM{number}",
                rows=dim_rows,
                columns=dim_columns,
                indexes=indexes,
                pad_bytes=pad_bytes,
            )
        )
        fact_columns.append(ColumnSpec(f"FK{number}", distinct=dim_rows))
    fact_indexes = [
        IndexSpec(f"IX_FACT_FK{number}", [f"FK{number}"])
        for number in range(1, dimensions + 1)
        if rng.random() < index_probability
    ]
    specs.insert(
        0,
        TableSpec(
            name="FACT",
            rows=fact_rows,
            columns=fact_columns,
            indexes=fact_indexes,
            pad_bytes=pad_bytes,
        ),
    )
    return specs


def star_join_query(
    specs: list[TableSpec],
    selections: list[tuple[str, str, int]] | None = None,
) -> str:
    """The natural star join over :func:`random_star_spec` tables."""
    froms = ", ".join(spec.name for spec in specs)
    predicates = [
        f"FACT.FK{number} = DIM{number}.KEY"
        for number in range(1, len(specs))
    ]
    for table, column, value in selections or []:
        predicates.append(f"{table}.{column} = {value}")
    return f"SELECT * FROM {froms} WHERE {' AND '.join(predicates)}"


def random_clique_spec(
    count: int,
    rng: random.Random,
    min_rows: int = 50,
    max_rows: int = 400,
    index_probability: float = 0.5,
    pad_bytes: int = 0,
) -> list[TableSpec]:
    """A clique-join schema: every pair of tables shares a join column.

    Table Ti carries one column ``C{i}_{j}`` per partner Tj (i < j names
    the shared domain), all drawn from one domain per pair.  With every
    relation connected to every other, the join-order heuristic never
    prunes an extension, so the DP visits all 2^n subsets — the worst
    case for enumeration cost.
    """
    row_counts = [rng.randint(min_rows, max_rows) for __ in range(count)]
    domains = {
        (i, j): rng.randint(max(10, min(row_counts) // 2), max(row_counts))
        for i in range(count)
        for j in range(i + 1, count)
    }
    tables: list[TableSpec] = []
    for position in range(count):
        rows = row_counts[position]
        columns = [ColumnSpec("TID", distinct=rows * 2, low=0)]
        for other in range(count):
            if other == position:
                continue
            pair = (min(position, other), max(position, other))
            columns.append(
                ColumnSpec(
                    f"C{pair[0] + 1}_{pair[1] + 1}", distinct=domains[pair]
                )
            )
        columns.append(ColumnSpec("ATTR", distinct=rng.randint(4, 100)))
        indexes = [
            IndexSpec(f"IX_T{position + 1}_{column.name}", [column.name])
            for column in columns[1:]
            if rng.random() < index_probability
        ]
        tables.append(
            TableSpec(
                name=f"T{position + 1}",
                rows=rows,
                columns=columns,
                indexes=indexes,
                pad_bytes=pad_bytes,
            )
        )
    return tables


def clique_join_query(
    tables: list[TableSpec],
    selections: list[tuple[str, str, int]] | None = None,
) -> str:
    """The all-pairs equi-join over :func:`random_clique_spec` tables."""
    froms = ", ".join(spec.name for spec in tables)
    predicates = [
        f"T{i + 1}.C{i + 1}_{j + 1} = T{j + 1}.C{i + 1}_{j + 1}"
        for i in range(len(tables))
        for j in range(i + 1, len(tables))
    ]
    for table, column, value in selections or []:
        predicates.append(f"{table}.{column} = {value}")
    return f"SELECT * FROM {froms} WHERE {' AND '.join(predicates)}"


def random_select_query(
    tables: list[TableSpec], rng: random.Random, max_selections: int = 2
) -> str:
    """A chain join with up to ``max_selections`` random equality filters."""
    selections: list[tuple[str, str, int]] = []
    count = rng.randint(0, max_selections)
    for __ in range(count):
        spec = rng.choice(tables)
        column = rng.choice([c for c in spec.columns if c.name == "ATTR"])
        value = column.low + rng.randrange(column.distinct)
        selections.append((spec.name, column.name, value))
    return chain_join_query(tables, selections)
