"""Property-based tests (hypothesis) for core invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datatypes import FLOAT, INTEGER, varchar
from repro.engine.evaluator import EvalEnv, evaluate, predicate_holds
from repro.engine.rows import Row
from repro.errors import PageFullError
from repro.optimizer.binder import Binder
from repro.optimizer.bound import BoundColumn
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.rss.btree import BTree, orderable_key
from repro.rss.buffer import BufferPool
from repro.rss.counters import CostCounters
from repro.rss.page import Page, TupleId
from repro.rss.pagestore import PageStore
from repro.rss.sargs import CompareOp, SargPredicate, Sargs
from repro.rss.tuples import decode_tuple, encode_tuple
from repro.sql import ast


# ---------------------------------------------------------------------------
# tuple serialization
# ---------------------------------------------------------------------------

value_strategies = {
    "int": st.one_of(st.none(), st.integers(min_value=-(2**63), max_value=2**63 - 1)),
    "float": st.one_of(
        st.none(),
        st.floats(allow_nan=False, allow_infinity=True, width=64),
    ),
    "str": st.one_of(st.none(), st.text(max_size=10)),
}


@st.composite
def schema_and_values(draw):
    kinds = draw(
        st.lists(st.sampled_from(["int", "float", "str"]), min_size=1, max_size=8)
    )
    datatypes = []
    values = []
    for kind in kinds:
        if kind == "int":
            datatypes.append(INTEGER)
        elif kind == "float":
            datatypes.append(FLOAT)
        else:
            datatypes.append(varchar(40))
        values.append(draw(value_strategies[kind]))
    return datatypes, tuple(values)


@given(schema_and_values())
@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
def test_tuple_roundtrip(schema_values):
    datatypes, values = schema_values
    record = encode_tuple(3, values, datatypes)
    assert decode_tuple(record, datatypes) == values


# ---------------------------------------------------------------------------
# slotted page model check
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.binary(min_size=1, max_size=600)),
            st.tuples(st.just("delete"), st.integers(0, 30)),
            st.tuples(st.just("update"), st.integers(0, 30)),
        ),
        max_size=60,
    )
)
def test_page_matches_model(operations):
    page = Page(1)
    model: dict[int, bytes] = {}
    for op, arg in operations:
        if op == "insert":
            try:
                slot = page.insert(arg)
            except PageFullError:
                continue
            model[slot] = arg
        elif op == "delete":
            if arg in model:
                page.delete(arg)
                del model[arg]
        else:  # update shrink-to-one-byte, always fits in place
            if arg in model:
                assert page.update(arg, b"z") is True
                model[arg] = b"z"
    assert dict(page.records()) == model
    assert page.occupied_slots() == len(model)


# ---------------------------------------------------------------------------
# B-tree vs sorted-list model
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=300),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_btree_matches_sorted_model(keys, data):
    store = PageStore()
    tree = BTree(store, BufferPool(store, CostCounters(), 512), [INTEGER])
    entries = []
    for position, key in enumerate(keys):
        tid = TupleId(position, 0)
        tree.insert((key,), tid)
        entries.append((key, tid))
    # Delete a random subset.
    to_delete = data.draw(
        st.lists(st.integers(0, len(entries) - 1), unique=True, max_size=len(entries))
        if entries
        else st.just([])
    )
    for position in to_delete:
        key, tid = entries[position]
        tree.delete((key,), tid)
    remaining = [
        entries[i] for i in range(len(entries)) if i not in set(to_delete)
    ]
    expected = sorted(remaining, key=lambda pair: (pair[0], pair[1]))
    got = [(key[0], tid) for key, tid in tree.scan_all()]
    assert got == expected
    # Range scans agree with a filtered model.
    if remaining:
        low = data.draw(st.integers(-50, 50))
        high = data.draw(st.integers(low, 50))
        model_range = [pair for pair in expected if low <= pair[0] <= high]
        got_range = [(key[0], tid) for key, tid in tree.scan_range((low,), (high,))]
        assert got_range == model_range


@given(st.lists(st.one_of(st.none(), st.integers(-5, 5)), min_size=2, max_size=2))
def test_orderable_key_total_order(parts):
    left = orderable_key(tuple(parts))
    right = orderable_key(tuple(reversed(parts)))
    # Total order: exactly one of <, ==, > holds and is consistent.
    assert (left < right) + (left == right) + (left > right) == 1


# ---------------------------------------------------------------------------
# SARG evaluation agrees with the expression evaluator
# ---------------------------------------------------------------------------

_ops = list(CompareOp)


@given(
    st.sampled_from(_ops),
    st.one_of(st.none(), st.integers(-5, 5)),
    st.one_of(st.none(), st.integers(-5, 5)),
)
def test_sarg_matches_evaluator(op, column_value, literal):
    sarg = Sargs.conjunction([SargPredicate(0, op, literal)])
    column = BoundColumn("T", 0, "A", "T", INTEGER, 1)
    expr = ast.Comparison(op, column, ast.Literal(literal))
    env = EvalEnv(row=Row(values={"T": (column_value,)}), runtime=None)
    assert sarg.matches((column_value,)) == predicate_holds(expr, env)


# ---------------------------------------------------------------------------
# CNF conversion preserves filtering semantics (Kleene logic)
# ---------------------------------------------------------------------------


def _predicate_exprs(columns):
    literals = st.integers(-3, 3).map(ast.Literal)
    simple = st.builds(
        ast.Comparison,
        st.sampled_from(_ops),
        st.sampled_from(columns),
        literals,
    )
    between = st.builds(
        ast.Between, st.sampled_from(columns), literals, literals
    )
    in_list = st.builds(
        lambda column, values: ast.InList(column, tuple(map(ast.Literal, values))),
        st.sampled_from(columns),
        st.lists(st.integers(-3, 3), min_size=1, max_size=3),
    )
    leaves = st.one_of(simple, between, in_list)

    def extend(children):
        groups = st.lists(children, min_size=2, max_size=3)
        return st.one_of(
            st.builds(lambda items: ast.And(tuple(items)), groups),
            st.builds(lambda items: ast.Or(tuple(items)), groups),
            st.builds(ast.Not, children),
        )

    return st.recursive(leaves, extend, max_leaves=8)


_COLUMNS = [
    BoundColumn("T", position, name, "T", INTEGER, 1)
    for position, name in enumerate(("A", "B", "C"))
]


class _FakeBlock:
    block_id = 1


@given(
    _predicate_exprs(_COLUMNS),
    st.tuples(
        st.one_of(st.none(), st.integers(-3, 3)),
        st.one_of(st.none(), st.integers(-3, 3)),
        st.one_of(st.none(), st.integers(-3, 3)),
    ),
)
@settings(max_examples=300)
def test_cnf_preserves_filtering(expr, row_values):
    factors = to_cnf_factors(expr, _FakeBlock())
    env = EvalEnv(row=Row(values={"T": row_values}), runtime=None)
    original = predicate_holds(expr, env)
    via_factors = all(predicate_holds(f.expr, env) for f in factors)
    assert original == via_factors


# ---------------------------------------------------------------------------
# selectivity bounds
# ---------------------------------------------------------------------------


@given(
    _predicate_exprs(_COLUMNS),
)
@settings(max_examples=200)
def test_selectivity_within_bounds(expr):
    from repro.catalog import Catalog, IndexStats, RelationStats

    catalog = Catalog()
    catalog.create_table("T", [("A", INTEGER), ("B", INTEGER), ("C", INTEGER)])
    catalog.create_index("T_A", "T", ["A"])
    catalog.set_relation_stats("T", RelationStats(1000, 10, 1.0))
    catalog.set_index_stats("T_A", IndexStats(icard=7, nindx=2, low_key=-3, high_key=3))
    estimator = SelectivityEstimator(catalog)
    value = estimator.expr_selectivity(expr)
    assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# whole-system: every plan computes the same answer
# ---------------------------------------------------------------------------


@given(st.integers(0, 10_000))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_all_plans_agree_on_random_workload(seed):
    from repro.baselines import ExhaustivePlanner
    from repro.sql import parse_statement
    from repro.workloads import build_database, random_chain_spec, random_select_query

    rng = random.Random(seed)
    tables = random_chain_spec(2, rng, min_rows=20, max_rows=80)
    db = build_database(tables, seed=seed)
    sql = random_select_query(tables, rng)
    reference = sorted(db.execute(sql).rows)
    planner = ExhaustivePlanner(db.optimizer(), db.catalog)
    block = Binder(db.catalog).bind(parse_statement(sql))
    for planned in planner.enumerate_statements(block, max_plans=40):
        assert sorted(db.executor().execute(planned).rows) == reference
