"""Bound (name-resolved) query structures.

The binder rewrites the parser's AST into trees whose column references are
:class:`BoundColumn` nodes carrying the table, alias, ordinal position, and
datatype, and whose subqueries are :class:`BoundSubquery` nodes holding a
nested :class:`BoundQueryBlock`.  Everything downstream — selectivity, cost,
planning, execution — works on bound trees only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.schema import TableDef
from ..datatypes import DataType
from ..sql import ast


@dataclass(frozen=True)
class BoundColumn(ast.Expr):
    """A resolved column reference.

    ``block_id`` identifies the query block whose FROM list introduced the
    alias; a reference with a block id different from the block it occurs in
    is a *correlation* reference (Section 6).
    """

    alias: str
    position: int
    column_name: str
    table_name: str
    datatype: DataType
    block_id: int

    def __str__(self) -> str:
        return f"{self.alias}.{self.column_name}"


@dataclass(frozen=True)
class BoundSubquery(ast.Expr):
    """A nested query block used as a predicate operand.

    ``scalar`` distinguishes ``expr op (SELECT ...)`` (single value) from
    ``expr IN (SELECT ...)`` (set of values).
    """

    block: "BoundQueryBlock"
    scalar: bool

    def __str__(self) -> str:
        kind = "scalar" if self.scalar else "set"
        return f"<{kind} subquery #{self.block.block_id}>"


@dataclass(frozen=True)
class AggregateRef(ast.Expr):
    """A reference to the value of aggregate ``index`` of the current block.

    Produced when select-list/HAVING expressions are rewritten after
    aggregation: ``AVG(SAL)`` becomes ``AggregateRef(0)`` once the aggregate
    node computes it.
    """

    index: int

    def __str__(self) -> str:
        return f"<agg {self.index}>"


@dataclass
class BlockTable:
    """One FROM-list entry of a bound block."""

    alias: str
    table: TableDef

    def __str__(self) -> str:
        if self.alias == self.table.name:
            return self.table.name
        return f"{self.table.name} {self.alias}"


@dataclass
class BoundQueryBlock:  # concurrency: statement-scoped
    """A name-resolved query block.

    ``correlated_columns`` lists the outer-block columns this block (or any
    block nested inside it) references; a non-empty list makes this a
    correlation subquery that must be re-evaluated per outer candidate tuple.
    """

    block_id: int
    tables: list[BlockTable]
    select_exprs: list[ast.Expr]
    output_names: list[str]
    where: ast.Expr | None
    group_by: list[BoundColumn]
    having: ast.Expr | None
    order_by: list[tuple[BoundColumn, bool]]  # (column, descending)
    distinct: bool
    aggregates: list[ast.FuncCall] = field(default_factory=list)
    correlated_columns: list[BoundColumn] = field(default_factory=list)
    subqueries: list[BoundSubquery] = field(default_factory=list)

    @property
    def is_correlated(self) -> bool:
        """Whether this block references any enclosing block's columns."""
        return bool(self.correlated_columns)

    @property
    def is_aggregate(self) -> bool:
        """Whether this block groups or computes aggregates."""
        return bool(self.aggregates) or bool(self.group_by)

    def alias_table(self, alias: str) -> TableDef:
        """The TableDef behind a FROM-list alias."""
        for entry in self.tables:
            if entry.alias == alias:
                return entry.table
        raise KeyError(alias)

    @property
    def aliases(self) -> list[str]:
        """The block's FROM-list aliases, in order."""
        return [entry.alias for entry in self.tables]

    def __str__(self) -> str:
        tables = ", ".join(str(entry) for entry in self.tables)
        return f"<block #{self.block_id} FROM {tables}>"
