"""Search-tree and plan rendering: regenerates Figures 2-6 style output.

The paper walks its EMP/DEPT/JOB example through the optimizer's search
tree: access paths for single relations (Fig. 2), the surviving solutions
after the single-relation pass (Fig. 3), the nested-loop and merge-join
extensions for pairs (Figs. 4-5), and the three-relation tree (Fig. 6).
These helpers render the same artifacts from a live :class:`JoinSearch`.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from .access_paths import enumerate_paths
from .bound import BoundQueryBlock
from .cost import CostModel
from .joins import JoinSearch
from .orders import InterestingOrders, OrderKey
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SegmentAccess,
    SortNode,
)
from .predicates import BooleanFactor
from .selectivity import SelectivityEstimator


def plan_summary(node: PlanNode) -> str:
    """A compact single-line rendering of a plan subtree."""
    if isinstance(node, ScanNode):
        if isinstance(node.access, SegmentAccess):
            return f"seg({node.alias})"
        return f"idx({node.alias}.{node.access.index.name})"
    if isinstance(node, NestedLoopJoinNode):
        return f"NL({plan_summary(node.outer)}, {plan_summary(node.inner)})"
    if isinstance(node, MergeJoinNode):
        return (
            f"MERGE({plan_summary(node.outer)}, {plan_summary(node.inner)} "
            f"on {node.outer_column}={node.inner_column})"
        )
    if isinstance(node, HashJoinNode):
        keys = ",".join(f"{o}={i}" for o, i in node.keys)
        grace = f" grace x{node.partitions}" if node.partitions > 1 else ""
        return (
            f"HASH({plan_summary(node.outer)}, build {plan_summary(node.inner)}"
            f"{grace} on {keys})"
        )
    if isinstance(node, SortNode):
        keys = ",".join(str(column) for column, __ in node.keys) or "?"
        return f"SORT({plan_summary(node.child)} by {keys})"
    if isinstance(node, FilterNode):
        return f"FILTER({plan_summary(node.child)})"
    if isinstance(node, (AggregateNode, ProjectNode, DistinctNode)):
        return f"{type(node).__name__}({plan_summary(node.child)})"
    children = ", ".join(plan_summary(child) for child in node.children())
    return f"{type(node).__name__}({children})"


def format_order(order_key: OrderKey) -> str:
    """Render an order key for the search-tree listings."""
    if not order_key:
        return "unordered"
    return "order<" + ",".join(str(class_id) for class_id in order_key) + ">"


def render_single_relation_paths(
    block: BoundQueryBlock,
    factors: list[BooleanFactor],
    catalog: Catalog,
    estimator: SelectivityEstimator,
    cost_model: CostModel,
    orders: InterestingOrders,
) -> str:
    """Figure 2: every access path per relation, with cost and ordering."""
    lines = ["Access paths for single relations (local predicates only):"]
    for entry in block.tables:
        alias = entry.alias
        local = [
            factor
            for factor in factors
            if factor.aliases == frozenset({alias})
        ]
        lines.append(f"  {alias} ({entry.table.name}):")
        candidates = enumerate_paths(
            alias, entry.table, local, catalog, estimator, cost_model, orders
        )
        best_total = min(
            cost_model.total(candidate.node.cost) for candidate in candidates
        )
        kept_orders: dict[OrderKey, float] = {}
        for candidate in candidates:
            total = cost_model.total(candidate.node.cost)
            key = candidate.order_key
            if key not in kept_orders or total < kept_orders[key]:
                kept_orders[key] = total
        for candidate in candidates:
            total = cost_model.total(candidate.node.cost)
            pruned = total > kept_orders[candidate.order_key] or (
                candidate.order_key == () and total > best_total
            )
            marker = "pruned" if pruned else "kept"
            lines.append(
                f"    {candidate.node.access.describe():<40s} "
                f"cost={total:8.2f} rows~{candidate.node.rows:8.1f} "
                f"{format_order(candidate.order_key):<14s} [{marker}]"
            )
    return "\n".join(lines)


def render_search_tree(search: JoinSearch, cost_model: CostModel) -> str:
    """Figures 3-6: the surviving DP solutions, by subset size."""
    lines = ["Join search tree (cheapest solution per relation set and order):"]
    # ``best`` is keyed by bitmask; translate to alias names for display.
    subsets = [(search.aliases_of(mask), mask) for mask in search.best]
    subsets.sort(key=lambda pair: (len(pair[0]), sorted(pair[0])))
    current_size = 0
    for aliases, mask in subsets:
        if len(aliases) != current_size:
            current_size = len(aliases)
            lines.append(f"-- {current_size} relation(s) --")
        name = "{" + ", ".join(sorted(aliases)) + "}"
        for order_key, entry in sorted(search.best[mask].items()):
            lines.append(
                f"  {name:<28s} {format_order(order_key):<14s} "
                f"cost={cost_model.total(entry.cost):10.2f} "
                f"rows~{entry.rows:10.1f}  {plan_summary(entry.plan)}"
            )
    return "\n".join(lines)


def solutions_table(
    search: JoinSearch, cost_model: CostModel, size: int
) -> list[dict]:
    """Structured dump of DP solutions of one subset size (for benchmarks)."""
    rows: list[dict] = []
    for mask, entries in search.best.items():
        aliases = search.aliases_of(mask)
        if len(aliases) != size:
            continue
        for order_key, entry in entries.items():
            rows.append(
                {
                    "relations": tuple(sorted(aliases)),
                    "order": order_key,
                    "cost": cost_model.total(entry.cost),
                    "rows": entry.rows,
                    "plan": plan_summary(entry.plan),
                }
            )
    rows.sort(key=lambda row: (row["relations"], row["order"]))
    return rows
