"""Fused pipeline execution ≡ compiled execution ≡ reference interpreter.

The fused engine (``engine/fuse.py``) collapses Scan→Filter→Project
chains into single per-batch drivers.  Fusion must be invisible: these
tests run the same queries through ``exec_mode="fused"``, ``"compiled"``,
and ``"interp"`` over physically identical databases and require
*exactly ordered* identical rows (fusion may never reorder, even without
an ORDER BY), identical cost counters, and identical subquery evaluation
cadence.  A hypothesis predicate sweep rides on top of the hand-picked
corpus, and the ORDER BY cases cover both the external sorter and the
merge join's interesting-order path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Database
from repro.engine.executor import resolve_exec_mode
from repro.sql import parse_statement
from repro.workloads import build_empdept

from tests.test_compiled_eval import (
    QUERY_CORPUS,
    _company,
    _predicates,
    _run,
)

MODES = ("fused", "compiled", "interp")


@pytest.fixture(scope="module")
def company_trio() -> dict[str, Database]:
    """Physically identical databases, one per execution mode."""
    return {mode: _company(mode) for mode in MODES}


@pytest.fixture(scope="module")
def empdept_trio() -> dict[str, Database]:
    return {
        mode: build_empdept(employees=300, departments=12, seed=3)
        for mode in MODES
    }


def _run_mode(db: Database, sql: str, mode: str):
    db.exec_mode = mode
    db.storage.cold_cache()
    return _run(db, sql)


@pytest.mark.parametrize("sql", QUERY_CORPUS)
def test_fused_agrees_exactly_on_corpus(company_trio, sql):
    """Row-for-row, in order — fusion preserves the engine's sequence."""
    rows = {}
    deltas = {}
    for mode, db in company_trio.items():
        rows[mode], deltas[mode] = _run(db, sql)
    assert rows["fused"] == rows["compiled"]
    assert rows["fused"] == rows["interp"]
    assert deltas["fused"] == deltas["compiled"] == deltas["interp"]


#: Declared output orders the fused pipeline must reproduce exactly:
#: index-provided order, external sort (300 rows spill the workspace),
#: the merge join's interesting order, and order above aggregation.
ORDERED_QUERIES = (
    "SELECT NAME, SAL FROM EMP WHERE DNO <= 6 ORDER BY SAL DESC",
    "SELECT NAME, SAL FROM EMP ORDER BY SAL, NAME",
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
    "ORDER BY EMP.DNO",
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO ORDER BY DNO",
    "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO HAVING COUNT(*) > 1 "
    "ORDER BY DNO DESC",
)


@pytest.mark.parametrize("sql", ORDERED_QUERIES)
def test_order_by_is_order_exact(empdept_trio, sql):
    rows = {}
    deltas = {}
    for mode, db in empdept_trio.items():
        rows[mode], deltas[mode] = _run_mode(db, sql, mode)
    assert rows["fused"] == rows["compiled"]
    assert rows["fused"] == rows["interp"]
    assert deltas["fused"] == deltas["compiled"] == deltas["interp"]


def test_correlated_evaluation_cadence_identical(company_trio):
    """Fused drivers reuse the compiled conjunction closures, so the
    per-referenced-tuple subquery re-evaluation pattern cannot change."""
    sql = (
        "SELECT E.NAME FROM EMPLOYEE E WHERE E.SALARY > "
        "(SELECT AVG(SALARY) FROM EMPLOYEE WHERE DNO = E.DNO)"
    )
    counts = {}
    for mode, db in company_trio.items():
        executor = db.executor()
        executor.execute(db.plan_query(parse_statement(sql)))
        counts[mode] = list(executor.last_runtime.evaluation_counts.values())
    assert counts["fused"] == counts["compiled"] == counts["interp"]


def test_fused_is_the_default_mode(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC", raising=False)
    assert resolve_exec_mode() == "fused"
    assert resolve_exec_mode("compiled") == "compiled"
    with pytest.raises(ValueError):
        resolve_exec_mode("vectorized")


def test_describe_chains_reports_fused_pipelines(empdept_trio):
    from repro.engine.fuse import describe_chains

    db = empdept_trio["fused"]
    planned = db.plan("SELECT NAME, SAL FROM EMP WHERE SAL > 400 AND JOB = 2")
    chains = describe_chains(planned.root)
    assert chains
    assert any("scan" in chain.lower() for chain in chains)


def test_dml_executes_under_fused_mode():
    """UPDATE/DELETE ride ``execute_rows`` → fused drivers with TIDs."""
    db = Database(exec_mode="fused")
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    for i in range(20):
        db.execute(f"INSERT INTO T VALUES ({i}, {i * 10})")
    db.execute("UPDATE STATISTICS")
    db.execute("UPDATE T SET B = -1 WHERE A >= 10")
    assert db.execute("SELECT COUNT(*) FROM T WHERE B = -1").scalar() == 10
    db.execute("DELETE FROM T WHERE A < 5")
    assert db.execute("SELECT COUNT(*) FROM T").scalar() == 15


# ---------------------------------------------------------------------------
# hypothesis sweep: fused vs compiled over NULL-laden data, order-exact
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_trio() -> dict[str, Database]:
    from repro.workloads.empdept import load_rows

    pair = {}
    for mode in ("fused", "compiled"):
        db = Database(exec_mode=mode)
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER, S VARCHAR(4))")
        rows = []
        for a in (None, -2, 0, 1, 3, 7):
            for b, s in ((None, "xy"), (2, None), (5, "yx"), (8, "xxxx")):
                rows.append((a, b, s))
        load_rows(db, "T", rows)
        db.execute("UPDATE STATISTICS")
        pair[mode] = db
    return pair


@settings(max_examples=60, deadline=None)
@given(predicate=_predicates())
def test_random_predicates_fused_order_exact(sweep_trio, predicate):
    sql = f"SELECT A, B, S FROM T WHERE {predicate}"
    rows = {}
    deltas = {}
    for mode, db in sweep_trio.items():
        rows[mode], deltas[mode] = _run(db, sql)
    assert rows["fused"] == rows["compiled"]
    assert deltas["fused"] == deltas["compiled"]
