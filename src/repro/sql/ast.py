"""Abstract syntax tree for the SQL subset.

Expression nodes are plain dataclasses.  A parsed query is a
:class:`SelectQuery` — the paper's *query block*: a SELECT list, a FROM
list, and a WHERE tree.  Subqueries embed further :class:`SelectQuery`
instances inside predicate nodes, which is how a single SQL statement comes
to contain multiple query blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datatypes import DataType
from ..rss.sargs import CompareOp

AGGREGATE_FUNCTIONS = frozenset({"AVG", "COUNT", "SUM", "MIN", "MAX"})


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (NULL included)."""
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``EMP.DNO`` or ``DNO``."""

    qualifier: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic: ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""
    operand: Expr

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """An aggregate call: ``COUNT(*)``, ``AVG(SAL)``, ``COUNT(DISTINCT X)``."""

    name: str
    argument: Expr | None  # None means COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


# --------------------------------------------------------------------------
# predicates
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison predicate."""
    op: CompareOp
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class Between(Expr):
    """``x BETWEEN low AND high`` (inclusive)."""
    operand: Expr
    low: Expr
    high: Expr

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Expr):
    """``x IN (literal, ...)``."""
    operand: Expr
    values: tuple[Literal, ...]

    def __str__(self) -> str:
        items = ", ".join(str(value) for value in self.values)
        return f"{self.operand} IN ({items})"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``x IN (SELECT ...)``."""
    operand: Expr
    subquery: "SelectQuery"

    def __str__(self) -> str:
        return f"{self.operand} IN (<subquery>)"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A query used where a single value is expected."""

    subquery: "SelectQuery"

    def __str__(self) -> str:
        return "(<subquery>)"


@dataclass(frozen=True)
class IsNull(Expr):
    """``x IS [NOT] NULL``."""
    operand: Expr
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class Like(Expr):
    """``x [NOT] LIKE pattern`` (% and _ wildcards)."""
    operand: Expr
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} {'NOT ' if self.negated else ''}LIKE '{self.pattern}'"


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""
    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        return " AND ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""
    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        return " OR ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""
    operand: Expr

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# --------------------------------------------------------------------------
# query blocks
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: table name plus the alias it is known by.

    ``EMPLOYEE X`` gives alias ``X``; a bare ``EMPLOYEE`` is its own alias.
    """

    table_name: str
    alias: str

    def __str__(self) -> str:
        if self.alias == self.table_name:
            return self.table_name
        return f"{self.table_name} {self.alias}"


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry with an optional alias."""
    expr: Expr
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry with its direction."""
    column: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SelectQuery:
    """One query block: SELECT list, FROM list, WHERE tree (Section 2)."""

    select_items: tuple[SelectItem, ...]  # empty means SELECT *
    from_tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        """True for ``SELECT *`` (expanded during binding)."""
        return not self.select_items

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        if self.is_star:
            parts.append("*")
        else:
            parts.append(", ".join(str(item) for item in self.select_items))
        parts.append("FROM " + ", ".join(str(table) for table in self.from_tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(col) for col in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(item) for item in self.order_by))
        return " ".join(parts)


# --------------------------------------------------------------------------
# DML / DDL statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class InsertStmt:
    """INSERT ... VALUES or INSERT ... SELECT."""
    table_name: str
    column_names: tuple[str, ...] | None  # None: values cover all columns
    rows: tuple[tuple[Expr, ...], ...] = ()
    #: INSERT INTO t SELECT ... (mutually exclusive with rows)
    source: "SelectQuery | None" = None


@dataclass(frozen=True)
class UpdateStmt:
    """UPDATE ... SET ... [WHERE ...]."""
    table_name: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class DeleteStmt:
    """DELETE FROM ... [WHERE ...]."""
    table_name: str
    where: Expr | None = None


@dataclass(frozen=True)
class ColumnSpec:
    """A column definition inside CREATE TABLE."""
    name: str
    datatype: DataType


@dataclass(frozen=True)
class CreateTableStmt:
    """CREATE TABLE, optionally into a shared segment."""
    table_name: str
    columns: tuple[ColumnSpec, ...]
    #: Optional shared segment (``IN SEGMENT name``): relations may share
    #: pages, making P(T) < 1 as in the RSS.
    segment_name: str | None = None


@dataclass(frozen=True)
class CreateIndexStmt:
    """CREATE [UNIQUE] INDEX ... [CLUSTER]."""
    index_name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool = False
    clustered: bool = False


@dataclass(frozen=True)
class DropTableStmt:
    """DROP TABLE."""
    table_name: str


@dataclass(frozen=True)
class DropIndexStmt:
    """DROP INDEX."""
    index_name: str


@dataclass(frozen=True)
class UpdateStatisticsStmt:
    """UPDATE STATISTICS [table]."""
    table_name: str | None = None  # None: all tables


Statement = (
    SelectQuery
    | InsertStmt
    | UpdateStmt
    | DeleteStmt
    | CreateTableStmt
    | CreateIndexStmt
    | DropTableStmt
    | DropIndexStmt
    | UpdateStatisticsStmt
)


def walk_expr(expr: Expr | None):
    """Yield every node of an expression tree, pre-order.

    Does not descend into subquery blocks; callers that need nested blocks
    handle :class:`InSubquery` / :class:`ScalarSubquery` explicitly.
    """
    if expr is None:
        return
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (And, Or)):
            stack.extend(node.operands)
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, Comparison):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, (InList, InSubquery, IsNull, Like)):
            stack.append(node.operand)
        elif isinstance(node, BinaryOp):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Negate):
            stack.append(node.operand)
        elif isinstance(node, FuncCall) and node.argument is not None:
            stack.append(node.argument)
