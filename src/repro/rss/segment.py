"""Segments: logical units of data pages.

A segment is an ordered collection of data pages.  Segments may contain one
or more relations, and tuples of different relations may share a page; every
record is tagged with its relation id (Section 3 of the paper).  ``P(T)`` —
the fraction of a segment's non-empty pages holding tuples of relation T —
is therefore a meaningful statistic, and segment scans must touch *all*
non-empty pages regardless of which relation they want.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import StorageError, TupleTooLargeError
from .buffer import BufferPool
from .faults import get_injector, register_point
from .page import PAGE_SIZE, Page, TupleId
from .pagestore import PageStore

# Largest record we can ever place: an empty page minus header and one slot.
MAX_RECORD_SIZE = PAGE_SIZE - 4 - 4

FP_SEGMENT_INSERT = register_point(
    "segment.insert", "entering a segment record insert"
)
FP_SEGMENT_DELETE = register_point(
    "segment.delete", "entering a segment record delete"
)
FP_SEGMENT_UPDATE = register_point(
    "segment.update", "entering a segment record update"
)


class Segment:
    """An ordered set of slotted data pages shared by one or more relations."""

    def __init__(self, name: str, store: PageStore, buffer: BufferPool):
        self.name = name
        self._store = store
        self._buffer = buffer
        # Mutated only by DML on the driving thread; parallel scans freeze
        # their view with ScanSnapshot (a tuple copy) before fanning out.
        self.page_ids: list[int] = []  # concurrency: driver-confined

    # -- modification ------------------------------------------------------

    def insert(self, record: bytes, append_only: bool = False) -> TupleId:
        """Append a record, allocating a new page when the last one is full.

        The append-to-last-page policy means a relation loaded in sorted key
        order ends up physically clustered on that key, which is how the
        reproduction realizes the paper's "clustered index" property.
        ``append_only`` skips the space-reuse pass over earlier pages so a
        reorganization load preserves strict physical order.
        """
        if len(record) > MAX_RECORD_SIZE:
            raise TupleTooLargeError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        get_injector().trip(FP_SEGMENT_INSERT)
        if self.page_ids:
            page = self._fetch(self.page_ids[-1])
            if page.can_fit(len(record)):
                page = self._store.prepare_write(page.page_id)
                slot = page.insert(record)
                return TupleId(page.page_id, slot)
        if not append_only:
            # Try to reuse space on earlier pages before growing the segment.
            for page_id in self.page_ids[:-1]:
                candidate = self._store.get(page_id)
                if isinstance(candidate, Page) and candidate.can_fit(len(record)):
                    self._fetch(page_id)
                    page = self._store.prepare_write(page_id)
                    slot = page.insert(record)
                    return TupleId(page_id, slot)
        page = self._store.allocate_data_page()
        self.page_ids.append(page.page_id)
        self._buffer.fetch(page.page_id)
        slot = page.insert(record)
        return TupleId(page.page_id, slot)

    def read(self, tid: TupleId) -> bytes:
        """The record bytes at a TID (through the buffer pool)."""
        return self._fetch(tid.page_id).read(tid.slot)

    def delete(self, tid: TupleId) -> None:
        """Free the slot at a TID."""
        get_injector().trip(FP_SEGMENT_DELETE)
        self._fetch(tid.page_id)
        page = self._store.prepare_write(tid.page_id)
        page.delete(tid.slot)

    def update(self, tid: TupleId, record: bytes) -> TupleId:
        """Overwrite in place when possible, else move (new TID)."""
        get_injector().trip(FP_SEGMENT_UPDATE)
        self._fetch(tid.page_id)
        page = self._store.prepare_write(tid.page_id)
        if page.update(tid.slot, record):
            return tid
        page.delete(tid.slot)
        return self.insert(record)

    # -- scanning ----------------------------------------------------------

    def scan_records(self) -> Iterator[tuple[TupleId, bytes]]:
        """Yield every record in the segment, page by page, through the buffer.

        This is the physical underpinning of a segment scan: all non-empty
        pages are touched once each, in page order.
        """
        for page_id in list(self.page_ids):
            page = self._fetch(page_id)
            for slot, record in page.records():
                yield TupleId(page_id, slot), record

    def release_empty_pages(self) -> int:
        """Free pages holding no records; returns how many were released.

        Used by table reorganization (clustering): after the old copies are
        deleted, releasing the emptied pages lets the sorted reload lay its
        tuples down on fresh, physically sequential pages.
        """
        released = 0
        kept: list[int] = []
        for page_id in self.page_ids:
            page = self._store.get(page_id)
            if isinstance(page, Page) and page.is_empty():
                self._buffer.invalidate(page_id)
                self._store.free(page_id)
                released += 1
            else:
                kept.append(page_id)
        self.page_ids = kept
        return released

    # -- statistics helpers --------------------------------------------------

    def non_empty_pages(self) -> int:
        """Number of pages currently holding at least one record.

        Used to compute ``P(T)``; reads pages directly (statistics
        collection is catalog work, not query work, so it is uncounted).
        """
        count = 0
        for page_id in self.page_ids:
            page = self._store.get(page_id)
            if isinstance(page, Page) and not page.is_empty():
                count += 1
        return count

    def page_count(self) -> int:
        """Number of pages currently allocated."""
        return len(self.page_ids)

    def _fetch(self, page_id: int) -> Page:
        page = self._buffer.fetch(page_id)
        if not isinstance(page, Page):
            raise StorageError(f"page {page_id} is not a data page")
        return page
