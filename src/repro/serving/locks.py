"""Synchronization primitives for the serving layer.

Two locks govern concurrent statements:

- :class:`CommitLock` — the single writer lock.  Writers never block on it
  directly; the group-commit coordinator polls it with bounded exponential
  backoff until a configurable timeout, so a stuck writer degrades into a
  typed :class:`~repro.errors.DatabaseBusyError` instead of a hang.
- :class:`RWLatch` — a writer-preference reader/writer latch separating
  schema-stable statements (reads and DML take it shared) from DDL and
  UPDATE STATISTICS (exclusive).  Snapshot pinning freezes *pages*; this
  latch is what keeps the *catalog* stable for the duration of a statement
  that plans against it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: Default time budget for acquiring the commit lock.
DEFAULT_COMMIT_TIMEOUT = 5.0
#: First backoff sleep after a failed acquire.
DEFAULT_INITIAL_BACKOFF = 0.0005
#: Backoff ceiling — doubling stops here (bounded exponential backoff).
DEFAULT_MAX_BACKOFF = 0.02


class CommitLock:
    """The single writer lock, polled with bounded exponential backoff.

    ``try_acquire`` never blocks; callers interleave failed attempts with
    :meth:`delays` sleeps.  Keeping the waiting strategy outside the lock
    lets the coordinator wait on *either* the lock or its ticket's
    completion, whichever comes first.
    """

    def __init__(
        self,
        timeout: float = DEFAULT_COMMIT_TIMEOUT,
        initial_backoff: float = DEFAULT_INITIAL_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
    ):
        if timeout <= 0:
            raise ValueError(f"commit timeout must be positive, got {timeout!r}")
        self._lock = threading.Lock()
        self.timeout = timeout
        self.initial_backoff = initial_backoff
        self.max_backoff = max_backoff

    def try_acquire(self) -> bool:
        """Take the lock if free; never blocks."""
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    def delays(self):
        """The bounded exponential backoff schedule: an endless iterator of
        sleep durations, doubling from ``initial_backoff`` up to
        ``max_backoff``.  The caller owns the deadline."""
        delay = self.initial_backoff
        while True:
            yield delay
            delay = min(delay * 2.0, self.max_backoff)


class RWLatch:
    """A writer-preference reader/writer latch.

    Readers (shared) may overlap each other; a writer (exclusive) waits
    for them to drain and blocks new readers while it waits, so DDL is
    never starved by a steady read stream.  Statements acquire the latch
    for their whole duration and never re-enter it, which is what makes
    the simple non-reentrant protocol deadlock-free.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # concurrency: lock-guarded
        self._writer_active = False  # concurrency: lock-guarded
        self._writers_waiting = 0  # concurrency: lock-guarded

    @contextmanager
    def shared(self):
        """Hold the latch in shared mode (reads, DML)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        """Hold the latch in exclusive mode (DDL, UPDATE STATISTICS)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
