"""E4 — Figure 2: access paths for single relations of the example query.

Reproduces the figure's content: for EMP, DEPT, and JOB with only local
predicates applied, every available access path with its cost, produced
ordering, and whether pruning keeps it.
"""

from conftest import measure_cold
from repro.optimizer.binder import Binder
from repro.optimizer.explain import render_single_relation_paths
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


def test_fig2_single_relation_paths(empdept, report, benchmark):
    optimizer = empdept.optimizer()

    def analyze():
        block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        search, orders, factors = optimizer.run_join_search(block)
        return block, search, orders, factors

    block, search, orders, factors = benchmark(analyze)

    report.line("E4 / Figure 2 — access paths for single relations")
    report.line("(eligible predicates: local predicates only)")
    report.line()
    report.line(
        render_single_relation_paths(
            block,
            factors,
            empdept.catalog,
            optimizer.estimator,
            optimizer.cost_model,
            orders,
        )
    )
    # The paper's interesting orders for this query are DNO and JOB.
    interesting = {
        orders.class_of(("EMP", 2)),  # DNO
        orders.class_of(("EMP", 3)),  # JOB
    }
    assert len(interesting) == 2
    # Single-relation pass stored entries for all three relations.
    for alias in ("EMP", "DEPT", "JOB"):
        assert search.solutions_for({alias})
