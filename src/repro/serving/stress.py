"""A deterministic concurrent stress harness with exact isolation checks.

``repro stress`` drives N client threads of mixed read/write workload
against one durable database and then *proves* snapshot isolation held,
rather than eyeballing it:

- every writer records the ``commit_version`` of each statement it
  landed, and the tags of each statement that rolled back;
- every reader records its pinned ``snapshot_version`` alongside what it
  saw;
- after the run, each read is checked **exactly**: the tags a reader
  observed for writer *w* must equal precisely the tags *w* committed at
  versions ``<= V`` — no partial transaction (each tag appears in all
  three of its rows or none), nothing from the future, nothing missing,
  nothing rolled back.

The workload mixes point reads (via an index), multi-row inserts (one
atomic statement each), whole-group updates (readers check group
uniformity), delete/insert churn (page free paths), and the occasional
UPDATE STATISTICS (the exclusive schema latch).  A fault plan can be
armed over the run; a simulated crash stops the workload, and the
harness re-opens the crash snapshot through recovery to prove the
storage verifies clean and every group-commit batch landed all-or-
nothing.  Client schedules are seeded per client, so the statement
sequences are reproducible; the invariant checks do not depend on the
thread interleaving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from random import Random
from time import monotonic

from ..errors import (
    DatabaseBusyError,
    SimulatedCrash,
    StorageError,
)
from ..rss.disk import DiskManager
from ..rss.faults import FaultPlan, get_injector

#: ACC has this many groups of this many rows; an update rewrites a whole
#: group, so any reader seeing a mixed group caught a partial statement.
N_GROUPS = 8
ROWS_PER_GROUP = 4
#: Every LOG insert writes this many rows sharing one tag — the unit of
#: the all-or-nothing check.
ROWS_PER_INSERT = 3

#: The fault points introduced by the serving layer's commit path.
SERVING_FAULT_POINTS = (
    "commit.lock",
    "group-commit.before-flip",
    "group-commit.after-fsync",
)


@dataclass
# one log per client thread, read only after every client has been joined
# concurrency: driver-confined
class ClientLog:
    """What one client did and saw; merged after the threads join."""

    client: int
    #: (tag, commit_version) per committed LOG insert.
    committed: list[tuple[int, int]] = field(default_factory=list)
    #: Tags of LOG inserts that failed cleanly (rolled back / never ran).
    rolled_back: list[int] = field(default_factory=list)
    #: Tags of LOG inserts whose fate is the crash (all-or-nothing).
    crashed_tags: list[int] = field(default_factory=list)
    #: (group, value, commit_version) per committed ACC update.
    acc_updates: list[tuple[int, int, int]] = field(default_factory=list)
    #: (snapshot_version, writer, tags seen) per LOG read.
    log_reads: list[tuple[int, int, tuple[int, ...]]] = field(
        default_factory=list
    )
    #: (snapshot_version, group, values seen) per ACC read.
    acc_reads: list[tuple[int, int, tuple[int, ...]]] = field(
        default_factory=list
    )
    statements: int = 0
    outcomes: int = 0
    busy: int = 0
    crash: SimulatedCrash | None = None
    #: An outcome the harness did not anticipate (always a violation).
    unexpected: BaseException | None = None


@dataclass
class StressViolation:
    """One broken invariant."""

    kind: str
    detail: str


@dataclass
# built by the harness after every client has been joined; the client-loop
# mutation sites are name-based attribution to ClientLog's field names
# concurrency: driver-confined
class StressReport:
    """The verdict of one stress run."""

    clients: int
    statements: int
    outcomes: int
    committed: int
    rolled_back: int
    busy_timeouts: int
    reads_checked: int
    crash_point: str | None
    elapsed: float
    violations: list[StressViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        crash = f", crash at {self.crash_point!r}" if self.crash_point else ""
        rate = self.outcomes / self.elapsed if self.elapsed > 0 else 0.0
        return (
            f"stress: {verdict} — {self.clients} clients, "
            f"{self.outcomes}/{self.statements} outcomes "
            f"({self.committed} committed, {self.rolled_back} rolled back, "
            f"{self.busy_timeouts} busy), {self.reads_checked} reads "
            f"checked{crash}, {rate:.0f} stmt/s"
        )


def run_stress(
    path: str,
    clients: int = 100,
    statements: int = 40,
    seed: int = 0,
    fault: FaultPlan | None = None,
    group_commit: bool = True,
    commit_timeout: float = 30.0,
    join_timeout: float = 300.0,
) -> StressReport:
    """Run the concurrent workload against a durable database at ``path``.

    Returns a :class:`StressReport`; ``report.ok`` is the verdict.  When
    ``fault`` is given it is armed after the schema is seeded, so the
    failure lands inside the concurrent phase.
    """
    from ..analysis.storage_check import logical_dump, verify_storage
    from ..database import Database

    db = Database(
        path=path, commit_timeout=commit_timeout, group_commit=group_commit
    )
    _seed_schema(db)
    logs = [ClientLog(client) for client in range(clients)]
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_client,
            args=(
                db,
                log,
                statements,
                Random(seed * 100_003 + log.client),
                stop,
                clients,
            ),
            daemon=True,
        )
        for log in logs
    ]
    injector = get_injector()
    if fault is not None:
        injector.arm(fault)
    started = monotonic()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=join_timeout)
        elapsed = monotonic() - started
        violations: list[StressViolation] = []
        hung = sum(1 for thread in threads if thread.is_alive())
        if hung:
            stop.set()
            violations.append(
                StressViolation(
                    "hang",
                    f"{hung} client(s) still running after {join_timeout}s; "
                    "a statement lost its outcome",
                )
            )
        crash = next((log.crash for log in logs if log.crash is not None), None)
        for log in logs:
            if log.unexpected is not None:
                violations.append(
                    StressViolation(
                        "unexpected-error",
                        f"client {log.client}: "
                        f"{type(log.unexpected).__name__}: {log.unexpected}",
                    )
                )
        violations.extend(_check_reads(logs))
        if crash is None and not hung:
            violations.extend(
                _check_final_state(db, logs, verify_storage, logical_dump)
            )
        if crash is not None:
            violations.extend(
                _check_crash_recovery(
                    path, crash, logs, verify_storage, logical_dump, Database
                )
            )
    finally:
        injector.disarm()
        db.close()
    return StressReport(
        clients=clients,
        statements=sum(log.statements for log in logs),
        outcomes=sum(log.outcomes for log in logs),
        committed=sum(len(log.committed) for log in logs)
        + sum(len(log.acc_updates) for log in logs),
        rolled_back=sum(len(log.rolled_back) for log in logs),
        busy_timeouts=sum(log.busy for log in logs),
        reads_checked=sum(
            len(log.log_reads) + len(log.acc_reads) for log in logs
        ),
        crash_point=crash.point if crash is not None else None,
        elapsed=elapsed,
        violations=violations,
    )


def run_fault_smoke(
    make_path,
    clients: int = 8,
    statements: int = 25,
    seed: int = 0,
    hit: int = 5,
) -> list[tuple[str, StressReport]]:
    """Loop the serving-layer fault points through error and crash legs.

    ``make_path`` is called with a leg label and must return a fresh
    database path for that leg.  Every leg must come back ``ok``: an
    injected error is survived and a crash recovers all-or-nothing.
    """
    results: list[tuple[str, StressReport]] = []
    for point in SERVING_FAULT_POINTS:
        for action in ("error", "crash"):
            label = f"{point}@{hit}:{action}"
            report = run_stress(
                make_path(label),
                clients=clients,
                statements=statements,
                seed=seed,
                fault=FaultPlan(point, hit=hit, action=action),
            )
            results.append((label, report))
    return results


# -- the workload ------------------------------------------------------------


def _seed_schema(db) -> None:
    db.execute(
        "CREATE TABLE LOG (WRITER INTEGER, SEQ INTEGER, K INTEGER, "
        "TAG INTEGER)"
    )
    db.execute("CREATE INDEX LOGWRITER ON LOG (WRITER)")
    db.execute("CREATE TABLE ACC (GRP INTEGER, ROWNO INTEGER, VAL INTEGER)")
    for group in range(N_GROUPS):
        values = ", ".join(
            f"({group}, {rowno}, 0)" for rowno in range(ROWS_PER_GROUP)
        )
        db.execute(f"INSERT INTO ACC VALUES {values}")
    db.execute("CREATE TABLE CHURN (WRITER INTEGER, N INTEGER)")
    db.execute("UPDATE STATISTICS")


def _client(
    db, log: ClientLog, statements: int, rng: Random, stop, clients: int
) -> None:
    session = db.session(f"client-{log.client}")
    sequence = 0
    try:
        for iteration in range(statements):
            if stop.is_set():
                return
            roll = rng.random()
            try:
                if roll < 0.45:
                    _read_log(session, log, rng, clients)
                elif roll < 0.65:
                    _read_acc(session, log, rng)
                elif roll < 0.90:
                    sequence = _insert_log(session, log, sequence)
                elif roll < 0.97:
                    _update_acc(session, log, rng, iteration)
                elif roll < 0.99:
                    _churn(session, log)
                else:
                    log.statements += 1
                    session.execute("UPDATE STATISTICS ACC")
                    log.outcomes += 1
            except SimulatedCrash as crash:
                log.crash = crash
                log.outcomes += 1
                stop.set()
                return
            except DatabaseBusyError:
                log.busy += 1
                log.outcomes += 1
            except StorageError:
                # A clean per-statement failure (injected fault, aborted
                # batch, poisoned post-crash engine): the outcome is
                # known, nothing of the statement may survive.
                log.outcomes += 1
    except BaseException as error:  # anything else fails the run
        log.unexpected = error
        stop.set()
    finally:
        session.close()


def _read_log(session, log: ClientLog, rng: Random, clients: int) -> None:
    writer = rng.randrange(clients)
    log.statements += 1
    result = session.execute(f"SELECT TAG FROM LOG WHERE WRITER = {writer}")
    log.log_reads.append(
        (result.snapshot_version, writer, tuple(row[0] for row in result.rows))
    )
    log.outcomes += 1


def _read_acc(session, log: ClientLog, rng: Random) -> None:
    group = rng.randrange(N_GROUPS)
    log.statements += 1
    result = session.execute(f"SELECT VAL FROM ACC WHERE GRP = {group}")
    log.acc_reads.append(
        (result.snapshot_version, group, tuple(row[0] for row in result.rows))
    )
    log.outcomes += 1


def _insert_log(session, log: ClientLog, sequence: int) -> int:
    tag = log.client * 1_000_000 + sequence
    values = ", ".join(
        f"({log.client}, {sequence}, {k}, {tag})"
        for k in range(ROWS_PER_INSERT)
    )
    log.statements += 1
    try:
        result = session.execute(f"INSERT INTO LOG VALUES {values}")
    except SimulatedCrash:
        log.crashed_tags.append(tag)
        raise
    except (DatabaseBusyError, StorageError):
        log.rolled_back.append(tag)
        raise
    log.committed.append((tag, result.commit_version))
    log.outcomes += 1
    return sequence + 1


def _update_acc(session, log: ClientLog, rng: Random, iteration: int) -> None:
    group = rng.randrange(N_GROUPS)
    value = log.client * 1_000 + iteration + 1
    log.statements += 1
    result = session.execute(
        f"UPDATE ACC SET VAL = {value} WHERE GRP = {group}"
    )
    log.acc_updates.append((group, value, result.commit_version))
    log.outcomes += 1


def _churn(session, log: ClientLog) -> None:
    log.statements += 1
    session.execute(f"DELETE FROM CHURN WHERE WRITER = {log.client}")
    log.outcomes += 1
    log.statements += 1
    session.execute(
        f"INSERT INTO CHURN VALUES ({log.client}, 0), ({log.client}, 1)"
    )
    log.outcomes += 1


# -- the invariant checks ----------------------------------------------------


def _check_reads(logs: list[ClientLog]) -> list[StressViolation]:
    """Exact snapshot-isolation checks over every recorded read."""
    violations: list[StressViolation] = []
    committed_by_writer: dict[int, list[tuple[int, int]]] = {}
    for log in logs:
        committed_by_writer[log.client] = list(log.committed)
    acc_history = sorted(
        (version, group, value)
        for log in logs
        for (group, value, version) in log.acc_updates
    )
    for log in logs:
        for version, writer, tags in log.log_reads:
            expected = {
                tag
                for tag, commit_version in committed_by_writer.get(writer, [])
                if commit_version <= version
            }
            counts: dict[int, int] = {}
            for tag in tags:
                counts[tag] = counts.get(tag, 0) + 1
            partial = {
                tag for tag, n in counts.items() if n != ROWS_PER_INSERT
            }
            if partial:
                violations.append(
                    StressViolation(
                        "partial-transaction",
                        f"client {log.client} at version {version} saw "
                        f"tag(s) {sorted(partial)} with a row count other "
                        f"than {ROWS_PER_INSERT}",
                    )
                )
            if set(counts) != expected:
                extra = sorted(set(counts) - expected)[:4]
                missing = sorted(expected - set(counts))[:4]
                violations.append(
                    StressViolation(
                        "snapshot-mismatch",
                        f"client {log.client} read writer {writer} at "
                        f"version {version}: unexpected tags {extra}, "
                        f"missing tags {missing}",
                    )
                )
        for version, group, values in log.acc_reads:
            if len(values) != ROWS_PER_GROUP or len(set(values)) > 1:
                violations.append(
                    StressViolation(
                        "partial-update",
                        f"client {log.client} at version {version} saw "
                        f"group {group} rows {values!r} (expected "
                        f"{ROWS_PER_GROUP} identical values)",
                    )
                )
                continue
            allowed = _acc_candidates(acc_history, group, version)
            if values[0] not in allowed:
                violations.append(
                    StressViolation(
                        "snapshot-mismatch",
                        f"client {log.client} at version {version} saw "
                        f"group {group} value {values[0]} not among the "
                        f"committed candidates {sorted(allowed)}",
                    )
                )
    return violations


def _acc_candidates(
    acc_history: list[tuple[int, int, int]], group: int, version: int
) -> set[int]:
    """Values a reader pinned at ``version`` may legally see for a group.

    The latest committed update wins; updates batched into the same
    commit version are equally legal (their batch order is not
    observable post-hoc).
    """
    best_version = None
    candidates = {0}
    for commit_version, update_group, value in acc_history:
        if update_group != group or commit_version > version:
            continue
        if best_version is None or commit_version > best_version:
            best_version, candidates = commit_version, {value}
        elif commit_version == best_version:
            candidates.add(value)
    return candidates


def _log_tag_counts(dump: dict[str, list[tuple]]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for row in dump.get("LOG", []):
        tag = row[3]
        counts[tag] = counts.get(tag, 0) + 1
    return counts


def _check_final_state(
    db, logs: list[ClientLog], verify_storage, logical_dump
) -> list[StressViolation]:
    """The surviving database holds exactly the committed statements."""
    violations = [
        StressViolation("storage", str(problem))
        for problem in verify_storage(db)
    ]
    counts = _log_tag_counts(logical_dump(db))
    committed = {tag for log in logs for tag, __ in log.committed}
    rolled_back = {tag for log in logs for tag in log.rolled_back}
    missing = sorted(tag for tag in committed if counts.get(tag) != ROWS_PER_INSERT)
    if missing:
        violations.append(
            StressViolation(
                "lost-commit",
                f"committed tag(s) {missing[:6]} not present in "
                f"{ROWS_PER_INSERT} rows each",
            )
        )
    leaked = sorted(set(counts) - committed)
    if leaked:
        from_rollbacks = len(set(leaked) & rolled_back)
        violations.append(
            StressViolation(
                "leaked-rollback",
                f"tag(s) {leaked[:6]} survived without a commit "
                f"({from_rollbacks} of them from rolled-back statements)",
            )
        )
    return violations


def _check_crash_recovery(
    path: str,
    crash: SimulatedCrash,
    logs: list[ClientLog],
    verify_storage,
    logical_dump,
    database_cls,
) -> list[StressViolation]:
    """Re-open the crash snapshot: clean storage, all-or-nothing batches."""
    violations: list[StressViolation] = []
    if crash.snapshot is None:
        return [
            StressViolation(
                "crash-snapshot",
                f"simulated crash at {crash.point!r} carried no disk "
                "snapshot",
            )
        ]
    restored = DiskManager.restore(crash.snapshot, path + ".recovered")
    survivor = database_cls(path=str(restored))
    try:
        violations.extend(
            StressViolation("storage", str(problem))
            for problem in verify_storage(survivor)
        )
        counts = _log_tag_counts(logical_dump(survivor))
    finally:
        survivor.close()
    committed = {tag for log in logs for tag, __ in log.committed}
    crashed = {tag for log in logs for tag in log.crashed_tags}
    if crash.point == "commit.lock":
        # The crash fired in a submitter thread before it reached the
        # engine, so surviving clients keep committing past the snapshot
        # instant; acknowledgments newer than the snapshot are allowed to
        # be absent.  The snapshot must still be a consistent point in
        # time: the durable acknowledged commits must form a gap-free
        # prefix of the commit-version order.
        lost = [
            version
            for log in logs
            for tag, version in log.committed
            if counts.get(tag) != ROWS_PER_INSERT
        ]
        kept = [
            version
            for log in logs
            for tag, version in log.committed
            if counts.get(tag) == ROWS_PER_INSERT
        ]
        if lost and kept and min(lost) < max(kept):
            violations.append(
                StressViolation(
                    "lost-commit",
                    f"crash snapshot is not a point in time: commit "
                    f"version {min(lost)} is missing while later version "
                    f"{max(kept)} survived",
                )
            )
        torn = sorted(
            tag
            for log in logs
            for tag, __ in log.committed
            if counts.get(tag, 0) not in (0, ROWS_PER_INSERT)
        )
        if torn:
            violations.append(
                StressViolation(
                    "partial-transaction",
                    f"acknowledged tag(s) {torn[:6]} recovered with a "
                    "partial row count",
                )
            )
    else:
        # Engine-internal crash points trip while holding the commit
        # lock (no commit can be in flight) and poison the engine before
        # releasing it, so every acknowledgment predates the snapshot
        # and must be durable.
        missing = sorted(
            tag for tag in committed if counts.get(tag) != ROWS_PER_INSERT
        )
        if missing:
            violations.append(
                StressViolation(
                    "lost-commit",
                    f"acknowledged tag(s) {missing[:6]} missing after crash "
                    "recovery — a reported commit must be durable",
                )
            )
    partial = sorted(
        tag
        for tag in crashed
        if counts.get(tag, 0) not in (0, ROWS_PER_INSERT)
    )
    if partial:
        violations.append(
            StressViolation(
                "partial-transaction",
                f"crashed tag(s) {partial[:6]} recovered with a partial "
                "row count",
            )
        )
    survived = {tag for tag in crashed if counts.get(tag, 0) == ROWS_PER_INSERT}
    if survived and survived != crashed:
        violations.append(
            StressViolation(
                "torn-batch",
                f"crashed batch recovered split: {sorted(survived)[:6]} "
                f"present, {sorted(crashed - survived)[:6]} absent — a "
                "group-commit batch must land all-or-nothing",
            )
        )
    leaked = sorted(set(counts) - committed - crashed)
    if leaked:
        violations.append(
            StressViolation(
                "leaked-rollback",
                f"tag(s) {leaked[:6]} present after recovery without a "
                "commit",
            )
        )
    return violations


# -- CLI ---------------------------------------------------------------------


def main(argv: list[str]) -> int:
    """Entry point for ``repro stress``."""
    import argparse
    import os
    import tempfile

    parser = argparse.ArgumentParser(
        prog="repro stress",
        description=(
            "Drive concurrent client sessions against one durable database "
            "and verify snapshot-isolation invariants exactly."
        ),
    )
    parser.add_argument(
        "--db", default=None, help="database path (default: a fresh temp dir)"
    )
    parser.add_argument(
        "--clients", type=int, default=100, help="concurrent client threads"
    )
    parser.add_argument(
        "--statements", type=int, default=40, help="statements per client"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--fault",
        default=None,
        metavar="POINT@HIT:ACTION",
        help="arm one fault plan over the run (e.g. "
        "'group-commit.before-flip@5:crash')",
    )
    parser.add_argument(
        "--fault-smoke",
        action="store_true",
        help="loop the serving-layer fault points through error and crash "
        "legs at reduced scale",
    )
    parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="serialize commits one statement at a time (no batching)",
    )
    parser.add_argument(
        "--commit-timeout",
        type=float,
        default=30.0,
        help="seconds a write waits for the commit lock before "
        "DatabaseBusyError",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-stress-") as scratch:
        if args.fault_smoke:
            def make_path(label: str) -> str:
                leg_dir = os.path.join(scratch, label.replace(":", "_"))
                os.makedirs(leg_dir, exist_ok=True)
                return os.path.join(leg_dir, "stress.pages")

            failures = 0
            for label, report in run_fault_smoke(make_path, seed=args.seed):
                print(f"[{label}] {report.summary()}")
                for violation in report.violations:
                    print(f"    {violation.kind}: {violation.detail}")
                failures += 0 if report.ok else 1
            print(
                "fault smoke: "
                + ("all legs OK" if failures == 0 else f"{failures} leg(s) FAILED")
            )
            return 0 if failures == 0 else 1

        path = args.db or os.path.join(scratch, "stress.pages")
        fault = FaultPlan.parse(args.fault) if args.fault else None
        report = run_stress(
            path,
            clients=args.clients,
            statements=args.statements,
            seed=args.seed,
            fault=fault,
            group_commit=not args.no_group_commit,
            commit_timeout=args.commit_timeout,
        )
        print(report.summary())
        for violation in report.violations:
            print(f"  {violation.kind}: {violation.detail}")
        return 0 if report.ok else 1
