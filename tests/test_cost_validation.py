"""Integration tests: TABLE 2 predictions vs measured cost events.

These are the in-suite version of experiment E2: for each access-path
situation the optimizer's predicted page fetches and RSI calls must agree
with the counters the storage system actually records when the plan runs
cold (empty buffer pool).
"""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture(scope="module")
def measured_db():
    db = Database(buffer_pages=64)
    db.execute(
        "CREATE TABLE M (ID INTEGER, GRP INTEGER, RND INTEGER, PAD VARCHAR(60))"
    )
    rows = []
    for i in range(2000):
        rows.append((i, i % 40, (i * 7919) % 40, "x" * 50))
    load_rows(db, "M", rows)
    db.execute("CREATE UNIQUE INDEX M_ID ON M (ID)")
    db.execute("CREATE INDEX M_GRP ON M (GRP) CLUSTER")
    db.execute("CREATE INDEX M_RND ON M (RND)")
    db.execute("UPDATE STATISTICS")
    return db


def run_cold(db, sql):
    planned = db.plan(sql)
    db.cold_cache()
    result = db.executor().execute(planned)
    return planned, db.counters.snapshot(), result


class TestSegmentScan:
    def test_pages_match_exactly(self, measured_db):
        planned, measured, __ = run_cold(measured_db, "SELECT * FROM M")
        assert measured.page_fetches == pytest.approx(
            planned.estimated_cost.pages, abs=1
        )

    def test_rsi_calls_match_exactly(self, measured_db):
        planned, measured, result = run_cold(measured_db, "SELECT * FROM M")
        assert measured.rsi_calls == 2000
        assert planned.estimated_cost.rsi == pytest.approx(2000)


class TestUniqueIndex:
    def test_point_lookup(self, measured_db):
        planned, measured, result = run_cold(
            measured_db, "SELECT GRP FROM M WHERE ID = 777"
        )
        assert len(result.rows) == 1
        assert planned.estimated_cost.pages == pytest.approx(2.0)
        # Descent through the B-tree may touch one page per level; the
        # prediction's "1 index page" abstracts a short root-to-leaf path.
        assert measured.page_fetches <= 4
        assert measured.rsi_calls == 1
        assert planned.estimated_cost.rsi == 1.0


class TestClusteredIndex:
    def test_selective_range(self, measured_db):
        planned, measured, result = run_cold(
            measured_db, "SELECT ID FROM M WHERE GRP = 7"
        )
        assert len(result.rows) == 50
        assert measured.rsi_calls == 50
        assert planned.estimated_cost.rsi == pytest.approx(50)
        # Clustered: F * (NINDX + TCARD) pages; measured within 2x.
        assert measured.page_fetches <= planned.estimated_cost.pages * 2 + 3


@pytest.fixture(scope="module")
def tight_buffer_db():
    """Same data, but a buffer too small to hold the relation.

    This defeats Table 2's "fits in the System R buffer" escape hatch, so
    the clustered/non-clustered distinction shows up in both predictions
    and measurements.
    """
    db = Database(buffer_pages=2)
    db.execute(
        "CREATE TABLE M (ID INTEGER, GRP INTEGER, RND INTEGER, PAD VARCHAR(60))"
    )
    rows = []
    for i in range(2000):
        # RND varies *within* each GRP block, so after clustering on GRP
        # the matches for one RND value are scattered across the segment.
        rows.append((i, i % 40, (i // 40) % 40, "x" * 50))
    load_rows(db, "M", rows)
    db.execute("CREATE UNIQUE INDEX M_ID ON M (ID)")
    db.execute("CREATE INDEX M_GRP ON M (GRP) CLUSTER")
    db.execute("CREATE INDEX M_RND ON M (RND)")
    db.execute("UPDATE STATISTICS")
    return db


class TestNonClusteredIndex:
    def test_buffer_fit_branch_applies_with_big_buffer(self, measured_db):
        # With a 64-page buffer the whole relation fits: prediction uses
        # F * (NINDX + TCARD) for the non-clustered index too, and the
        # measurement agrees (re-fetches are buffer hits).
        clustered_planned, __, ___ = run_cold(
            measured_db, "SELECT ID FROM M WHERE GRP = 7"
        )
        plain_planned, ____, _____ = run_cold(
            measured_db, "SELECT ID FROM M WHERE RND = 7"
        )
        assert plain_planned.estimated_cost.pages == pytest.approx(
            clustered_planned.estimated_cost.pages
        )

    def test_scattered_matches_cost_more_pages(self, tight_buffer_db):
        clustered_planned, clustered_measured, __ = run_cold(
            tight_buffer_db, "SELECT ID FROM M WHERE GRP = 7"
        )
        plain_planned, plain_measured, __ = run_cold(
            tight_buffer_db, "SELECT ID FROM M WHERE RND = 7"
        )
        # Same result cardinality, but the non-clustered index touches many
        # more data pages — prediction and measurement must agree on the
        # direction.
        assert plain_planned.estimated_cost.pages > clustered_planned.estimated_cost.pages
        assert plain_measured.page_fetches > clustered_measured.page_fetches


class TestWeightedCostOrdering:
    def test_predicted_order_matches_measured_order(self, tight_buffer_db):
        """The §7 claim in miniature: cost *ordering* is preserved."""
        queries = [
            "SELECT * FROM M WHERE ID = 5",
            "SELECT * FROM M WHERE GRP = 5",
            "SELECT * FROM M WHERE RND = 5",
            "SELECT * FROM M",
        ]
        predicted, measured = [], []
        for sql in queries:
            planned, counters, __ = run_cold(tight_buffer_db, sql)
            w = planned.w
            predicted.append(planned.estimated_total())
            measured.append(counters.page_fetches + w * counters.rsi_calls)
        predicted_rank = sorted(range(4), key=lambda i: predicted[i])
        measured_rank = sorted(range(4), key=lambda i: measured[i])
        assert predicted_rank == measured_rank


class TestSortCost:
    def test_sort_pages_are_counted(self, measured_db):
        planned, measured, result = run_cold(
            measured_db, "SELECT RND FROM M ORDER BY RND"
        )
        assert len(result.rows) == 2000
        # Sorting materializes a temp list: strictly more page activity
        # than the plain scan.
        __, plain, ____ = run_cold(measured_db, "SELECT RND FROM M")
        assert measured.page_fetches > plain.page_fetches
        # And the prediction reflects it too.
        plain_planned = measured_db.plan("SELECT RND FROM M")
        assert planned.estimated_cost.pages > plain_planned.estimated_cost.pages

    def test_sorted_output_is_sorted(self, measured_db):
        __, ___, result = run_cold(measured_db, "SELECT RND FROM M ORDER BY RND")
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
