"""B-tree indexes over (key, tuple-identifier) entries.

Indexes are B+-trees: all entries live in leaf pages, which are chained so a
range scan reads leaves sequentially without revisiting upper levels
(Section 3).  Keys are tuples of column values (composite indexes).  NULL
sorts before every non-NULL value.

Node fan-out is derived from the 4 KiB page size and the worst-case encoded
key width, so ``NINDX`` (pages in the index) and per-scan index page fetches
behave like their System R counterparts.  Node pages occupy the same page-id
space as data pages and are fetched through the same buffer pool.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..datatypes import DataType
from ..errors import StorageError
from .buffer import BufferPool
from .faults import get_injector, register_point
from .page import PAGE_SIZE, TupleId
from .pagestore import PageStore

_NODE_OVERHEAD = 32  # header bytes reserved per node page
_TID_SIZE = 8
_CHILD_PTR_SIZE = 4
_MIN_FANOUT = 4

FP_BTREE_INSERT = register_point(
    "btree.insert", "entering a B-tree entry insert"
)
FP_BTREE_DELETE = register_point(
    "btree.delete", "entering a B-tree entry delete"
)
FP_BTREE_SPLIT = register_point("btree.split", "splitting a B-tree node")


def orderable_key(key: tuple) -> tuple:
    """Map a key to a totally ordered form (NULL sorts first)."""
    return tuple((0, 0) if part is None else (1, part) for part in key)


class _LeafNode:
    """A leaf page: sorted (orderable key, key, tid) entries plus a next link."""

    __slots__ = ("page_id", "entries", "next_page_id")

    def __init__(self) -> None:
        self.page_id = 0
        self.entries: list[tuple[tuple, tuple, TupleId]] = []
        self.next_page_id: int | None = None

    def clone(self) -> "_LeafNode":
        """Shadow copy for statement rollback (entries are immutable)."""
        copy = _LeafNode()
        copy.page_id = self.page_id
        copy.entries = list(self.entries)
        copy.next_page_id = self.next_page_id
        return copy


class _InternalNode:
    """An internal page: separator keys and child page ids."""

    __slots__ = ("page_id", "keys", "children")

    def __init__(self) -> None:
        self.page_id = 0
        self.keys: list[tuple] = []  # orderable separator keys
        self.children: list[int] = []

    def clone(self) -> "_InternalNode":
        """Shadow copy for statement rollback."""
        copy = _InternalNode()
        copy.page_id = self.page_id
        copy.keys = list(self.keys)
        copy.children = list(self.children)
        return copy


class BTree:
    """A B+-tree index with buffer-accounted page access.

    Duplicate keys are allowed (each entry is a distinct (key, tid) pair);
    uniqueness, when required, is enforced by the storage engine before
    insertion.
    """

    def __init__(
        self,
        store: PageStore,
        buffer: BufferPool,
        key_types: list[DataType],
    ):
        self._store = store
        self._buffer = buffer
        self._derive_capacities(key_types)
        root = _LeafNode()
        root.page_id = store.allocate_node_page(root)
        self._root_page_id = root.page_id
        self._first_leaf_page_id = root.page_id
        self._entry_count = 0

    def _derive_capacities(self, key_types: list[DataType]) -> None:
        self.key_types = list(key_types)
        key_size = sum(datatype.max_encoded_size() for datatype in key_types)
        usable = PAGE_SIZE - _NODE_OVERHEAD
        self.leaf_capacity = max(_MIN_FANOUT, usable // (key_size + _TID_SIZE))
        self.internal_capacity = max(
            _MIN_FANOUT, usable // (key_size + _CHILD_PTR_SIZE)
        )

    @classmethod
    def from_recovered(
        cls,
        store: PageStore,
        buffer: BufferPool,
        key_types: list[DataType],
        root_page_id: int,
        first_leaf_page_id: int,
        entry_count: int,
    ) -> "BTree":
        """Rebind a recovered tree to its already-loaded node pages.

        Unlike the constructor, no fresh root is allocated: the node pages
        already live in the store (loaded by recovery) and this just wires
        a ``BTree`` facade onto them.
        """
        tree = cls.__new__(cls)
        tree._store = store
        tree._buffer = buffer
        tree._derive_capacities(key_types)
        tree._root_page_id = root_page_id
        tree._first_leaf_page_id = first_leaf_page_id
        tree._entry_count = entry_count
        return tree

    # -- statement-transaction support ---------------------------------------

    def state(self) -> tuple[int, int, int]:
        """Scalar state captured by a statement-transaction snapshot."""
        return (self._root_page_id, self._first_leaf_page_id, self._entry_count)

    def restore_state(self, state: tuple[int, int, int]) -> None:
        """Reinstall scalar state on rollback."""
        self._root_page_id, self._first_leaf_page_id, self._entry_count = state

    def free_pages(self) -> None:
        """Release every node page (the tree is unusable afterwards)."""
        for node in list(self._walk_nodes()):
            self._buffer.invalidate(node.page_id)
            self._store.free(node.page_id)

    # -- public properties (statistics are computed without fetch counting) --

    @property
    def entry_count(self) -> int:
        """Total (key, TID) entries currently stored."""
        return self._entry_count

    def page_count(self) -> int:
        """NINDX: total pages (leaves + internal nodes) in this index."""
        return sum(1 for __ in self._walk_nodes())

    def leaf_page_count(self) -> int:
        """Number of leaf pages (the range-scan cost driver)."""
        return sum(
            1 for node in self._walk_nodes() if isinstance(node, _LeafNode)
        )

    def distinct_key_count(self) -> int:
        """ICARD: number of distinct full keys currently in the index."""
        count = 0
        previous: tuple | None = None
        for okey, __, ___ in self._iter_entries_uncounted():
            if okey != previous:
                count += 1
                previous = okey
        return count

    def distinct_prefix_counts(self) -> tuple[int, ...]:
        """Distinct key counts per prefix length, in one ordered walk.

        Entry ``k`` is the number of distinct values of the first ``k+1``
        key columns, so the last entry equals :meth:`distinct_key_count`.
        Keys arrive in key order, so a length-``k`` prefix changes exactly
        at the first entry whose key differs within its first ``k``
        components.
        """
        counts: list[int] = []
        previous: tuple | None = None
        for okey, __, ___ in self._iter_entries_uncounted():
            if previous is None:
                counts = [1] * len(okey)
            elif okey != previous:
                for position in range(len(counts)):
                    if previous[position] != okey[position]:
                        for wider in range(position, len(counts)):
                            counts[wider] += 1
                        break
            previous = okey
        return tuple(counts)

    def min_key(self) -> tuple | None:
        """Smallest key in the index, or None when empty."""
        for __, key, ___ in self._iter_entries_uncounted():
            return key
        return None

    def max_key(self) -> tuple | None:
        """Largest key in the index, or None when empty."""
        last: tuple | None = None
        for __, key, ___ in self._iter_entries_uncounted():
            last = key
        return last

    # -- modification --------------------------------------------------------

    def insert(self, key: tuple, tid: TupleId) -> None:
        """Add one (key, TID) entry, splitting nodes as needed."""
        get_injector().trip(FP_BTREE_INSERT)
        okey = orderable_key(key)
        split = self._insert_into(self._root_page_id, okey, key, tid)
        if split is not None:
            separator, right_page_id = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root_page_id, right_page_id]
            new_root.page_id = self._store.allocate_node_page(new_root)
            self._root_page_id = new_root.page_id
        self._entry_count += 1

    def delete(self, key: tuple, tid: TupleId) -> None:
        """Remove one (key, tid) entry; raises if it is not present."""
        get_injector().trip(FP_BTREE_DELETE)
        okey = orderable_key(key)
        leaf = self._find_leaf_uncounted(okey)
        while leaf is not None:
            position = bisect.bisect_left(
                leaf.entries, okey, key=lambda entry: entry[0]
            )
            while position < len(leaf.entries) and leaf.entries[position][0] == okey:
                if leaf.entries[position][2] == tid:
                    leaf = self._store.prepare_write(leaf.page_id)
                    del leaf.entries[position]
                    self._entry_count -= 1
                    return
                position += 1
            if position < len(leaf.entries):
                break  # moved past the key without finding the tid
            leaf = self._next_leaf_uncounted(leaf)
        raise StorageError(f"index entry {key!r} -> {tid} not found")

    def contains_key(self, key: tuple) -> bool:
        """Uncounted point lookup, used for unique-constraint checks."""
        okey = orderable_key(key)
        leaf = self._find_leaf_uncounted(okey)
        while leaf is not None:
            position = bisect.bisect_left(
                leaf.entries, okey, key=lambda entry: entry[0]
            )
            if position < len(leaf.entries):
                return leaf.entries[position][0] == okey
            leaf = self._next_leaf_uncounted(leaf)
        return False

    # -- scanning (counted through the buffer pool) ---------------------------

    def scan_range(
        self,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, TupleId]]:
        """Yield (key, tid) pairs with keys in the given range, in key order.

        ``low``/``high`` are *prefixes* of the full key: an index on
        (A, B) may be scanned with bounds on A alone.  Every node page
        touched — the root-to-leaf descent plus the chained leaves — is
        fetched through the buffer pool and therefore counted.
        """
        low_okey = orderable_key(low) if low is not None else None
        high_okey = orderable_key(high) if high is not None else None
        node = self._fetch_node(self._root_page_id)
        while isinstance(node, _InternalNode):
            if low_okey is None:
                child = node.children[0]
            else:
                position = bisect.bisect_left(node.keys, low_okey)
                # bisect_left sends an exact separator match left, which is
                # correct: equal keys may start in the left subtree.
                child = node.children[position]
            node = self._fetch_node(child)
        leaf: _LeafNode | None = node
        while leaf is not None:
            if low_okey is None:
                start = 0
            else:
                start = bisect.bisect_left(
                    leaf.entries, low_okey, key=lambda entry: entry[0][: len(low_okey)]
                )
            for okey, key, tid in leaf.entries[start:]:
                prefix = okey[: len(low_okey)] if low_okey is not None else None
                if low_okey is not None and not low_inclusive and prefix == low_okey:
                    continue
                if high_okey is not None:
                    hprefix = okey[: len(high_okey)]
                    if hprefix > high_okey or (
                        not high_inclusive and hprefix == high_okey
                    ):
                        return
                yield key, tid
            leaf = self._next_leaf(leaf)

    def scan_all(self) -> Iterator[tuple[tuple, TupleId]]:
        """Full index scan in key order, through the buffer pool."""
        return self.scan_range()

    def entries_uncounted(self) -> Iterator[tuple[tuple, TupleId]]:
        """(key, TID) pairs in key order, bypassing the buffer pool.

        For invariant checking: touching the pool would perturb its LRU
        state and the measured hit counts.
        """
        for __, key, tid in self._iter_entries_uncounted():
            yield key, tid

    def node_page_ids(self) -> list[int]:
        """Page ids of every node currently in the tree (root included)."""
        return [node.page_id for node in self._walk_nodes()]

    # -- internals -------------------------------------------------------------

    def _fetch_node(self, page_id: int):
        node = self._buffer.fetch(page_id)
        if not isinstance(node, (_LeafNode, _InternalNode)):
            raise StorageError(f"page {page_id} is not an index node")
        return node

    def _next_leaf(self, leaf: _LeafNode) -> _LeafNode | None:
        if leaf.next_page_id is None:
            return None
        nxt = self._fetch_node(leaf.next_page_id)
        assert isinstance(nxt, _LeafNode)
        return nxt

    def _insert_into(
        self, page_id: int, okey: tuple, key: tuple, tid: TupleId
    ) -> tuple[tuple, int] | None:
        """Recursive insert; returns (separator, new right page) on split."""
        node = self._store.get(page_id)
        if isinstance(node, _LeafNode):
            node = self._store.prepare_write(page_id)
            bisect.insort(
                node.entries, (okey, key, tid), key=lambda entry: (entry[0], entry[2])
            )
            if len(node.entries) <= self.leaf_capacity:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _InternalNode)
        position = bisect.bisect_right(node.keys, okey)
        split = self._insert_into(node.children[position], okey, key, tid)
        if split is None:
            return None
        separator, right_page_id = split
        node = self._store.prepare_write(page_id)
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right_page_id)
        if len(node.keys) <= self.internal_capacity:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _LeafNode) -> tuple[tuple, int]:
        get_injector().trip(FP_BTREE_SPLIT)
        middle = len(node.entries) // 2
        right = _LeafNode()
        right.entries = node.entries[middle:]
        node.entries = node.entries[:middle]
        right.next_page_id = node.next_page_id
        right.page_id = self._store.allocate_node_page(right)
        node.next_page_id = right.page_id
        return right.entries[0][0], right.page_id

    def _split_internal(self, node: _InternalNode) -> tuple[tuple, int]:
        get_injector().trip(FP_BTREE_SPLIT)
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        right.page_id = self._store.allocate_node_page(right)
        return separator, right.page_id

    # -- uncounted traversal for maintenance/statistics -------------------------

    def _find_leaf_uncounted(self, okey: tuple) -> _LeafNode:
        node = self._store.get(self._root_page_id)
        while isinstance(node, _InternalNode):
            position = bisect.bisect_left(node.keys, okey)
            node = self._store.get(node.children[position])
        assert isinstance(node, _LeafNode)
        return node

    def _next_leaf_uncounted(self, leaf: _LeafNode) -> _LeafNode | None:
        if leaf.next_page_id is None:
            return None
        node = self._store.get(leaf.next_page_id)
        assert isinstance(node, _LeafNode)
        return node

    def _leftmost_leaf_uncounted(self) -> _LeafNode:
        node = self._store.get(self._root_page_id)
        while isinstance(node, _InternalNode):
            node = self._store.get(node.children[0])
        assert isinstance(node, _LeafNode)
        return node

    def _iter_entries_uncounted(self) -> Iterator[tuple[tuple, tuple, TupleId]]:
        leaf: _LeafNode | None = self._leftmost_leaf_uncounted()
        while leaf is not None:
            yield from leaf.entries
            leaf = self._next_leaf_uncounted(leaf)

    def _walk_nodes(self):
        stack = [self._root_page_id]
        while stack:
            node = self._store.get(stack.pop())
            yield node
            if isinstance(node, _InternalNode):
                stack.extend(node.children)
