"""The "disk": an allocator and owner of all pages in the system.

Data pages are :class:`~repro.rss.page.Page` objects backed by real bytes.
B-tree node pages are structured objects (see :mod:`repro.rss.btree`) that
occupy the same page-id space, so the buffer pool accounts for index page
fetches and data page fetches uniformly — exactly the two page populations
the paper's cost formulas distinguish (``NINDX`` vs ``TCARD``).

The store is also the unit of **statement atomicity**.  Between
:meth:`PageStore.begin` and :meth:`commit`/:meth:`rollback`, the first
mutation of any page saves a pristine copy (shadow versions, System R
style): rollback restores those copies and discards pages allocated inside
the transaction, so a statement that fails half-way leaves no trace.  When
a :class:`~repro.rss.disk.DiskManager` is attached, commit serializes every
page the transaction touched and flips the durable page table atomically;
without one, commit is free — the fault-free in-memory path does exactly
the same page operations it always did.

Pages allocated with ``temp=True`` (sort runs, temporary lists) are scratch:
they participate in neither undo nor durability.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import StorageError
from .faults import get_injector, register_point
from .page import Page

if TYPE_CHECKING:
    from .disk import DiskManager

FP_PAGE_ALLOC = register_point("page.alloc", "allocating a fresh page id")
FP_PAGE_MUTATE = register_point(
    "page.mutate", "first in-transaction mutation of a page (shadow copy)"
)


class PageStore:
    """Allocates page ids and owns page contents.

    All reads must go through a :class:`~repro.rss.buffer.BufferPool`, which
    is what makes page fetches countable; the store itself never counts.
    """

    def __init__(self, disk: "DiskManager | None" = None):
        self._pages: dict[int, object] = {}
        self._next_id = 1
        self._temp_ids: set[int] = set()
        self.disk = disk
        if disk is not None:
            self._next_id = max(self._next_id, disk.next_page_id)
        self._in_tx = False
        self._tx_undo: dict[int, object] = {}
        self._tx_allocated: list[int] = []
        self._tx_freed: dict[int, object] = {}

    # -- allocation ---------------------------------------------------------

    def allocate_data_page(self, temp: bool = False) -> Page:
        """Create and register a fresh empty data page.

        ``temp`` marks scratch pages (temporary lists, sort runs) that are
        excluded from transactions and never written to the backing file.
        """
        get_injector().trip(FP_PAGE_ALLOC)
        page = Page(self._next_id)
        self._register(page.page_id, page, temp)
        return page

    def allocate_node_page(self, node: object) -> int:
        """Register a B-tree node as a page; returns its page id."""
        get_injector().trip(FP_PAGE_ALLOC)
        page_id = self._next_id
        self._register(page_id, node, temp=False)
        return page_id

    def _register(self, page_id: int, obj: object, temp: bool) -> None:
        self._pages[page_id] = obj
        self._next_id = page_id + 1
        if temp:
            self._temp_ids.add(page_id)
        elif self._in_tx:
            self._tx_allocated.append(page_id)

    # -- access -------------------------------------------------------------

    def get(self, page_id: int) -> object:
        """The page object for an id; raises on unknown pages."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"no such page {page_id}") from None

    def free(self, page_id: int) -> None:
        """Release a page id (idempotent)."""
        obj = self._pages.pop(page_id, None)
        temp = page_id in self._temp_ids
        self._temp_ids.discard(page_id)
        if obj is not None and self._in_tx and not temp:
            self._tx_freed.setdefault(page_id, obj)

    def is_temp(self, page_id: int) -> bool:
        """Whether a page id is scratch (excluded from durability)."""
        return page_id in self._temp_ids

    def page_ids(self) -> list[int]:
        """Every allocated page id, ascending (for invariant checks)."""
        return sorted(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    # -- statement transactions ---------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether a statement transaction is open."""
        return self._in_tx

    def begin(self) -> None:
        """Open a statement transaction (no copies are taken up front)."""
        if self._in_tx:
            raise StorageError("statement transaction already open")
        self._in_tx = True
        self._tx_undo = {}
        self._tx_allocated = []
        self._tx_freed = {}

    def prepare_write(self, page_id: int) -> None:
        """Declare an imminent mutation of a page.

        Inside a transaction, the first mutation of each page shadow-copies
        its current state for rollback; outside one, this is a no-op flag
        check, so mutators call it unconditionally.
        """
        if not self._in_tx or page_id in self._tx_undo:
            return
        if page_id in self._temp_ids:
            return
        obj = self._pages.get(page_id)
        if obj is None:
            return
        get_injector().trip(FP_PAGE_MUTATE)
        clone = getattr(obj, "clone", None)
        if clone is None:
            raise StorageError(
                f"page {page_id} object {type(obj).__name__} is not clonable"
            )
        self._tx_undo[page_id] = clone()

    def rollback(self, buffer: object = None) -> None:
        """Discard every effect since :meth:`begin`.

        Pages allocated inside the transaction disappear (and are dropped
        from ``buffer`` when one is given), freed pages reappear, and
        mutated pages revert to their shadow copies.
        """
        if not self._in_tx:
            raise StorageError("no statement transaction to roll back")
        allocated = set(self._tx_allocated)
        for page_id in allocated:
            self._pages.pop(page_id, None)
            if buffer is not None:
                buffer.invalidate(page_id)
        for page_id, obj in self._tx_freed.items():
            if page_id not in allocated:
                self._pages[page_id] = obj
        for page_id, pristine in self._tx_undo.items():
            if page_id not in allocated:
                self._pages[page_id] = pristine
        self._end_tx()

    def commit(self, meta_blob: bytes | None = None) -> None:
        """Make every effect since :meth:`begin` final.

        With a backing file attached, every touched non-temp page is
        serialized and written copy-on-write, then the page table flips
        atomically; ``meta_blob`` (the metadata page payload) rides in the
        same commit.  On failure the transaction stays open so the caller
        can roll back — the durable state is untouched either way.
        """
        if not self._in_tx:
            raise StorageError("no statement transaction to commit")
        if self.disk is not None:
            from .recovery import META_PAGE_ID, serialize_page

            dirty: dict[int, bytes] = {}
            for page_id in sorted(set(self._tx_undo) | set(self._tx_allocated)):
                obj = self._pages.get(page_id)
                if obj is None or page_id in self._temp_ids:
                    continue
                dirty[page_id] = serialize_page(obj)
            if meta_blob is not None:
                dirty[META_PAGE_ID] = meta_blob
            freed = [
                page_id
                for page_id in self._tx_freed
                if page_id not in self._pages
            ]
            self.disk.commit(dirty, freed, self._next_id)
        self._end_tx()

    def _end_tx(self) -> None:
        self._in_tx = False
        self._tx_undo = {}
        self._tx_allocated = []
        self._tx_freed = {}

    # -- recovery ------------------------------------------------------------

    def adopt(self, pages: dict[int, object], next_page_id: int) -> None:
        """Install recovered page contents (only valid on an empty store)."""
        if self._pages:
            raise StorageError("cannot adopt pages into a non-empty store")
        self._pages = dict(pages)
        self._next_id = max(next_page_id, max(self._pages, default=0) + 1)
