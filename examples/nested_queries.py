"""Section 6 in action: nested and correlated subqueries.

Shows the three evaluation regimes the paper discusses:

1. an uncorrelated subquery evaluated exactly once before the parent,
2. a correlated subquery re-evaluated per candidate tuple, and
3. the optimization of skipping re-evaluation when the referenced value
   equals the previous candidate's (most effective when the outer relation
   is ordered on the referenced column).

Run with::

    python examples/nested_queries.py
"""

from repro import Database
from repro.workloads import load_rows


def build() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE EMPLOYEE (ENO INTEGER, NAME VARCHAR(20), "
        "SALARY INTEGER, MANAGER INTEGER)"
    )
    rows = [(1, "BOSS", 200, None)]
    for eno in range(2, 62):
        manager = 1 if eno < 8 else (eno % 6) + 2
        rows.append((eno, f"E{eno}", 50 + (eno * 13) % 120, manager))
    load_rows(db, "EMPLOYEE", rows)
    db.execute("CREATE UNIQUE INDEX E_ENO ON EMPLOYEE (ENO)")
    db.execute("CREATE INDEX E_MGR ON EMPLOYEE (MANAGER)")
    db.execute("UPDATE STATISTICS")
    return db


def run(db: Database, sql: str) -> None:
    print(sql)
    planned = db.plan(sql)
    executor = db.executor()
    result = executor.execute(planned)
    counts = executor.last_runtime.evaluation_counts
    print(f"  rows: {len(result.rows)}")
    for block_id, count in sorted(counts.items()):
        print(f"  subquery block #{block_id} evaluated {count} time(s)")
    print()


def main() -> None:
    db = build()

    print("-- uncorrelated: evaluated once --")
    run(
        db,
        "SELECT NAME FROM EMPLOYEE "
        "WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
    )

    print("-- correlated: once per candidate tuple (paper's example) --")
    db.subquery_cache_mode = "none"
    correlated = (
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
        "(SELECT SALARY FROM EMPLOYEE WHERE ENO = X.MANAGER)"
    )
    run(db, correlated)

    print("-- same query, previous-value skip enabled --")
    db.subquery_cache_mode = "prev"
    run(db, correlated)

    print(
        "-- ordered outer reference: the skip pays off "
        "(ORDER BY MANAGER groups equal values) --"
    )
    ordered = (
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
        "(SELECT AVG(SALARY) FROM EMPLOYEE WHERE MANAGER = X.MANAGER) "
        "ORDER BY MANAGER"
    )
    db.subquery_cache_mode = "none"
    print("   without the skip:")
    run(db, ordered)
    db.subquery_cache_mode = "prev"
    print("   with the skip:")
    run(db, ordered)

    print("-- two levels of correlation (manager's manager) --")
    db.subquery_cache_mode = "prev"
    run(
        db,
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
        "(SELECT SALARY FROM EMPLOYEE WHERE ENO = "
        "(SELECT MANAGER FROM EMPLOYEE WHERE ENO = X.MANAGER))",
    )


if __name__ == "__main__":
    main()
