"""Unit tests for interesting orders and order equivalence classes."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import INTEGER
from repro.optimizer.binder import Binder
from repro.optimizer.orders import InterestingOrders, UNORDERED
from repro.optimizer.predicates import to_cnf_factors
from repro.sql import parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    for name in ("E", "D", "F"):
        catalog.create_table(
            name, [("DNO", INTEGER), ("X", INTEGER), ("Y", INTEGER)]
        )
    return catalog


def build(catalog, sql):
    block = Binder(catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    return block, factors, InterestingOrders(block, factors)


class TestEquivalenceClasses:
    def test_transitive_equijoin_classes(self, catalog):
        # E.DNO = D.DNO and D.DNO = F.DNO: all three in one class (the
        # paper's own example).
        __, ___, orders = build(
            catalog,
            "SELECT * FROM E, D, F WHERE E.DNO = D.DNO AND D.DNO = F.DNO",
        )
        e = orders.class_of(("E", 0))
        d = orders.class_of(("D", 0))
        f = orders.class_of(("F", 0))
        assert e == d == f

    def test_separate_classes(self, catalog):
        __, ___, orders = build(
            catalog,
            "SELECT * FROM E, D WHERE E.DNO = D.DNO AND E.X = D.X",
        )
        assert orders.class_of(("E", 0)) != orders.class_of(("E", 1))

    def test_non_equijoin_does_not_merge(self, catalog):
        __, ___, orders = build(
            catalog, "SELECT * FROM E, D WHERE E.DNO < D.DNO"
        )
        assert orders.class_of(("E", 0)) != orders.class_of(("D", 0))


class TestCanonicalization:
    def test_join_column_is_interesting(self, catalog):
        __, ___, orders = build(
            catalog, "SELECT * FROM E, D WHERE E.DNO = D.DNO"
        )
        produced = orders.order_key([("E", 0), ("E", 1)])
        # Only the first (join) column survives; X is uninteresting.
        assert orders.canonicalize(produced) == produced[:1]

    def test_uninteresting_collapses_to_unordered(self, catalog):
        __, ___, orders = build(
            catalog, "SELECT * FROM E, D WHERE E.DNO = D.DNO"
        )
        produced = orders.order_key([("E", 2)])  # Y: not interesting
        assert orders.canonicalize(produced) == UNORDERED

    def test_order_by_sequence_preserved(self, catalog):
        __, ___, orders = build(
            catalog, "SELECT * FROM E ORDER BY X, Y"
        )
        produced = orders.order_key([("E", 1), ("E", 2), ("E", 0)])
        kept = orders.canonicalize(produced)
        assert kept == orders.order_key([("E", 1), ("E", 2)])

    def test_satisfies_prefix_rule(self, catalog):
        __, ___, orders = build(catalog, "SELECT * FROM E ORDER BY X")
        produced = orders.order_key([("E", 1), ("E", 2)])
        required = orders.order_key([("E", 1)])
        assert orders.satisfies(produced, required)
        assert not orders.satisfies(required[:0], required)


class TestRequiredOrder:
    def test_group_by_defines_requirement(self, catalog):
        block, ___, orders = build(
            catalog, "SELECT X, COUNT(*) FROM E GROUP BY X"
        )
        assert orders.required_for_block(block) == orders.order_key([("E", 1)])

    def test_order_by_defines_requirement(self, catalog):
        block, ___, orders = build(catalog, "SELECT * FROM E ORDER BY Y")
        assert orders.required_for_block(block) == orders.order_key([("E", 2)])

    def test_descending_order_requires_sort(self, catalog):
        block, ___, orders = build(catalog, "SELECT * FROM E ORDER BY Y DESC")
        assert orders.required_for_block(block) == UNORDERED

    def test_no_clauses_no_requirement(self, catalog):
        block, ___, orders = build(catalog, "SELECT * FROM E")
        assert orders.required_for_block(block) == UNORDERED
