"""Plan quality: the optimizer against its baselines, predicted and measured.

For a batch of random chain-join queries this script plans each query with
the Selinger optimizer and with the greedy / random / naive baselines,
executes every plan cold, and reports predicted and measured weighted cost
side by side — the experiment behind the paper's §7 claim that the
optimizer "selects the true optimal path in a large majority of cases".

Run with::

    python examples/plan_quality.py
"""

import random

from repro.baselines import GreedyPlanner, NaivePlanner, RandomPlanner
from repro.optimizer.binder import Binder
from repro.sql import parse_statement
from repro.workloads import build_database, random_chain_spec, random_select_query


def measure(db, planned) -> float:
    db.cold_cache()
    db.executor().execute(planned)
    counters = db.counters
    return counters.page_fetches + planned.w * counters.rsi_calls


def main() -> None:
    rng = random.Random(2024)
    print(f"{'query':<8} {'planner':<10} {'predicted':>12} {'measured':>12}")
    totals: dict[str, float] = {}
    wins = 0
    queries = 6
    for number in range(queries):
        tables = random_chain_spec(3, rng, min_rows=80, max_rows=400)
        db = build_database(tables, seed=number)
        sql = random_select_query(tables, rng)
        optimizer = db.optimizer()

        planners = {
            "selinger": lambda: optimizer.plan_block(
                Binder(db.catalog).bind(parse_statement(sql))
            ),
            "greedy": lambda: GreedyPlanner(optimizer, db.catalog).plan_block(
                Binder(db.catalog).bind(parse_statement(sql))
            ),
            "random": lambda: RandomPlanner(
                optimizer, db.catalog, seed=number
            ).plan_block(Binder(db.catalog).bind(parse_statement(sql))),
            "naive": lambda: NaivePlanner(optimizer, db.catalog).plan_block(
                Binder(db.catalog).bind(parse_statement(sql))
            ),
        }
        measured: dict[str, float] = {}
        for name, plan_fn in planners.items():
            planned = plan_fn()
            cost = measure(db, planned)
            measured[name] = cost
            totals[name] = totals.get(name, 0.0) + cost
            print(
                f"Q{number:<7} {name:<10} {planned.estimated_total():>12.2f} "
                f"{cost:>12.2f}"
            )
        if measured["selinger"] <= min(measured.values()) * 1.001:
            wins += 1
        print()
    print("total measured cost per planner:")
    for name, value in sorted(totals.items(), key=lambda item: item[1]):
        print(f"  {name:<10} {value:>12.2f}")
    print(
        f"\nselinger plan was (tied-)best on {wins}/{queries} queries"
    )


if __name__ == "__main__":
    main()
