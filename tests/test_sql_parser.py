"""Unit tests for the SQL parser."""

import pytest

from repro.datatypes import TypeKind
from repro.errors import ParseError
from repro.rss.sargs import CompareOp
from repro.sql import ast, parse_statement


def parse_select(sql) -> ast.SelectQuery:
    statement = parse_statement(sql)
    assert isinstance(statement, ast.SelectQuery)
    return statement


class TestSelectBasics:
    def test_star(self):
        query = parse_select("SELECT * FROM EMP")
        assert query.is_star
        assert query.from_tables == (ast.TableRef("EMP", "EMP"),)

    def test_select_list(self):
        query = parse_select("SELECT NAME, SAL FROM EMP")
        assert len(query.select_items) == 2
        assert query.select_items[0].expr == ast.ColumnRef(None, "NAME")

    def test_alias_with_as(self):
        query = parse_select("SELECT SAL AS SALARY FROM EMP")
        assert query.select_items[0].alias == "SALARY"

    def test_alias_without_as(self):
        query = parse_select("SELECT SAL SALARY FROM EMP")
        assert query.select_items[0].alias == "SALARY"

    def test_table_alias(self):
        query = parse_select("SELECT * FROM EMPLOYEE X")
        assert query.from_tables == (ast.TableRef("EMPLOYEE", "X"),)

    def test_multiple_tables(self):
        query = parse_select("SELECT * FROM A, B, C")
        assert [t.table_name for t in query.from_tables] == ["A", "B", "C"]

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT DNO FROM EMP").distinct

    def test_qualified_column(self):
        query = parse_select("SELECT EMP.DNO FROM EMP")
        assert query.select_items[0].expr == ast.ColumnRef("EMP", "DNO")


class TestWhere:
    def test_comparison_ops(self):
        for text, op in [
            ("=", CompareOp.EQ),
            ("<>", CompareOp.NE),
            ("<", CompareOp.LT),
            ("<=", CompareOp.LE),
            (">", CompareOp.GT),
            (">=", CompareOp.GE),
        ]:
            query = parse_select(f"SELECT * FROM T WHERE A {text} 5")
            assert isinstance(query.where, ast.Comparison)
            assert query.where.op is op

    def test_and_flattens(self):
        query = parse_select("SELECT * FROM T WHERE A=1 AND B=2 AND C=3")
        assert isinstance(query.where, ast.And)
        assert len(query.where.operands) == 3

    def test_or_binds_looser_than_and(self):
        query = parse_select("SELECT * FROM T WHERE A=1 AND B=2 OR C=3")
        assert isinstance(query.where, ast.Or)
        assert isinstance(query.where.operands[0], ast.And)

    def test_parenthesized(self):
        query = parse_select("SELECT * FROM T WHERE A=1 AND (B=2 OR C=3)")
        assert isinstance(query.where, ast.And)
        assert isinstance(query.where.operands[1], ast.Or)

    def test_not(self):
        query = parse_select("SELECT * FROM T WHERE NOT A=1")
        assert isinstance(query.where, ast.Not)

    def test_between(self):
        query = parse_select("SELECT * FROM T WHERE A BETWEEN 1 AND 10")
        where = query.where
        assert isinstance(where, ast.Between)
        assert where.low == ast.Literal(1)
        assert where.high == ast.Literal(10)

    def test_not_between(self):
        query = parse_select("SELECT * FROM T WHERE A NOT BETWEEN 1 AND 10")
        assert isinstance(query.where, ast.Not)
        assert isinstance(query.where.operand, ast.Between)

    def test_in_list(self):
        query = parse_select("SELECT * FROM T WHERE A IN (1, 2, 3)")
        where = query.where
        assert isinstance(where, ast.InList)
        assert [v.value for v in where.values] == [1, 2, 3]

    def test_in_list_negative_numbers(self):
        query = parse_select("SELECT * FROM T WHERE A IN (-1, 2)")
        assert [v.value for v in query.where.values] == [-1, 2]

    def test_not_in_list(self):
        query = parse_select("SELECT * FROM T WHERE A NOT IN (1)")
        assert isinstance(query.where, ast.Not)

    def test_is_null(self):
        query = parse_select("SELECT * FROM T WHERE A IS NULL")
        assert query.where == ast.IsNull(ast.ColumnRef(None, "A"), False)

    def test_is_not_null(self):
        query = parse_select("SELECT * FROM T WHERE A IS NOT NULL")
        assert query.where == ast.IsNull(ast.ColumnRef(None, "A"), True)

    def test_like(self):
        query = parse_select("SELECT * FROM T WHERE A LIKE 'x%'")
        assert query.where == ast.Like(ast.ColumnRef(None, "A"), "x%", False)

    def test_not_like(self):
        query = parse_select("SELECT * FROM T WHERE A NOT LIKE 'x%'")
        assert query.where.negated

    def test_arithmetic_precedence(self):
        query = parse_select("SELECT * FROM T WHERE A + 2 * 3 = 7")
        comparison = query.where
        add = comparison.left
        assert isinstance(add, ast.BinaryOp) and add.op == "+"
        assert isinstance(add.right, ast.BinaryOp) and add.right.op == "*"

    def test_unary_minus_folds_literals(self):
        query = parse_select("SELECT * FROM T WHERE A = -5")
        assert query.where.right == ast.Literal(-5)


class TestSubqueries:
    def test_scalar_subquery(self):
        query = parse_select(
            "SELECT * FROM T WHERE A = (SELECT MAX(A) FROM T)"
        )
        assert isinstance(query.where.right, ast.ScalarSubquery)

    def test_in_subquery(self):
        query = parse_select(
            "SELECT * FROM T WHERE A IN (SELECT B FROM S WHERE C = 1)"
        )
        assert isinstance(query.where, ast.InSubquery)
        assert isinstance(query.where.subquery, ast.SelectQuery)

    def test_nested_subqueries(self):
        query = parse_select(
            "SELECT NAME FROM E X WHERE S > "
            "(SELECT S FROM E WHERE N = (SELECT M FROM E WHERE N = X.M))"
        )
        outer_sub = query.where.right.subquery
        inner = outer_sub.where.right
        assert isinstance(inner, ast.ScalarSubquery)


class TestGroupOrder:
    def test_group_by(self):
        query = parse_select("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO")
        assert query.group_by == (ast.ColumnRef(None, "DNO"),)

    def test_having(self):
        query = parse_select(
            "SELECT DNO FROM EMP GROUP BY DNO HAVING COUNT(*) > 3"
        )
        assert isinstance(query.having, ast.Comparison)

    def test_order_by_directions(self):
        query = parse_select("SELECT * FROM T ORDER BY A, B DESC, C ASC")
        assert [item.descending for item in query.order_by] == [
            False,
            True,
            False,
        ]

    def test_aggregates(self):
        query = parse_select(
            "SELECT COUNT(*), COUNT(DISTINCT A), AVG(B) FROM T"
        )
        count_star, count_distinct, avg = [
            item.expr for item in query.select_items
        ]
        assert count_star == ast.FuncCall("COUNT", None, False)
        assert count_distinct.distinct
        assert avg.name == "AVG"

    def test_count_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT AVG(*) FROM T")


class TestDdlDml:
    def test_create_table_types(self):
        statement = parse_statement(
            "CREATE TABLE T (A INTEGER, B INT, C FLOAT, D VARCHAR(7))"
        )
        kinds = [spec.datatype.kind for spec in statement.columns]
        assert kinds == [
            TypeKind.INTEGER,
            TypeKind.INTEGER,
            TypeKind.FLOAT,
            TypeKind.VARCHAR,
        ]
        assert statement.columns[3].datatype.length == 7

    def test_create_index_variants(self):
        plain = parse_statement("CREATE INDEX I ON T (A)")
        assert not plain.unique and not plain.clustered
        full = parse_statement("CREATE UNIQUE INDEX I ON T (A, B) CLUSTER")
        assert full.unique and full.clustered
        assert full.column_names == ("A", "B")

    def test_insert_multiple_rows(self):
        statement = parse_statement("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO T (B, A) VALUES ('x', 1)")
        assert statement.column_names == ("B", "A")

    def test_update(self):
        statement = parse_statement("UPDATE T SET A = A + 1, B = 2 WHERE C = 3")
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_update_statistics(self):
        assert parse_statement("UPDATE STATISTICS").table_name is None
        assert parse_statement("UPDATE STATISTICS EMP").table_name == "EMP"

    def test_delete(self):
        statement = parse_statement("DELETE FROM T WHERE A = 1")
        assert statement.table_name == "T"

    def test_drop(self):
        assert parse_statement("DROP TABLE T").table_name == "T"
        assert parse_statement("DROP INDEX I").index_name == "I"


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM T WHERE",
            "SELECT * T",
            "INSERT T VALUES (1)",
            "CREATE TABLE T ()",
            "CREATE TABLE T (A BLOB)",
            "CREATE UNIQUE TABLE T (A INTEGER)",
            "SELECT * FROM T WHERE A LIKE 5",
            "SELECT * FROM T WHERE A IN (B)",
            "SELECT * FROM T extra garbage (",
            "FOO BAR",
        ],
    )
    def test_rejects(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM T SELECT")
