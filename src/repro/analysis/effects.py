"""Per-function effect signatures, propagated through the call graph.

Every function in the package gets a signature drawn from six atoms:

- ``pure`` — none of the below (the empty signature);
- ``reads-global`` — reads a module-level *mutable* value;
- ``writes-global`` — rebinds or mutates a module-level value;
- ``mutates-param`` — assigns or mutates through a parameter;
- ``mutates-self`` — assigns or mutates an instance attribute outside
  ``__init__`` (construction is not an effect: nobody shares the object
  yet);
- ``io`` — touches the world (files, environment, stdout, clocks).

Direct effects come straight from the AST via the mutation records of
:class:`~repro.analysis.dataflow.ProgramGraph`.  Transitive effects
propagate caller-ward to a fixed point: calling a global-writer makes you
a global-writer, calling an IO function makes you IO.  ``mutates-param``
and ``mutates-self`` propagate only where the receiver demonstrably flows
through the call — ``self`` method calls within a class — because
propagating them blindly through every call edge would mark the whole
program self-mutating.

The signatures are the raw material for
:mod:`repro.analysis.concurrency`: a function whose transitive signature
is pure (or read-only) is safe to run on many workers as-is; everything
else appears in the shared-mutable-state report with the specific state
it touches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .dataflow import FunctionInfo, ProgramGraph

#: Effect atoms in severity order (report ordering only).
EFFECT_ORDER = (
    "io",
    "writes-global",
    "mutates-self",
    "mutates-param",
    "reads-global",
)

#: Builtin calls that are IO by definition.
_IO_CALLS = frozenset({"open", "print", "input", "breakpoint"})

#: Modules whose attribute calls are IO (``os.rename``, ``time.sleep``...).
_IO_MODULES = frozenset({"os", "sys", "shutil", "time", "tempfile"})

#: Method names that are IO on any receiver (file handles, paths).
_IO_METHODS = frozenset(
    {
        "fsync",
        "flush",
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        "unlink",
        "rename",
        "mkdir",
        "rmdir",
        "perf_counter",
    }
)


@dataclass
class EffectSignature:
    """Inferred effects of one function."""

    qualname: str
    direct: set[str] = field(default_factory=set)
    #: direct ∪ effects inherited from callees.
    transitive: set[str] = field(default_factory=set)
    #: (effect, "module:line detail") evidence for the direct effects.
    sites: list[tuple[str, str]] = field(default_factory=list)

    @property
    def is_pure(self) -> bool:
        """No effects, even transitively."""
        return not self.transitive

    def describe(self) -> str:
        """``pure`` or the sorted effect atoms, transitive ones marked."""
        if self.is_pure:
            return "pure"
        parts = []
        for effect in EFFECT_ORDER:
            if effect in self.direct:
                parts.append(effect)
            elif effect in self.transitive:
                parts.append(f"{effect}*")
        return " ".join(parts)


def infer_effects(graph: ProgramGraph) -> dict[str, EffectSignature]:
    """Effect signatures for every function in the graph, propagated."""
    signatures = {
        qualname: _direct_effects(graph, func)
        for qualname, func in graph.functions.items()
    }
    _propagate(graph, signatures)
    return signatures


# ---------------------------------------------------------------------------
# direct effects
# ---------------------------------------------------------------------------


def _direct_effects(graph: ProgramGraph, func: FunctionInfo) -> EffectSignature:
    signature = EffectSignature(qualname=func.qualname)
    module = graph.modules[func.module]
    in_init = func.name in ("__init__", "__post_init__")

    for mutation in graph.mutations.get(func.qualname, ()):
        where = f"{func.module}:{mutation.lineno}"
        if mutation.kind in ("global", "global-attr"):
            signature.direct.add("writes-global")
            signature.sites.append(
                ("writes-global", f"{where} ({mutation.target})")
            )
        elif mutation.kind == "self-attr":
            if not in_init:
                signature.direct.add("mutates-self")
                signature.sites.append(
                    ("mutates-self", f"{where} (.{mutation.target})")
                )
        elif mutation.kind == "param-attr":
            signature.direct.add("mutates-param")
            signature.sites.append(
                (
                    "mutates-param",
                    f"{where} ({mutation.detail}.{mutation.target})",
                )
            )
        elif mutation.kind == "unknown-attr":
            # Mutation through a value of unknown origin: conservatively a
            # parameter-style effect (the object came from *somewhere*).
            signature.direct.add("mutates-param")
            signature.sites.append(
                ("mutates-param", f"{where} (?.{mutation.target})")
            )

    assert func.node is not None
    shadowed = set(func.params)
    for node in ast.walk(func.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            var = module.globals.get(node.id)
            if (
                var is not None
                and var.kind in ("container", "instance")
                and node.id not in shadowed
            ):
                signature.direct.add("reads-global")
                signature.sites.append(
                    ("reads-global", f"{func.module}:{node.lineno} ({node.id})")
                )
        elif isinstance(node, ast.Call):
            io_site = _io_call(node)
            if io_site:
                signature.direct.add("io")
                signature.sites.append(
                    ("io", f"{func.module}:{node.lineno} ({io_site})")
                )
    return signature


def _io_call(node: ast.Call) -> str | None:
    callee = node.func
    if isinstance(callee, ast.Name) and callee.id in _IO_CALLS:
        return callee.id
    if isinstance(callee, ast.Attribute):
        if (
            isinstance(callee.value, ast.Name)
            and callee.value.id in _IO_MODULES
        ):
            return f"{callee.value.id}.{callee.attr}"
        if callee.attr in _IO_METHODS:
            return f".{callee.attr}"
    return None


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------

#: Effects that flow through every call edge.
_VIRAL = frozenset({"reads-global", "writes-global", "io"})


def _propagate(
    graph: ProgramGraph, signatures: dict[str, EffectSignature]
) -> None:
    for signature in signatures.values():
        signature.transitive = set(signature.direct)
    changed = True
    while changed:
        changed = False
        for qualname, signature in signatures.items():
            caller = graph.functions[qualname]
            for callee_name in graph.calls.get(qualname, ()):
                callee_signature = signatures.get(callee_name)
                if callee_signature is None:
                    continue
                inherited = callee_signature.transitive & _VIRAL
                callee = graph.functions[callee_name]
                # `self.helper()` within one class: the helper's self
                # mutation is the caller's self mutation.
                if (
                    "mutates-self" in callee_signature.transitive
                    and caller.klass is not None
                    and caller.klass == callee.klass
                    and caller.module == callee.module
                    and callee.name not in ("__init__", "__post_init__")
                ):
                    inherited = inherited | {"mutates-self"}
                if not inherited <= signature.transitive:
                    signature.transitive |= inherited
                    changed = True


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def effects_summary(
    signatures: dict[str, EffectSignature],
) -> dict[str, int]:
    """Counts per effect atom plus ``pure``/``total`` (for the report)."""
    summary = {effect: 0 for effect in EFFECT_ORDER}
    summary["pure"] = 0
    for signature in signatures.values():
        if signature.is_pure:
            summary["pure"] += 1
        for effect in signature.transitive:
            summary[effect] += 1
    summary["total"] = len(signatures)
    return summary


def impure_functions(
    signatures: dict[str, EffectSignature], effects: Iterable[str]
) -> list[EffectSignature]:
    """Signatures whose transitive effects intersect ``effects``, sorted."""
    wanted = set(effects)
    return sorted(
        (s for s in signatures.values() if s.transitive & wanted),
        key=lambda s: s.qualname,
    )
