"""E8 — Figure 6: the extended search tree for all three relations.

The complete solutions: cheapest plan per interesting order for
{EMP, DEPT, JOB}, and the final choice among them.
"""

from conftest import measure_cold, weighted
from repro.optimizer.binder import Binder
from repro.optimizer.explain import format_order, plan_summary, solutions_table
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


def test_fig6_three_relation_tree(empdept, report, benchmark):
    optimizer = empdept.optimizer()

    def search():
        block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        return optimizer.run_join_search(block)[0]

    result = benchmark(search)

    rows = solutions_table(result, optimizer.cost_model, size=3)
    report.line("E8 / Figure 6 — three-relation solutions")
    report.table(
        ["relations", "order", "cost", "rows", "plan"],
        [
            [
                "{" + ",".join(row["relations"]) + "}",
                format_order(row["order"]),
                row["cost"],
                row["rows"],
                row["plan"],
            ]
            for row in rows
        ],
        widths=[18, 14, 12, 12, 64],
    )

    planned = empdept.plan(FIG1_QUERY)
    report.line()
    report.line(f"final choice: {plan_summary(planned.root)}")
    report.line(f"estimated total: {planned.estimated_total():.2f}")
    measured, query_result = measure_cold(empdept, planned)
    report.line(
        f"measured total: {weighted(measured, planned.w):.2f} "
        f"({measured.page_fetches} pages, {measured.rsi_calls} RSI calls); "
        f"{len(query_result.rows)} rows"
    )

    assert rows, "complete solutions must exist"
    # The final choice costs no more than any surviving complete solution.
    cheapest = min(row["cost"] for row in rows)
    assert planned.estimated_total() <= cheapest * 1.0001 + 1e-9
    # Estimated result cardinality is order-independent.
    assert len({round(row["rows"], 4) for row in rows}) == 1
