"""INSERT ... SELECT and scalar subqueries in the SELECT list."""

import pytest

from repro import SemanticError
from repro.workloads import load_rows


@pytest.fixture
def source(db):
    db.execute("CREATE TABLE SRC (A INTEGER, B VARCHAR(8), C INTEGER)")
    load_rows(db, "SRC", [(i, f"s{i}", i * 10) for i in range(20)])
    db.execute("UPDATE STATISTICS")
    return db


class TestInsertSelect:
    def test_copy_table(self, source):
        source.execute("CREATE TABLE DST (A INTEGER, B VARCHAR(8), C INTEGER)")
        result = source.execute("INSERT INTO DST SELECT * FROM SRC")
        assert result.affected_rows == 20
        assert sorted(source.execute("SELECT * FROM DST").rows) == sorted(
            source.execute("SELECT * FROM SRC").rows
        )

    def test_filtered_copy(self, source):
        source.execute("CREATE TABLE DST (A INTEGER, B VARCHAR(8), C INTEGER)")
        source.execute("INSERT INTO DST SELECT * FROM SRC WHERE A < 5")
        assert source.execute("SELECT COUNT(*) FROM DST").scalar() == 5

    def test_projection_and_column_list(self, source):
        source.execute("CREATE TABLE DST (X INTEGER, Y INTEGER)")
        source.execute("INSERT INTO DST (Y, X) SELECT C, A FROM SRC WHERE A = 3")
        assert source.execute("SELECT X, Y FROM DST").rows == [(3, 30)]

    def test_expressions_in_source(self, source):
        source.execute("CREATE TABLE DST (V INTEGER)")
        source.execute("INSERT INTO DST SELECT A + C FROM SRC WHERE A = 2")
        assert source.execute("SELECT V FROM DST").rows == [(22,)]

    def test_aggregated_source(self, source):
        source.execute("CREATE TABLE DST (N INTEGER, TOTAL INTEGER)")
        source.execute(
            "INSERT INTO DST SELECT COUNT(*), SUM(C) FROM SRC"
        )
        assert source.execute("SELECT * FROM DST").rows == [(20, 1900)]

    def test_self_insert_is_safe(self, source):
        """Materialized source: inserting into the scanned table is stable."""
        before = source.execute("SELECT COUNT(*) FROM SRC").scalar()
        source.execute("INSERT INTO SRC SELECT * FROM SRC")
        after = source.execute("SELECT COUNT(*) FROM SRC").scalar()
        assert after == before * 2

    def test_type_validation_applies(self, source):
        source.execute("CREATE TABLE DST (V VARCHAR(2))")
        with pytest.raises(SemanticError):
            source.execute("INSERT INTO DST SELECT B FROM SRC WHERE A = 11")

    def test_arity_mismatch(self, source):
        source.execute("CREATE TABLE DST (X INTEGER)")
        with pytest.raises(SemanticError):
            source.execute("INSERT INTO DST SELECT A, C FROM SRC")

    def test_unique_index_enforced(self, source):
        from repro.errors import IntegrityError

        source.execute("CREATE TABLE DST (A INTEGER)")
        source.execute("CREATE UNIQUE INDEX DST_A ON DST (A)")
        source.execute("INSERT INTO DST SELECT A FROM SRC")
        with pytest.raises(IntegrityError):
            source.execute("INSERT INTO DST SELECT A FROM SRC WHERE A = 1")


class TestScalarSubqueryInSelect:
    def test_uncorrelated(self, source):
        result = source.execute(
            "SELECT A, (SELECT MAX(C) FROM SRC) FROM SRC WHERE A < 3"
        )
        assert sorted(result.rows) == [(0, 190), (1, 190), (2, 190)]

    def test_correlated(self, source):
        result = source.execute(
            "SELECT A, (SELECT B FROM SRC WHERE A = X.A) FROM SRC X WHERE A < 2"
        )
        assert sorted(result.rows) == [(0, "s0"), (1, "s1")]

    def test_subquery_in_select_feeds_insert(self, source):
        source.execute("CREATE TABLE DST (A INTEGER, M INTEGER)")
        source.execute(
            "INSERT INTO DST SELECT A, (SELECT MIN(C) FROM SRC) FROM SRC "
            "WHERE A = 7"
        )
        assert source.execute("SELECT * FROM DST").rows == [(7, 0)]
