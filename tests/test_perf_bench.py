"""The ``repro bench`` harness: workload matrix, JSON report, comparison."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    WorkloadSpec,
    compare_reports,
    default_workloads,
    load_report,
    main,
    run_bench,
    run_workload,
)


def test_default_workload_matrix_quick_and_full():
    quick = default_workloads(quick=True)
    full = default_workloads(quick=False)
    assert {spec.topology for spec in full} == {"chain", "star", "clique"}
    assert len(quick) < len(full)
    assert all(spec.relations >= 2 for spec in quick + full)


def test_workload_names_and_filters():
    specs = default_workloads(topologies=("chain",), sizes=(2, 3))
    assert [spec.name for spec in specs] == ["chain-2", "chain-3"]
    with pytest.raises(ValueError):
        default_workloads(topologies=("ring",))
    with pytest.raises(ValueError):
        default_workloads(sizes=(1,))


@pytest.mark.parametrize("topology", ["chain", "star", "clique"])
def test_workload_builds_and_plans(topology):
    result = run_workload(WorkloadSpec(topology, 3), repeats=1)
    assert len(result.times_s) == 1
    assert result.plans_considered > 0
    assert result.entries_stored > 0
    payload = result.as_json()
    assert payload["name"] == f"{topology}-3"
    assert payload["mean_ms"] > 0.0


def test_run_bench_report_shape():
    report = run_bench(
        default_workloads(topologies=("chain",), sizes=(2,)),
        repeats=1,
        echo=lambda text: None,
    )
    assert report["version"] == 1
    assert [w["name"] for w in report["workloads"]] == ["chain-2"]
    assert report["summary"]["total_mean_ms"] > 0.0
    json.dumps(report)  # must be JSON-serializable as-is


def test_compare_reports_speedups():
    old = {
        "workloads": [
            {"name": "chain-10", "relations": 10, "mean_ms": 40.0,
             "plans_considered": 100},
            {"name": "star-4", "relations": 4, "mean_ms": 10.0,
             "plans_considered": 50},
        ]
    }
    new = {
        "workloads": [
            {"name": "chain-10", "relations": 10, "mean_ms": 10.0,
             "plans_considered": 100},
            {"name": "star-4", "relations": 4, "mean_ms": 20.0,
             "plans_considered": 50},
        ]
    }
    comparison = compare_reports(old, new, echo=lambda text: None)
    by_name = {row["name"]: row for row in comparison["workloads"]}
    assert by_name["chain-10"]["speedup"] == 4.0
    assert by_name["star-4"]["speedup"] == 0.5
    assert comparison["speedup_at_10_relations"] == 4.0
    assert comparison["regressions"] == ["star-4"]
    assert abs(comparison["geomean_speedup"] - 2.0 ** 0.5) < 1e-3


def test_compare_reports_requires_overlap():
    with pytest.raises(ValueError):
        compare_reports(
            {"workloads": []}, {"workloads": []}, echo=lambda text: None
        )


def test_cli_writes_report_and_comparison(tmp_path, capsys):
    first = tmp_path / "old.json"
    second = tmp_path / "new.json"
    assert (
        main(
            ["--topologies", "chain", "--sizes", "2", "--repeats", "1",
             "--output", str(first)]
        )
        == 0
    )
    report = load_report(first)
    assert report["workloads"][0]["name"] == "chain-2"
    assert (
        main(
            ["--topologies", "chain", "--sizes", "2", "--repeats", "1",
             "--output", str(second), "--compare", str(first)]
        )
        == 0
    )
    merged = load_report(second)
    assert "comparison" in merged
    assert merged["comparison"]["workloads"][0]["name"] == "chain-2"
    capsys.readouterr()


def test_load_report_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text("{}", encoding="utf-8")
    with pytest.raises(ValueError):
        load_report(path)
