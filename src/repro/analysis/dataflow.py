"""Whole-program symbol table and call graph over ``src/repro``.

The per-rule lints in :mod:`repro.analysis.lint` see one module at a time;
the concurrency questions the ROADMAP's parallelism items raise — *who can
reach this cache? which functions mutate that attribute?* — need the whole
program.  This module parses every module of the package once and builds:

- a **symbol table**: every module, class, top-level function, and method,
  plus every module-level assignment (with a mutability judgement on the
  assigned value);
- a **call graph**: resolved edges from each function to the functions and
  methods it calls *or references* (a function passed as a callback is an
  edge too — the builder cannot know it is never invoked);
- **mutation records**: every site where a function assigns or mutates a
  module-level name, a ``self`` attribute, a parameter's attribute, or an
  attribute of some object it did not create locally.

Resolution is deliberately an *over*-approximation: an attribute call
``x.batches()`` links to every ``batches`` method in the package, because
for effect propagation and reachability a false edge is safe and a missing
edge is not.  Locally-created values (a list built in the function, an
object instantiated and never escaping through ``self`` or a global) are
tracked so their mutation does not count — mutating what you just made is
not a side effect.

The dead-code pass rides on the same graph: a function nobody references —
starting from the entry modules (``cli.py``, ``__main__.py``,
``database.py``), the test and benchmark trees, dunder protocol methods,
and ``# repro: keep`` annotations — is reported for deletion.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .plan_check import Violation

#: Constructor names whose results are definitely mutable containers.
MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: Method names that mutate their receiver (containers and friends).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

#: AST node types whose value is a mutable container literal.
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


# ---------------------------------------------------------------------------
# symbol table records
# ---------------------------------------------------------------------------


@dataclass
class GlobalVar:
    """One module-level assignment."""

    module: str
    name: str
    lineno: int
    #: "container" (list/dict/set literal or constructor), "instance" (a
    #: call to a package class), or "other" (constants, Structs, ...).
    kind: str

    @property
    def key(self) -> str:
        """Stable report key, e.g. ``engine/evaluator.py::_LIKE_CACHE``."""
        return f"{self.module}::{self.name}"


@dataclass
class ClassInfo:
    """One class definition with its attribute inventory."""

    module: str
    name: str
    lineno: int
    bases: list[str]
    methods: dict[str, "FunctionInfo"] = field(default_factory=dict)
    #: Attributes declared in the class body (annotations, dataclass
    #: fields) or assigned on ``self``, mapped to first-seen line.
    attrs: dict[str, int] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}::{self.name}"


@dataclass
class FunctionInfo:
    """One top-level function or method (nested defs fold into it)."""

    module: str
    name: str
    lineno: int
    klass: str | None = None
    node: ast.AST | None = field(default=None, repr=False)
    params: tuple[str, ...] = ()
    decorators: tuple[str, ...] = ()
    #: Whether the def line (or the line above) carries ``# repro: keep``.
    keep: bool = False

    @property
    def qualname(self) -> str:
        if self.klass:
            return f"{self.module}::{self.klass}.{self.name}"
        return f"{self.module}::{self.name}"


@dataclass(frozen=True)
class Mutation:
    """One site where a function mutates state it did not create."""

    #: "global" / "global-attr" / "self-attr" / "param-attr" / "unknown-attr"
    kind: str
    #: The mutated name: a module-level variable for "global", an
    #: attribute name for the ``*-attr`` kinds.
    target: str
    lineno: int
    #: Extra context: the global's module, the parameter's name, ...
    detail: str = ""


@dataclass
class ModuleInfo:
    """One parsed module of the package."""

    relpath: str
    tree: ast.Module = field(repr=False)
    #: local name -> "module.symbol" or "module" (resolved within root).
    imports: dict[str, str] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    source_lines: list[str] = field(default_factory=list, repr=False)


# ---------------------------------------------------------------------------
# the program graph
# ---------------------------------------------------------------------------


class ProgramGraph:
    """Symbol table + call graph for one package tree."""

    def __init__(self, root: Path):
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo for every function and method.
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> [ClassInfo] (names may repeat across modules).
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: method name -> {qualnames} across all classes.
        self.methods_by_name: dict[str, set[str]] = {}
        #: top-level function name -> {qualnames} across modules.
        self.functions_by_name: dict[str, set[str]] = {}
        #: resolved edges: caller qualname -> set of callee qualnames.
        self.calls: dict[str, set[str]] = {}
        #: qualname -> mutation records found in its body.
        self.mutations: dict[str, list[Mutation]] = {}
        #: module relpath -> names referenced at module level (registration
        #: code outside any function roots reachability).
        self.module_level_refs: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, root: Path | None = None) -> "ProgramGraph":
        """Parse every module under ``root`` and resolve the call graph."""
        if root is None:
            root = Path(__file__).resolve().parent.parent
        graph = cls(root)
        for path in sorted(root.rglob("*.py")):
            graph._parse_module(path)
        graph._index_symbols()
        for module in graph.modules.values():
            graph._analyze_module(module)
        return graph

    def _parse_module(self, path: Path) -> None:
        relpath = path.relative_to(self.root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return  # the lint reports syntax errors; skip here
        module = ModuleInfo(
            relpath=relpath, tree=tree, source_lines=source.splitlines()
        )
        self.modules[relpath] = module
        for node in tree.body:
            self._collect_toplevel(module, node)
        # Imports inside function bodies (the lazy-import idiom used to
        # break cycles) resolve the same as top-level ones; without them
        # the call graph loses whole subsystems (e.g. the fused drivers,
        # which executor.py imports lazily).
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    module.imports.setdefault(local, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(relpath, node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    module.imports.setdefault(
                        local, f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_toplevel(self, module: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = self._import_base(module.relpath, node)
            for alias in node.names:
                local = alias.asname or alias.name
                module.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = self._function_info(
                module, node, klass=None
            )
        elif isinstance(node, ast.ClassDef):
            self._collect_class(module, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._collect_global(module, node)

    def _function_info(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        klass: str | None,
    ) -> FunctionInfo:
        args = node.args
        params = tuple(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        decorators = tuple(
            _attr_or_name(d) or "" for d in node.decorator_list
        )
        return FunctionInfo(
            module=module.relpath,
            name=node.name,
            lineno=node.lineno,
            klass=klass,
            node=node,
            params=params,
            decorators=decorators,
            keep=_keep_annotated(module.source_lines, node.lineno),
        )

    def _collect_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        info = ClassInfo(
            module=module.relpath,
            name=node.name,
            lineno=node.lineno,
            bases=[name for name in map(_attr_or_name, node.bases) if name],
        )
        module.classes[node.name] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._function_info(
                    module, stmt, klass=node.name
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attrs.setdefault(stmt.target.id, stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.attrs.setdefault(target.id, stmt.lineno)

    def _collect_global(
        self, module: ModuleInfo, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if value is None:
            return
        kind = self._value_kind(module, value)
        for target in targets:
            if isinstance(target, ast.Name):
                module.globals[target.id] = GlobalVar(
                    module=module.relpath,
                    name=target.id,
                    lineno=node.lineno,
                    kind=kind,
                )

    def _value_kind(self, module: ModuleInfo, value: ast.expr) -> str:
        if isinstance(value, _MUTABLE_LITERALS):
            return "container"
        if isinstance(value, ast.Call):
            name = _attr_or_name(value.func)
            if name is None:
                return "other"
            tail = name.split(".")[-1]
            if tail in MUTABLE_CALLS:
                return "container"
            # A call to a class defined in this package builds a shared
            # instance; anything else (struct.Struct, re.compile,
            # register_point, frozenset) is treated as inert unless some
            # function later mutates the name.
            if tail in module.classes or tail[:1].isupper():
                return "instance"
        return "other"

    @staticmethod
    def _import_base(relpath: str, node: ast.ImportFrom) -> str:
        """Dotted module path of a from-import, package-relative."""
        if node.level == 0:
            name = node.module or ""
            # absolute imports of the package itself: strip the package name
            parts = name.split(".")
            return ".".join(parts[1:]) if len(parts) > 1 else ""
        package_dir = Path(relpath).parent
        for __ in range(node.level - 1):
            package_dir = package_dir.parent
        base = ".".join(p for p in package_dir.as_posix().split("/") if p != ".")
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    # -- symbol indexing ---------------------------------------------------

    def _index_symbols(self) -> None:
        for module in self.modules.values():
            for func in module.functions.values():
                self.functions[func.qualname] = func
                self.functions_by_name.setdefault(func.name, set()).add(
                    func.qualname
                )
            for klass in module.classes.values():
                self.classes_by_name.setdefault(klass.name, []).append(klass)
                for method in klass.methods.values():
                    self.functions[method.qualname] = method
                    self.methods_by_name.setdefault(method.name, set()).add(
                        method.qualname
                    )
        # `self.attr = ...` assignments also declare class attributes.
        for module in self.modules.values():
            for klass in module.classes.values():
                for method in klass.methods.values():
                    assert method.node is not None
                    for node in ast.walk(method.node):
                        if (
                            isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                        ):
                            targets = (
                                node.targets
                                if isinstance(node, ast.Assign)
                                else [node.target]
                            )
                            for target in targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    klass.attrs.setdefault(
                                        target.attr, node.lineno
                                    )

    # -- per-function analysis ---------------------------------------------

    def _analyze_module(self, module: ModuleInfo) -> None:
        refs: set[str] = set()
        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for sub in ast.walk(node):
                name = _ref_name(sub)
                if name:
                    refs.add(name)
        self.module_level_refs[module.relpath] = refs
        for func in module.functions.values():
            self._analyze_function(module, func)
        for klass in module.classes.values():
            for method in klass.methods.values():
                self._analyze_function(module, method)

    def _analyze_function(self, module: ModuleInfo, func: FunctionInfo) -> None:
        assert func.node is not None
        analyzer = _BodyAnalyzer(self, module, func)
        analyzer.run()
        self.calls[func.qualname] = analyzer.edges
        self.mutations[func.qualname] = analyzer.mutations

    # -- queries -----------------------------------------------------------

    def resolve_call(
        self, module: ModuleInfo, func: FunctionInfo, name: str, is_attr: bool
    ) -> set[str]:
        """Possible targets of calling (or referencing) ``name``."""
        targets: set[str] = set()
        if not is_attr:
            if name in module.functions:
                targets.add(module.functions[name].qualname)
                return targets
            if name in module.classes:
                klass = module.classes[name]
                init = klass.methods.get("__init__")
                if init is not None:
                    targets.add(init.qualname)
                return targets
            imported = module.imports.get(name)
            if imported is not None:
                return self._resolve_imported(imported)
            return targets
        # attribute call/reference: over-approximate by bare name.
        targets |= self.methods_by_name.get(name, set())
        targets |= self.functions_by_name.get(name, set())
        return targets

    def _resolve_imported(self, dotted: str) -> set[str]:
        """Resolve ``pkg.module.symbol`` (package-relative) to qualnames."""
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            module_path = "/".join(parts[:split]) + ".py"
            module = self.modules.get(module_path)
            if module is None:
                module = self.modules.get(
                    "/".join(parts[:split]) + "/__init__.py"
                )
            if module is None:
                continue
            remainder = parts[split:]
            if not remainder:
                return set()
            symbol = remainder[0]
            if symbol in module.functions:
                return {module.functions[symbol].qualname}
            if symbol in module.classes:
                klass = module.classes[symbol]
                init = klass.methods.get("__init__")
                return {init.qualname} if init is not None else set()
            # re-exported through __init__: fall through to name match.
            return self.functions_by_name.get(symbol, set()) | self.methods_by_name.get(symbol, set())
        return set()

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure over call/reference edges."""
        seen: set[str] = set()
        stack = [q for q in roots if q in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            stack.extend(self.calls.get(qualname, ()))
        return seen

    def class_of(self, module: str, name: str) -> ClassInfo | None:
        """The class ``name`` defined in ``module``, if any."""
        info = self.modules.get(module)
        if info is None:
            return None
        return info.classes.get(name)

    def classes_declaring(self, attr: str) -> list[ClassInfo]:
        """Every class that declares attribute ``attr``."""
        return [
            klass
            for classes in self.classes_by_name.values()
            for klass in classes
            if attr in klass.attrs
        ]


# ---------------------------------------------------------------------------
# body analysis: edges, mutations, local-origin tracking
# ---------------------------------------------------------------------------


#: Origin descriptors for local names (flow-insensitive, last-write-wins
#: would need ordering; first-write-wins is fine for this codebase's style).
_FRESH = ("fresh",)


class _BodyAnalyzer:
    """Single pass over one function body (nested defs included)."""

    def __init__(
        self, graph: ProgramGraph, module: ModuleInfo, func: FunctionInfo
    ):
        self.graph = graph
        self.module = module
        self.func = func
        self.edges: set[str] = set()
        self.mutations: list[Mutation] = []
        #: local name -> origin tuple:
        #: ("fresh",) | ("param", name) | ("self-attr", attr)
        #: | ("global", name) | ("param-attr", param, attr)
        self.origins: dict[str, tuple] = {}
        self.declared_globals: set[str] = set()

    def run(self) -> None:
        node = self.func.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for param in self.func.params:
            self.origins[param] = ("param", param)
        # First pass: origins and `global` declarations, in source order.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.declared_globals.update(sub.names)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        self._record_origin(target.id, sub.value)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name):
                    self._record_origin(sub.target.id, sub.value)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name in _bound_names(sub.target):
                    self.origins.setdefault(name, _FRESH)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                for name in _bound_names(sub.optional_vars):
                    self.origins.setdefault(name, _FRESH)
            elif isinstance(sub, ast.comprehension):
                for name in _bound_names(sub.target):
                    self.origins.setdefault(name, _FRESH)
        # Second pass: edges and mutations.
        for sub in ast.walk(node):
            self._visit(sub)

    # -- origins -----------------------------------------------------------

    def _record_origin(self, name: str, value: ast.expr) -> None:
        if name in self.origins:
            return  # first write wins
        self.origins[name] = self._origin_of(value)

    def _origin_of(self, value: ast.expr) -> tuple:
        if isinstance(value, ast.Name):
            if value.id in self.origins:
                return self.origins[value.id]
            if value.id in self.module.globals:
                return ("global", value.id)
            return _FRESH
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            base = value.value.id
            if base == "self":
                return ("self-attr", value.attr)
            base_origin = self.origins.get(base)
            if base_origin is not None and base_origin[0] == "param":
                return ("param-attr", base_origin[1], value.attr)
            if base in self.module.globals:
                return ("global", base)
        return _FRESH

    # -- visiting ----------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._visit_store(target, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_store(target, node.lineno)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            # bare reference to a function: callback registration edge.
            self.edges.update(
                self.graph.resolve_call(self.module, self.func, node.id, False)
            )

    def _visit_call(self, node: ast.Call) -> None:
        callee = node.func
        if isinstance(callee, ast.Name):
            self.edges.update(
                self.graph.resolve_call(self.module, self.func, callee.id, False)
            )
        elif isinstance(callee, ast.Attribute):
            self.edges.update(
                self.graph.resolve_call(
                    self.module, self.func, callee.attr, True
                )
            )
            if callee.attr in MUTATOR_METHODS:
                self._mutation_through(callee.value, node.lineno, callee.attr)
        # A bound method passed as a call argument is a callback
        # registration edge, like the bare-Name case below.
        for value in [*node.args, *(kw.value for kw in node.keywords)]:
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                self.edges.update(
                    self.graph.resolve_call(
                        self.module, self.func, value.attr, True
                    )
                )

    def _visit_store(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if (
                target.id in self.declared_globals
                and target.id in self.module.globals
            ):
                self.mutations.append(
                    Mutation("global", target.id, lineno, self.module.relpath)
                )
            return
        if isinstance(target, ast.Subscript):
            self._mutation_through(target.value, lineno, "[]=")
            return
        if isinstance(target, ast.Attribute):
            self._attr_store(target, lineno)

    def _attr_store(self, target: ast.Attribute, lineno: int) -> None:
        base = target.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                self.mutations.append(
                    Mutation(
                        "self-attr",
                        target.attr,
                        lineno,
                        self.func.klass or "",
                    )
                )
                return
            origin = self.origins.get(base.id)
            if origin is None and base.id in self.module.globals:
                origin = ("global", base.id)
            self._attr_mutation_from_origin(origin, target.attr, lineno)
            return
        # self.x.y = ... — mutation through a self attribute.
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            self.mutations.append(
                Mutation("self-attr", base.attr, lineno, self.func.klass or "")
            )

    def _mutation_through(
        self, base: ast.expr, lineno: int, how: str
    ) -> None:
        """A mutating operation reached through expression ``base``."""
        if isinstance(base, ast.Name):
            origin = self.origins.get(base.id)
            if origin is None and base.id in self.module.globals:
                origin = ("global", base.id)
            self._attr_mutation_from_origin(origin, how, lineno, base.id)
            return
        if isinstance(base, ast.Attribute):
            inner = base.value
            if isinstance(inner, ast.Name):
                if inner.id == "self":
                    self.mutations.append(
                        Mutation(
                            "self-attr",
                            base.attr,
                            lineno,
                            self.func.klass or "",
                        )
                    )
                    return
                origin = self.origins.get(inner.id)
                if origin is None and inner.id in self.module.globals:
                    origin = ("global", inner.id)
                if origin is not None and origin[0] == "global":
                    self.mutations.append(
                        Mutation(
                            "global-attr", origin[1], lineno, base.attr
                        )
                    )
                    return
                if origin is not None and origin[0] == "param":
                    self.mutations.append(
                        Mutation("param-attr", base.attr, lineno, origin[1])
                    )
                    return
                if origin is not None and origin[0] == "self-attr":
                    self.mutations.append(
                        Mutation(
                            "self-attr",
                            origin[1],
                            lineno,
                            self.func.klass or "",
                        )
                    )
                    return
                if origin is None or origin[0] != "fresh":
                    self.mutations.append(
                        Mutation("unknown-attr", base.attr, lineno)
                    )

    def _attr_mutation_from_origin(
        self,
        origin: tuple | None,
        attr: str,
        lineno: int,
        base_name: str = "",
    ) -> None:
        if origin is None:
            self.mutations.append(Mutation("unknown-attr", attr, lineno))
            return
        kind = origin[0]
        if kind == "fresh":
            return  # mutating what this function created: not a side effect
        if kind == "global":
            self.mutations.append(
                Mutation("global", origin[1], lineno, self.module.relpath)
            )
        elif kind == "param":
            self.mutations.append(
                Mutation("param-attr", attr, lineno, origin[1])
            )
        elif kind == "self-attr":
            self.mutations.append(
                Mutation("self-attr", origin[1], lineno, self.func.klass or "")
            )
        elif kind == "param-attr":
            self.mutations.append(
                Mutation("param-attr", origin[2], lineno, origin[1])
            )


# ---------------------------------------------------------------------------
# dead code
# ---------------------------------------------------------------------------

#: Functions that are entry points by convention, never dead.
_ENTRY_MODULES = ("cli.py", "__main__.py", "database.py")

#: Decorators that imply external invocation (properties are read as
#: attributes; fixtures/parametrize are called by pytest).
_LIVE_DECORATORS = frozenset(
    {"property", "setter", "getter", "deleter", "cached_property", "fixture",
     "contextmanager", "classmethod", "staticmethod", "abstractmethod"}
)


def find_dead_code(
    graph: ProgramGraph, consumer_roots: Iterable[Path] = ()
) -> list[Violation]:
    """Functions unreachable from the entry points and external consumers.

    ``consumer_roots`` are directories outside the package (tests,
    benchmarks, examples) whose name references keep package functions
    alive.  A bare-name match is enough: the graph cannot see how pytest
    or a benchmark harness calls in, so it errs on keeping things.
    """
    external_names: set[str] = set()
    for root in consumer_roots:
        for path in sorted(Path(root).rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                name = _ref_name(node)
                if name:
                    external_names.add(name)

    roots: list[str] = []
    for qualname, func in graph.functions.items():
        if func.module in _ENTRY_MODULES or func.module.startswith("perf/"):
            roots.append(qualname)
        elif func.name in external_names:
            roots.append(qualname)
        elif func.name.startswith("__") and func.name.endswith("__"):
            roots.append(qualname)
        elif func.keep:
            roots.append(qualname)
        elif any(d.split(".")[-1] in _LIVE_DECORATORS for d in func.decorators):
            roots.append(qualname)
    # Module-level registration code (fault-point tables, __all__ wiring)
    # roots whatever it references.
    for relpath, refs in graph.module_level_refs.items():
        for name in refs:
            roots.extend(graph.functions_by_name.get(name, ()))
            roots.extend(graph.methods_by_name.get(name, ()))

    live = graph.reachable(roots)
    violations: list[Violation] = []
    for qualname, func in sorted(graph.functions.items()):
        if qualname in live:
            continue
        violations.append(
            Violation(
                "dead-code",
                f"{func.module}:{func.lineno}",
                f"{_display(func)} is unreachable from cli.py, database.py, "
                "the test/benchmark trees, and registered walkers; delete it "
                "or annotate the def with '# repro: keep'",
            )
        )
    return violations


def _display(func: FunctionInfo) -> str:
    if func.klass:
        return f"method {func.klass}.{func.name}"
    return f"function {func.name}"


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _attr_or_name(node: ast.expr) -> str | None:
    """Dotted name of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _ref_name(node: ast.AST) -> str | None:
    """The bare name a Load reference or attribute access points at."""
    if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
        return node.attr
    return None


def _bound_names(target: ast.expr) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _keep_annotated(source_lines: list[str], lineno: int) -> bool:
    """Whether the def line or the line above says ``# repro: keep``."""
    for line_index in (lineno - 1, lineno - 2):
        if 0 <= line_index < len(source_lines):
            if "# repro: keep" in source_lines[line_index]:
                return True
    return False
