"""RSI scans: the tuple-at-a-time interface onto stored relations.

Two scan types exist, exactly as in Section 3:

- :class:`SegmentScan` examines **all** non-empty pages of a segment (tuples
  of other relations sharing the segment still cost page touches) and
  returns tuples of the requested relation that satisfy the SARGs.
- :class:`IndexScan` walks B-tree leaf pages between optional start and stop
  keys, fetching each referenced data page to return tuples in key order.

Both are iterators; each yielded tuple counts as one RSI call.  Tuples
rejected by SARGs are filtered below the interface and are *not* counted —
this is the CPU saving that makes RSICARD (not QCARD or NCARD) the right
multiplier for the W term of the cost formulas.
"""

from __future__ import annotations

from typing import Iterator

from ..datatypes import DataType
from .btree import BTree
from .buffer import BufferPool
from .counters import CostCounters
from .page import Page, TupleId
from .sargs import Sargs
from .segment import Segment
from .tuples import decode_tuple, record_relation_id


class SegmentScan:
    """Scan every page of a segment for tuples of one relation."""

    def __init__(
        self,
        segment: Segment,
        relation_id: int,
        datatypes: list[DataType],
        buffer: BufferPool,
        counters: CostCounters,
        sargs: Sargs | None = None,
    ):
        self._segment = segment
        self._relation_id = relation_id
        self._datatypes = datatypes
        self._buffer = buffer
        self._counters = counters
        self._sargs = sargs or Sargs()

    def __iter__(self) -> Iterator[tuple[TupleId, tuple]]:
        for page_id in list(self._segment.page_ids):
            page = self._buffer.fetch(page_id)
            assert isinstance(page, Page)
            for slot, record in page.records():
                if record_relation_id(record) != self._relation_id:
                    continue
                values = decode_tuple(record, self._datatypes)
                if not self._sargs.matches(values):
                    continue
                self._counters.rsi_calls += 1
                yield TupleId(page_id, slot), values


class IndexScan:
    """Scan a relation through a B-tree index, optionally over a key range.

    ``low``/``high`` are prefixes of the index key.  The scan touches index
    leaf pages once each; data pages are fetched per matching entry, so a
    non-clustered index may fetch the same data page repeatedly (buffer
    permitting) — the behaviour Table 2's NCARD-vs-TCARD split models.
    """

    def __init__(
        self,
        index: BTree,
        segment: Segment,
        relation_id: int,
        datatypes: list[DataType],
        buffer: BufferPool,
        counters: CostCounters,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        sargs: Sargs | None = None,
    ):
        self._index = index
        self._segment = segment
        self._relation_id = relation_id
        self._datatypes = datatypes
        self._buffer = buffer
        self._counters = counters
        self._low = low
        self._high = high
        self._low_inclusive = low_inclusive
        self._high_inclusive = high_inclusive
        self._sargs = sargs or Sargs()

    def __iter__(self) -> Iterator[tuple[TupleId, tuple]]:
        entries = self._index.scan_range(
            self._low, self._high, self._low_inclusive, self._high_inclusive
        )
        for __, tid in entries:
            page = self._buffer.fetch(tid.page_id)
            assert isinstance(page, Page)
            record = page.read(tid.slot)
            values = decode_tuple(record, self._datatypes)
            if not self._sargs.matches(values):
                continue
            self._counters.rsi_calls += 1
            yield tid, values
