"""Search arguments (SARGs) evaluated below the RSI.

A *sargable* predicate has the form ``column comparison-operator value``.
SARGs are a boolean expression of such predicates in disjunctive normal
form: an OR of AND-groups (Section 3).  Scans apply SARGs to a tuple before
returning it, so tuples rejected by a SARG cost a page visit but **not** an
RSI call — that asymmetry is why the optimizer's RSICARD counts only tuples
surviving the sargable boolean factors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from ..datatypes import DataType, TypeKind, compare_values

#: A compiled SARG matcher: tuple values in, keep/reject out.
TupleMatcher = Callable[[tuple], bool]


class CompareOp(enum.Enum):
    """Comparison operators usable in a simple predicate."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: object, right: object) -> bool:
        """Apply this operator; NULL on either side yields False (unknown)."""
        ordering = compare_values(left, right)
        if ordering is None:
            return False
        if self is CompareOp.EQ:
            return ordering == 0
        if self is CompareOp.NE:
            return ordering != 0
        if self is CompareOp.LT:
            return ordering < 0
        if self is CompareOp.LE:
            return ordering <= 0
        if self is CompareOp.GT:
            return ordering > 0
        return ordering >= 0

    def flipped(self) -> "CompareOp":
        """The operator with operands swapped (``5 < x`` becomes ``x > 5``)."""
        return _FLIPPED[self]

    def negated(self) -> "CompareOp":
        """The complementary operator (NOT (a < b) is a >= b)."""
        return _NEGATED[self]


_FLIPPED = {
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
}

_NEGATED = {
    CompareOp.EQ: CompareOp.NE,
    CompareOp.NE: CompareOp.EQ,
    CompareOp.LT: CompareOp.GE,
    CompareOp.LE: CompareOp.GT,
    CompareOp.GT: CompareOp.LE,
    CompareOp.GE: CompareOp.LT,
}


@dataclass(frozen=True)
class SargPredicate:
    """One simple predicate: ``values[column_position] op value``."""

    column_position: int
    op: CompareOp
    value: object

    def matches(self, values: tuple) -> bool:
        """Whether a tuple's values satisfy this expression."""
        return self.op.evaluate(values[self.column_position], self.value)

    def __str__(self) -> str:
        return f"col{self.column_position} {self.op.value} {self.value!r}"


class Sargs:
    """A DNF search-argument expression: OR of AND-groups of simple predicates.

    An empty expression (no groups) matches everything, so scans can always
    carry a ``Sargs`` instance.
    """

    def __init__(self, groups: list[list[SargPredicate]] | None = None):
        self.groups = groups or []

    @classmethod
    def conjunction(cls, predicates: list[SargPredicate]) -> "Sargs":
        """A single AND-group (the common case: conjunctive boolean factors)."""
        return cls([list(predicates)]) if predicates else cls()

    def matches(self, values: tuple) -> bool:
        """Whether a tuple's values satisfy this expression."""
        if not self.groups:
            return True
        return any(
            all(predicate.matches(values) for predicate in group)
            for group in self.groups
        )

    def is_empty(self) -> bool:
        """True when nothing is stored here."""
        return not self.groups

    def __str__(self) -> str:
        if not self.groups:
            return "<always>"
        rendered = [
            " AND ".join(str(predicate) for predicate in group)
            for group in self.groups
        ]
        return " OR ".join(f"({clause})" for clause in rendered)


class ConjunctiveSargs:
    """An AND of independent DNF SARG expressions.

    Each sargable boolean factor of a query block lowers to one
    :class:`Sargs` expression; the scan applies their conjunction.  Keeping
    the factors separate preserves the paper's factor-level selectivity
    accounting while still evaluating below the RSI.
    """

    def __init__(self, parts: list[Sargs]):
        self.parts = parts

    def matches(self, values: tuple) -> bool:
        return all(part.matches(values) for part in self.parts)

    def is_empty(self) -> bool:
        return all(part.is_empty() for part in self.parts)


# ---------------------------------------------------------------------------
# compiled matchers
# ---------------------------------------------------------------------------
#
# ``SargPredicate.matches`` pays enum dispatch plus a three-way compare per
# tuple.  A compiled matcher binds the operator and comparison value into a
# plain closure once per scan open; when the column's type family is known
# and the value belongs to it, the closure uses raw ``<`` orderings (the
# exact decomposition of ``compare_values``, NaN included).  NULL column
# values never match, and a NULL comparison value rejects every tuple —
# both identical to ``CompareOp.evaluate``.


def type_family(datatype: DataType) -> str:
    """The comparison family of a column type: ``"num"`` or ``"str"``."""
    return "num" if datatype.kind is not TypeKind.VARCHAR else "str"


def _value_family(value: object) -> str | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _reject_all(values: tuple) -> bool:
    return False


def _fast_eq(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and not (x < value or value < x)

    return pred


def _fast_ne(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and bool(x < value or value < x)

    return pred


def _fast_lt(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and x < value

    return pred


def _fast_le(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and not (value < x)

    return pred


def _fast_gt(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and value < x

    return pred


def _fast_ge(position: int, value: object) -> TupleMatcher:
    def pred(values: tuple) -> bool:
        x = values[position]
        return x is not None and not (x < value)

    return pred


_FAST_PREDS = {
    CompareOp.EQ: _fast_eq,
    CompareOp.NE: _fast_ne,
    CompareOp.LT: _fast_lt,
    CompareOp.LE: _fast_le,
    CompareOp.GT: _fast_gt,
    CompareOp.GE: _fast_ge,
}


def predicate_factory(
    position: int, op: CompareOp, column_family: str | None = None
) -> Callable[[object], TupleMatcher]:
    """A per-scan-open factory binding a comparison value into a matcher.

    The type dispatch happens here, once per plan node; the returned
    ``make(value)`` is called at scan open (probe values change per open)
    and only picks between the prebuilt fast and reference forms.
    """
    fast = _FAST_PREDS[op]

    def make(value: object) -> TupleMatcher:
        if value is None:
            return _reject_all
        if column_family is not None and _value_family(value) == column_family:
            return fast(position, value)

        def pred(values: tuple) -> bool:
            return op.evaluate(values[position], value)

        return pred

    return make


def dnf_matcher(groups: list[list[TupleMatcher]]) -> TupleMatcher | None:
    """Combine per-predicate matchers into one DNF matcher (OR of ANDs).

    Returns ``None`` for an empty expression (matches everything) — and an
    empty AND-group is vacuously true, which makes the whole disjunction
    vacuously true as well.
    """
    if not groups or any(not group for group in groups):
        return None
    if len(groups) == 1:
        predicates = tuple(groups[0])
        if len(predicates) == 1:
            return predicates[0]

        def conj(values: tuple, _preds=predicates) -> bool:
            for pred in _preds:
                if not pred(values):
                    return False
            return True

        return conj
    compiled_groups = tuple(tuple(group) for group in groups)

    def dnf(values: tuple, _groups=compiled_groups) -> bool:
        for group in _groups:
            for pred in group:
                if not pred(values):
                    break
            else:
                return True
        return False

    return dnf


def and_matcher(parts: Iterable[TupleMatcher | None]) -> TupleMatcher | None:
    """Conjoin part matchers (one per sargable factor); ``None`` parts drop."""
    kept = [part for part in parts if part is not None]
    if not kept:
        return None
    if len(kept) == 1:
        return kept[0]
    compiled = tuple(kept)

    def conj(values: tuple, _parts=compiled) -> bool:
        for part in _parts:
            if not part(values):
                return False
        return True

    return conj


def compile_matcher(
    sargs: "Sargs | ConjunctiveSargs | None",
    datatypes: list[DataType] | None = None,
) -> TupleMatcher | None:
    """Compile an existing SARG expression into a closure matcher.

    Equivalent to ``sargs.matches`` (gated differentially in
    ``tests/test_rss_scans.py``); ``datatypes`` enables the typed fast
    path per column.
    """
    if sargs is None or sargs.is_empty():
        return None
    if isinstance(sargs, ConjunctiveSargs):
        return and_matcher(compile_matcher(part, datatypes) for part in sargs.parts)
    groups: list[list[TupleMatcher]] = []
    for group in sargs.groups:
        compiled_group: list[TupleMatcher] = []
        for predicate in group:
            family = None
            if datatypes is not None:
                family = type_family(datatypes[predicate.column_position])
            make = predicate_factory(predicate.column_position, predicate.op, family)
            compiled_group.append(make(predicate.value))
        groups.append(compiled_group)
    return dnf_matcher(groups)
