"""The "disk": an allocator and owner of all pages in the system.

Data pages are :class:`~repro.rss.page.Page` objects backed by real bytes.
B-tree node pages are structured objects (see :mod:`repro.rss.btree`) that
occupy the same page-id space, so the buffer pool accounts for index page
fetches and data page fetches uniformly — exactly the two page populations
the paper's cost formulas distinguish (``NINDX`` vs ``TCARD``).
"""

from __future__ import annotations

from ..errors import StorageError
from .page import Page


class PageStore:
    """Allocates page ids and owns page contents.

    All reads must go through a :class:`~repro.rss.buffer.BufferPool`, which
    is what makes page fetches countable; the store itself never counts.
    """

    def __init__(self) -> None:
        self._pages: dict[int, object] = {}
        self._next_id = 1

    def allocate_data_page(self) -> Page:
        """Create and register a fresh empty data page."""
        page = Page(self._next_id)
        self._pages[self._next_id] = page
        self._next_id += 1
        return page

    def allocate_node_page(self, node: object) -> int:
        """Register a B-tree node as a page; returns its page id."""
        page_id = self._next_id
        self._pages[page_id] = node
        self._next_id += 1
        return page_id

    def get(self, page_id: int) -> object:
        """The page object for an id; raises on unknown pages."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"no such page {page_id}") from None

    def free(self, page_id: int) -> None:
        """Release a page id (idempotent)."""
        self._pages.pop(page_id, None)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)
