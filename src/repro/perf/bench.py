"""``repro bench`` — time access path selection, not query execution.

Each workload is a generated schema (chain, star, or clique topology; see
:mod:`repro.workloads.generator`) plus its natural join query over 2-12
relations.  The harness builds the database once, then repeatedly plans
the query with a fresh optimizer — the same per-statement lifecycle
``Database.execute`` uses — and records wall-clock together with the
DP's own :class:`~repro.optimizer.joins.SearchStats`, so a slowdown can
be attributed either to doing more work (more plans considered) or to
doing the same work slower (a fatter constant factor).

Results are written to ``BENCH_optimizer.json`` (machine readable, stable
key order); ``--compare old.json`` reports per-workload and aggregate
speedups against an earlier run.  Static plan verification is disabled
during timing — ``REPRO_CHECK=1`` correctness runs live in the test
suite, not the stopwatch.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..database import Database
from ..optimizer.planner import Optimizer
from ..sql import ast, parse_statement
from ..workloads.generator import (
    TableSpec,
    build_database,
    chain_join_query,
    clique_join_query,
    random_chain_spec,
    random_clique_spec,
    random_star_spec,
    star_join_query,
)

#: Bump when the JSON schema changes shape.
REPORT_VERSION = 1

DEFAULT_OUTPUT = "BENCH_optimizer.json"

#: Relation counts per topology for the full run.  Cliques stop at 10:
#: every pair is joined, so the heuristic never prunes and the DP visits
#: all 2^n subsets — the n=12 clique alone would dwarf the whole suite.
FULL_SIZES: dict[str, tuple[int, ...]] = {
    "chain": (2, 3, 4, 6, 8, 10, 12),
    "star": (2, 3, 4, 6, 8, 10, 12),
    "clique": (2, 3, 4, 6, 8, 10),
}

#: The CI smoke subset (`--quick`): one small size per topology plus one
#: mid-size chain, sized to finish within a tight wall-clock budget.
QUICK_SIZES: dict[str, tuple[int, ...]] = {
    "chain": (3, 6),
    "star": (4,),
    "clique": (4,),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One named benchmark point: a topology at a relation count."""

    topology: str
    relations: int
    seed: int = 97

    @property
    def name(self) -> str:
        return f"{self.topology}-{self.relations}"

    def build(self) -> tuple[Database, str]:
        """Materialize the schema and return (database, join SQL)."""
        rng = random.Random(self.seed * 1000 + self.relations)
        tables: list[TableSpec]
        if self.topology == "chain":
            tables = random_chain_spec(
                self.relations, rng, min_rows=40, max_rows=400
            )
            sql = chain_join_query(tables)
        elif self.topology == "star":
            tables = random_star_spec(
                self.relations - 1, rng, fact_rows=500
            )
            sql = star_join_query(tables)
        elif self.topology == "clique":
            tables = random_clique_spec(
                self.relations, rng, min_rows=40, max_rows=300
            )
            sql = clique_join_query(tables)
        else:
            raise ValueError(f"unknown topology {self.topology!r}")
        db = build_database(tables, seed=self.seed)
        return db, sql


@dataclass
class BenchResult:
    """Timing and search statistics for one workload."""

    spec: WorkloadSpec
    repeats: int
    times_s: list[float] = field(default_factory=list)
    plans_considered: int = 0
    entries_stored: int = 0
    subsets_expanded: int = 0
    heuristic_pruned: int = 0

    @property
    def mean_ms(self) -> float:
        return statistics.fmean(self.times_s) * 1000.0

    @property
    def min_ms(self) -> float:
        return min(self.times_s) * 1000.0

    def as_json(self) -> dict:
        return {
            "name": self.spec.name,
            "topology": self.spec.topology,
            "relations": self.spec.relations,
            "seed": self.spec.seed,
            "repeats": self.repeats,
            "mean_ms": round(self.mean_ms, 4),
            "min_ms": round(self.min_ms, 4),
            "plans_considered": self.plans_considered,
            "entries_stored": self.entries_stored,
            "subsets_expanded": self.subsets_expanded,
            "heuristic_pruned": self.heuristic_pruned,
        }


def default_workloads(
    quick: bool = False,
    topologies: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
) -> list[WorkloadSpec]:
    """The benchmark matrix: every requested topology at every size."""
    table = QUICK_SIZES if quick else FULL_SIZES
    chosen = topologies or tuple(table)
    specs: list[WorkloadSpec] = []
    for topology in chosen:
        if topology not in FULL_SIZES:
            raise ValueError(f"unknown topology {topology!r}")
        for relations in sizes or table[topology]:
            if relations < 2:
                raise ValueError("workloads need at least two relations")
            specs.append(WorkloadSpec(topology, relations))
    return specs


def _repeats_for(relations: int, quick: bool) -> int:
    """More repeats for small (noisy) points, fewer for the slow tail."""
    if quick:
        return 3
    if relations <= 4:
        return 15
    if relations <= 8:
        return 7
    return 3


def run_workload(
    spec: WorkloadSpec, repeats: int | None = None, quick: bool = False
) -> BenchResult:
    """Benchmark one workload: build once, plan ``repeats`` times."""
    db, sql = spec.build()
    statement = parse_statement(sql)
    assert isinstance(statement, ast.SelectQuery)
    repeats = _repeats_for(spec.relations, quick) if repeats is None else repeats
    result = BenchResult(spec=spec, repeats=repeats)

    def plan_once() -> None:
        # A fresh Optimizer per plan is the Database.execute lifecycle;
        # verification is explicitly off so the stopwatch sees only
        # access path selection.
        optimizer = Optimizer(
            db.catalog,
            w=db.w,
            buffer_pages=db.storage.buffer.capacity,
            verify_plans=False,
        )
        planned = optimizer.plan_query(statement)
        stats = planned.search_stats
        if stats is not None:
            result.plans_considered = stats.plans_considered
            result.entries_stored = stats.entries_stored
            result.subsets_expanded = stats.subsets_expanded
            result.heuristic_pruned = stats.extensions_pruned_by_heuristic
    plan_once()  # warm the catalog and statistics caches

    for __ in range(repeats):
        started = time.perf_counter()
        plan_once()
        result.times_s.append(time.perf_counter() - started)
    return result


def run_bench(
    workloads: list[WorkloadSpec],
    repeats: int | None = None,
    quick: bool = False,
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the matrix and return the JSON-ready report."""
    results: list[BenchResult] = []
    for spec in workloads:
        result = run_workload(spec, repeats=repeats, quick=quick)
        results.append(result)
        echo(
            f"  {spec.name:<12s} mean {result.mean_ms:9.2f} ms  "
            f"min {result.min_ms:9.2f} ms  "
            f"plans {result.plans_considered:>7d}  "
            f"entries {result.entries_stored:>6d}"
        )
    ten_relation = [r.mean_ms for r in results if r.spec.relations == 10]
    report = {
        "version": REPORT_VERSION,
        "quick": quick,
        "workloads": [result.as_json() for result in results],
        "summary": {
            "total_mean_ms": round(sum(r.mean_ms for r in results), 4),
            "mean_ms_at_10_relations": (
                round(statistics.fmean(ten_relation), 4)
                if ten_relation
                else None
            ),
        },
    }
    return report


def load_report(path: str | Path) -> dict:
    """Load a previously written ``BENCH_optimizer.json``."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "workloads" not in report:
        raise ValueError(f"{path}: not a repro bench report")
    return report


def compare_reports(
    old: dict, new: dict, echo: Callable[[str], None] = print
) -> dict:
    """Per-workload speedups of ``new`` over ``old`` (matched by name).

    ``speedup`` > 1 means the new run plans faster.  The aggregate is the
    geometric mean over matched workloads; the 10-relation aggregate is
    the arithmetic mean-of-means ratio (the acceptance metric).
    """
    old_by_name = {w["name"]: w for w in old["workloads"]}
    rows: list[dict] = []
    for workload in new["workloads"]:
        before = old_by_name.get(workload["name"])
        if before is None or before["mean_ms"] <= 0.0:
            continue
        speedup = before["mean_ms"] / workload["mean_ms"]
        rows.append(
            {
                "name": workload["name"],
                "relations": workload["relations"],
                "old_mean_ms": before["mean_ms"],
                "new_mean_ms": workload["mean_ms"],
                "speedup": round(speedup, 3),
                "plans_considered_delta": workload["plans_considered"]
                - before["plans_considered"],
            }
        )
        marker = "" if speedup >= 1.0 else "  REGRESSION"
        echo(
            f"  {workload['name']:<12s} {before['mean_ms']:9.2f} ms -> "
            f"{workload['mean_ms']:9.2f} ms  {speedup:6.2f}x{marker}"
        )
    if not rows:
        raise ValueError("no matching workloads between the two reports")
    geo = math.exp(statistics.fmean(math.log(row["speedup"]) for row in rows))
    ten_old = [r["old_mean_ms"] for r in rows if r["relations"] == 10]
    ten_new = [r["new_mean_ms"] for r in rows if r["relations"] == 10]
    ten_speedup = (
        statistics.fmean(ten_old) / statistics.fmean(ten_new)
        if ten_new
        else None
    )
    comparison = {
        "workloads": rows,
        "geomean_speedup": round(geo, 3),
        "speedup_at_10_relations": (
            round(ten_speedup, 3) if ten_speedup is not None else None
        ),
        "regressions": [row["name"] for row in rows if row["speedup"] < 1.0],
    }
    echo(f"  geomean speedup: {comparison['geomean_speedup']:.2f}x")
    if ten_speedup is not None:
        echo(f"  10-relation mean speedup: {ten_speedup:.2f}x")
    if comparison["regressions"]:
        echo(f"  regressions: {', '.join(comparison['regressions'])}")
    return comparison


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``repro bench [--exec|--serving] [--quick] [--compare OLD]
    [--output PATH]``."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if "--exec" in arguments:
        from . import bench_exec

        arguments.remove("--exec")
        return bench_exec.main(arguments)
    if "--serving" in arguments:
        from . import bench_serving

        arguments.remove("--serving")
        return bench_serving.main(arguments)
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="micro-benchmark the optimizer's planning hot path",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report path (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD_JSON",
        help="report speedups/regressions against an earlier report",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the per-workload repeat count",
    )
    parser.add_argument(
        "--topologies",
        default=None,
        help="comma-separated subset of chain,star,clique",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated relation counts (overrides the defaults)",
    )
    args = parser.parse_args(argv)

    topologies = (
        tuple(t.strip() for t in args.topologies.split(",") if t.strip())
        if args.topologies
        else None
    )
    sizes = (
        tuple(int(s) for s in args.sizes.split(",") if s.strip())
        if args.sizes
        else None
    )
    workloads = default_workloads(
        quick=args.quick, topologies=topologies, sizes=sizes
    )
    print(f"repro bench: {len(workloads)} workload(s)")
    report = run_bench(workloads, repeats=args.repeats, quick=args.quick)
    output = Path(args.output)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    if args.compare:
        old = load_report(args.compare)
        print(f"compare against {args.compare}:")
        comparison = compare_reports(old, report)
        report["comparison"] = comparison
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0
