# Quality gates.  `make check` is the whole pre-merge bar: generic linters
# (when installed), the project's own static verification subsystem, and
# the tier-1 test suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint verify analyze test bench

check: lint verify test

# ruff/mypy are optional in minimal environments; the ast-based project
# lint (`repro check --lint`) always runs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping"; \
	fi
	$(PYTHON) -m repro check --lint

# Plan-check + cost-audit the whole workload corpus (see repro.analysis).
verify:
	$(PYTHON) -m repro check

# The whole-program analyses only (effect rules, shared-mutable-state
# report vs the committed baseline, dead code) — CI's analysis-gate job.
analyze:
	$(PYTHON) -m repro check --effects --concurrency --dead-code

test:
	$(PYTHON) -m pytest -q

bench:
	REPRO_CHECK=1 $(PYTHON) -m pytest benchmarks -q -s
