"""Serialization roundtrips and whole-database crash recovery."""

import pytest

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.errors import RecoveryError
from repro.rss.btree import _InternalNode, _LeafNode, orderable_key
from repro.rss.page import PAGE_SIZE, Page, TupleId
from repro.rss.recovery import (
    IndexMeta,
    StoreMeta,
    deserialize_meta,
    deserialize_page,
    serialize_meta,
    serialize_page,
)


class TestPageRoundtrips:
    def test_data_page(self):
        page = Page(7)
        page.insert(b"hello world")
        page.insert(b"second record")
        payload = serialize_page(page)
        clone = deserialize_page(7, payload)
        assert isinstance(clone, Page)
        assert clone.page_id == 7
        assert bytes(clone.data) == bytes(page.data)

    def test_leaf_node(self):
        leaf = _LeafNode()
        leaf.page_id = 9
        leaf.next_page_id = 12
        for number in (3, 1, 2):
            key = (number,)
            leaf.entries.append((orderable_key(key), key, TupleId(5, number)))
        clone = deserialize_page(9, serialize_page(leaf))
        assert isinstance(clone, _LeafNode)
        assert clone.next_page_id == 12
        assert [entry[1] for entry in clone.entries] == [
            entry[1] for entry in leaf.entries
        ]
        assert [entry[2] for entry in clone.entries] == [
            entry[2] for entry in leaf.entries
        ]
        # the orderable wrappers are rebuilt, not pickled
        assert [entry[0] for entry in clone.entries] == [
            entry[0] for entry in leaf.entries
        ]

    def test_internal_node(self):
        node = _InternalNode()
        node.page_id = 4
        node.keys = [orderable_key((10,)), orderable_key((20,))]
        node.children = [1, 2, 3]
        clone = deserialize_page(4, serialize_page(node))
        assert isinstance(clone, _InternalNode)
        assert clone.keys == node.keys
        assert clone.children == node.children

    def test_meta(self):
        meta = StoreMeta(
            catalog=None,
            segments=[("EMP", [1, 2, 3])],
            indexes=[IndexMeta("EMPNO", 4, 5, 42, key_types=[])],
        )
        clone = deserialize_meta(serialize_meta(meta))
        assert clone.segments == [("EMP", [1, 2, 3])]
        assert clone.indexes[0].name == "EMPNO"
        assert clone.indexes[0].entry_count == 42

    def test_bad_payloads_refused(self):
        with pytest.raises(RecoveryError, match="tag"):
            deserialize_page(1, b"Zgarbage")
        with pytest.raises(RecoveryError, match="bytes"):
            deserialize_page(1, b"P" + b"\0" * (PAGE_SIZE - 1))
        with pytest.raises(RecoveryError):
            deserialize_meta(b"P" + b"\0" * PAGE_SIZE)
        with pytest.raises(RecoveryError):
            serialize_page(object())


@pytest.fixture
def populated_path(tmp_path):
    """A closed durable database with tables, indexes and statistics."""
    path = tmp_path / "db.pages"
    db = Database(path=str(path))
    db.execute("CREATE TABLE EMP (EMPNO INTEGER, NAME VARCHAR(20), DEPT INTEGER)")
    db.execute("CREATE UNIQUE INDEX EMPNO_IDX ON EMP (EMPNO)")
    db.execute("CREATE INDEX DEPT_IDX ON EMP (DEPT)")
    for i in range(30):
        db.execute(f"INSERT INTO EMP VALUES ({i}, 'EMP{i}', {i % 4})")
    db.execute("DELETE FROM EMP WHERE EMPNO = 13")
    db.execute("UPDATE EMP SET DEPT = 9 WHERE EMPNO < 3")
    db.execute("UPDATE STATISTICS")
    dump = logical_dump(db)
    db.close()
    return path, dump


class TestDatabaseReopen:
    def test_rows_catalog_and_indexes_survive(self, populated_path):
        path, dump = populated_path
        db = Database(path=str(path))
        assert logical_dump(db) == dump
        assert verify_storage(db) == []
        # catalog came back: name resolution and semantic checks work
        table = db.catalog.table("EMP")
        assert [column.name for column in table.columns] == [
            "EMPNO",
            "NAME",
            "DEPT",
        ]
        # indexes came back as live B-trees, usable by the optimizer
        assert db.execute("SELECT NAME FROM EMP WHERE EMPNO = 7").rows == [
            ("EMP7",)
        ]
        assert db.execute(
            "SELECT COUNT(*) FROM EMP WHERE DEPT = 9"
        ).scalar() == 3
        db.close()

    def test_statistics_survive(self, populated_path):
        path, __ = populated_path
        db = Database(path=str(path))
        stats = db.catalog.relation_stats("EMP")
        assert stats is not None
        assert stats.ncard == 29
        db.close()

    def test_writes_after_reopen_are_durable(self, populated_path):
        path, __ = populated_path
        db = Database(path=str(path))
        db.execute("INSERT INTO EMP VALUES (999, 'LATE', 1)")
        dump = logical_dump(db)
        db.close()
        again = Database(path=str(path))
        assert logical_dump(again) == dump
        assert again.execute(
            "SELECT NAME FROM EMP WHERE EMPNO = 999"
        ).rows == [("LATE",)]
        again.close()

    def test_reopen_is_idempotent(self, populated_path):
        path, dump = populated_path
        for __ in range(3):
            db = Database(path=str(path))
            assert logical_dump(db) == dump
            db.close()

    def test_empty_database_roundtrip(self, tmp_path):
        path = tmp_path / "db.pages"
        Database(path=str(path)).close()
        db = Database(path=str(path))
        db.execute("CREATE TABLE T (A INTEGER)")
        db.close()
        again = Database(path=str(path))
        assert again.catalog.has_table("T")
        again.close()
