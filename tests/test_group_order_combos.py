"""GROUP BY + ORDER BY combinations and ordering guarantees."""

import pytest

from repro.workloads import load_rows


@pytest.fixture
def scores(db):
    db.execute("CREATE TABLE SC (TEAM INTEGER, PTS INTEGER)")
    load_rows(
        db,
        "SC",
        [(i % 5, (i * 7) % 30) for i in range(100)],
    )
    db.execute("CREATE INDEX SC_TEAM ON SC (TEAM)")
    db.execute("UPDATE STATISTICS")
    return db


class TestGroupOrderCombos:
    def test_group_then_order_asc(self, scores):
        result = scores.execute(
            "SELECT TEAM, SUM(PTS) FROM SC GROUP BY TEAM ORDER BY TEAM"
        )
        teams = [row[0] for row in result.rows]
        assert teams == sorted(teams)
        assert len(teams) == 5

    def test_group_then_order_desc(self, scores):
        result = scores.execute(
            "SELECT TEAM, SUM(PTS) FROM SC GROUP BY TEAM ORDER BY TEAM DESC"
        )
        teams = [row[0] for row in result.rows]
        assert teams == sorted(teams, reverse=True)

    def test_group_values_correct_regardless_of_order(self, scores):
        raw = scores.execute("SELECT TEAM, PTS FROM SC").rows
        expected: dict[int, int] = {}
        for team, pts in raw:
            expected[team] = expected.get(team, 0) + pts
        for order in ("", " ORDER BY TEAM", " ORDER BY TEAM DESC"):
            result = scores.execute(
                f"SELECT TEAM, SUM(PTS) FROM SC GROUP BY TEAM{order}"
            )
            assert dict(result.rows) == expected

    def test_order_by_implied_by_group_index(self, scores):
        """Grouping on the indexed column: no sort anywhere in the plan."""
        from repro.optimizer.plan import SortNode, walk_plan

        planned = scores.plan(
            "SELECT TEAM, COUNT(*) FROM SC GROUP BY TEAM ORDER BY TEAM"
        )
        assert not [
            n for n in walk_plan(planned.root) if isinstance(n, SortNode)
        ]

    def test_distinct_with_order(self, scores):
        result = scores.execute("SELECT DISTINCT TEAM FROM SC ORDER BY TEAM")
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]

    def test_having_then_order_desc(self, scores):
        result = scores.execute(
            "SELECT TEAM, COUNT(*) FROM SC GROUP BY TEAM "
            "HAVING COUNT(*) > 0 ORDER BY TEAM DESC"
        )
        teams = [row[0] for row in result.rows]
        assert teams == [4, 3, 2, 1, 0]

    def test_multi_key_group_with_order(self, scores):
        result = scores.execute(
            "SELECT TEAM, PTS, COUNT(*) FROM SC GROUP BY TEAM, PTS "
            "ORDER BY TEAM, PTS"
        )
        keys = [(row[0], row[1]) for row in result.rows]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
