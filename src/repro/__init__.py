"""repro — a reproduction of Selinger et al. (SIGMOD 1979),
"Access Path Selection in a Relational Database Management System".

A miniature System R in pure Python: paged storage with B-tree indexes and
a buffer pool (the RSS), a SQL front end, a catalog with optimizer
statistics, the Selinger cost-based optimizer (selectivity factors, TABLE 2
cost formulas, interesting orders, dynamic-programming join enumeration,
nested-query handling), and a plan interpreter whose page fetches and RSI
calls are counted so predictions can be validated against measurements.

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE EMP (ENO INTEGER, NAME VARCHAR(20), DNO INTEGER)")
    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)")
    db.execute("INSERT INTO EMP VALUES (1, 'SMITH', 50)")
    db.execute("UPDATE STATISTICS")
    print(db.execute("SELECT NAME FROM EMP WHERE DNO = 50").rows)
    print(db.explain("SELECT NAME FROM EMP WHERE DNO = 50"))
"""

from .database import Database, StatementResult
from .datatypes import DataType, FLOAT, INTEGER, TypeKind, varchar
from .errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
    LexerError,
    ParseError,
    PlannerError,
    ReproError,
    SemanticError,
    SqlError,
    StorageError,
)
from .optimizer.cost import DEFAULT_W

__version__ = "1.0.0"

__all__ = [
    "CatalogError",
    "DEFAULT_W",
    "DataType",
    "Database",
    "ExecutionError",
    "FLOAT",
    "INTEGER",
    "IntegrityError",
    "LexerError",
    "ParseError",
    "PlannerError",
    "ReproError",
    "SemanticError",
    "SqlError",
    "StatementResult",
    "StorageError",
    "TypeKind",
    "varchar",
    "__version__",
]
