"""The "syntactic" planner: what a system without access path selection does.

Joins relations in FROM-list order with nested loops and segment scans
everywhere.  Sargable predicates still ride along as SARGs (that filtering
happens inside the storage system regardless of planning), but no index is
ever chosen and no join order is ever reconsidered — the INGRES-era
strawman the paper's cost-based approach is measured against.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.plan import PlanNode
from ..optimizer.planner import Optimizer, PlannedStatement
from ..optimizer.predicates import to_cnf_factors
from .common import LeftDeepBuilder


class NaivePlanner:
    """FROM-order nested loops over segment scans."""

    def __init__(self, optimizer: Optimizer, catalog: Catalog):
        self._optimizer = optimizer
        self._catalog = catalog

    def plan_block(self, block: BoundQueryBlock) -> PlannedStatement:
        """Plan one block syntactically: FROM order, segment scans, nested loops."""
        factors = to_cnf_factors(block.where, block)
        builder = LeftDeepBuilder(
            block,
            factors,
            self._catalog,
            self._optimizer.estimator,
            self._optimizer.cost_model,
        )
        aliases = list(block.aliases)
        plan: PlanNode = builder.segment_scan_path(aliases[0]).node
        built = frozenset({aliases[0]})
        for alias in aliases[1:]:
            probes, __ = builder.probes_for(built, alias)
            inner = None
            for candidate in builder.path_candidates(alias, probes):
                from ..optimizer.plan import SegmentAccess

                if isinstance(candidate.node.access, SegmentAccess):
                    inner = candidate
                    break
            plan = builder.nested_loop(plan, built, alias, inner)
            built = built | {alias}
        return self._optimizer.wrap_plan(block, factors, plan)
