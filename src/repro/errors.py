"""Exception hierarchy for the repro miniature DBMS.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type at the API boundary.  Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SqlError(ReproError):
    """Base class for errors in SQL text (lexing, parsing, semantics)."""


class LexerError(SqlError):
    """Invalid token in SQL text."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """SQL text does not match the grammar."""


class SemanticError(SqlError):
    """SQL is grammatical but invalid against the catalog.

    Examples: unknown table or column, ambiguous column reference, type
    mismatch in a comparison, aggregate misuse.
    """


class CatalogError(ReproError):
    """Catalog manipulation error (duplicate table, unknown index, ...)."""


class StorageError(ReproError):
    """Low-level RSS failure (page overflow, bad TID, segment misuse)."""


class PageFullError(StorageError):
    """A tuple does not fit in the remaining free space of a page."""


class RecordTooLargeError(PageFullError):
    """A record can never fit on a page, even an empty one.

    Distinct from :class:`PageFullError` (this page happens to be full —
    retry on a fresh page may succeed): no amount of retrying can place
    this record, so callers must not loop.
    """

    def __init__(self, record_size: int, usable_size: int):
        super().__init__(
            f"record of {record_size} bytes exceeds the {usable_size} "
            "usable bytes of an empty page"
        )
        self.record_size = record_size
        self.usable_size = usable_size


class TupleTooLargeError(StorageError):
    """A tuple cannot fit on any page, even an empty one."""


class FaultInjectedError(StorageError):
    """Default error raised by an armed fault point (testing only)."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class SimulatedCrash(StorageError):
    """A fault point simulated a process crash.

    When a durable backing file is attached, the exception carries a
    byte-for-byte snapshot of the on-disk state at the instant of the
    crash; re-opening that snapshot through recovery must restore the
    last committed state.
    """

    def __init__(self, point: str, hit: int, snapshot: dict | None = None):
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit
        #: filename suffix -> file bytes at crash time (durable mode only).
        self.snapshot = snapshot


class TornPageError(StorageError):
    """A page's stored checksum does not match its bytes (torn write)."""

    def __init__(self, page_id: int, expected: int, actual: int):
        super().__init__(
            f"page {page_id}: checksum mismatch "
            f"(stored {expected:#010x}, computed {actual:#010x})"
        )
        self.page_id = page_id
        self.expected = expected
        self.actual = actual


class RecoveryError(StorageError):
    """The backing file or its page table cannot be recovered."""


class DatabaseBusyError(StorageError):
    """A write statement could not acquire the commit lock in time.

    Raised by the serving layer's group-commit coordinator after its
    bounded exponential backoff exhausts the configured timeout.  The
    statement never ran: the database state is untouched and the caller
    may simply retry.
    """

    def __init__(self, timeout: float):
        super().__init__(
            f"database busy: commit lock not acquired within {timeout:.3f}s"
        )
        self.timeout = timeout


class CommitAbortedError(StorageError):
    """A group-commit batch failed to reach the disk; no statement landed.

    Every participant of the batch receives this outcome (all-or-nothing:
    the shared page-table flip failed, so *all* statements of the batch
    rolled back, including ones that had executed cleanly).  ``__cause__``
    carries the underlying commit failure.
    """

    def __init__(self, participants: int):
        super().__init__(
            f"group commit aborted; all {participants} batched statement(s) "
            "rolled back"
        )
        self.participants = participants


class IntegrityError(ReproError):
    """Constraint violation (duplicate key in a unique index)."""


class PlannerError(ReproError):
    """The optimizer could not produce a plan for a valid query."""


class ExecutionError(ReproError):
    """Runtime failure while executing a plan."""
