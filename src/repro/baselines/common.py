"""Shared plumbing for baseline planners: explicit left-deep plan assembly.

:class:`LeftDeepBuilder` turns an explicit join order and explicit per-step
choices (access path, join method, sort placement) into the same executable
plan nodes the real optimizer emits, with costs from the same cost model —
so baseline plans and optimizer plans are comparable both in prediction and
in measurement.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..optimizer.access_paths import PathCandidate, enumerate_paths, probe_factor
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.cost import Cost, CostModel, tuple_byte_width
from ..optimizer.orders import InterestingOrders
from ..optimizer.plan import (
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
)
from ..optimizer.predicates import (
    BooleanFactor,
    join_factor_as_sarg,
    partition_factors,
)
from ..optimizer.selectivity import SelectivityEstimator
from ..sql import ast


class LeftDeepBuilder:
    """Builds executable left-deep plans for explicit choices."""

    def __init__(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        catalog: Catalog,
        estimator: SelectivityEstimator,
        cost_model: CostModel,
    ):
        self.block = block
        self.factors = factors
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self.orders = InterestingOrders(block, factors)
        self.partition = partition_factors(factors, block.aliases)

    # -- estimates ---------------------------------------------------------------

    def subset_rows(self, aliases: frozenset[str]) -> float:
        """Estimated rows of the join over ``aliases`` (order-independent)."""
        rows = 1.0
        for alias in aliases:
            rows *= self._cost.ncard(self.block.alias_table(alias))
        for factor in self.factors:
            if factor.aliases and factor.aliases <= aliases:
                rows *= self._estimator.factor_selectivity(factor)
        return rows

    # -- single relations ------------------------------------------------------------

    def path_candidates(
        self, alias: str, probes: list[BooleanFactor] | None = None
    ) -> list[PathCandidate]:
        """Access path candidates for one relation (probe factors optional)."""
        return enumerate_paths(
            alias,
            self.block.alias_table(alias),
            self.partition.local[alias],
            self._catalog,
            self._estimator,
            self._cost,
            self.orders,
            probe_factors=probes,
        )

    def cheapest_path(
        self, alias: str, probes: list[BooleanFactor] | None = None
    ) -> PathCandidate:
        """The cheapest access path candidate by weighted total."""
        return min(
            self.path_candidates(alias, probes),
            key=lambda candidate: self._cost.total(candidate.node.cost),
        )

    def segment_scan_path(self, alias: str) -> PathCandidate:
        """The relation's segment-scan candidate (always exists)."""
        from ..optimizer.plan import SegmentAccess

        for candidate in self.path_candidates(alias):
            if isinstance(candidate.node.access, SegmentAccess):
                return candidate
        raise AssertionError("segment scan is always enumerated")

    # -- joins ---------------------------------------------------------------------------

    def connecting_factors(
        self, built: frozenset[str], alias: str
    ) -> list[BooleanFactor]:
        """Join predicates linking ``alias`` to the already-built set."""
        return [
            factor
            for factor in self.partition.joins
            if alias in factor.aliases and factor.aliases <= built | {alias}
        ]

    def probes_for(
        self, built: frozenset[str], alias: str
    ) -> tuple[list[BooleanFactor], list[ast.Expr]]:
        """Join predicates as probe factors for an inner scan, plus leftovers."""
        probes: list[BooleanFactor] = []
        residual: list[ast.Expr] = []
        for factor in self.connecting_factors(built, alias):
            sarg = join_factor_as_sarg(factor, alias)
            if sarg is not None:
                probes.append(probe_factor(factor, sarg))
            else:
                residual.append(factor.expr)
        return probes, residual

    def multi_residual(
        self, built: frozenset[str], alias: str
    ) -> list[ast.Expr]:
        """Multi-relation residual factors that become applicable at this step."""
        new_set = built | {alias}
        return [
            factor.expr
            for factor in self.partition.multi
            if factor.aliases <= new_set and not factor.aliases <= built
        ]

    def nested_loop(
        self,
        outer: PlanNode,
        built: frozenset[str],
        alias: str,
        inner: PathCandidate | None = None,
    ) -> NestedLoopJoinNode:
        """A nested-loop join step; picks the best inner path if none given."""
        from ..optimizer.access_paths import inner_resident_cap

        probes, join_residual = self.probes_for(built, alias)
        available = self._cost.inner_available_buffer(outer.buffer_claim)
        if inner is None:
            inner = min(
                self.path_candidates(alias, probes),
                key=lambda candidate: self._cost.total(
                    self._cost.nested_loop_cost(
                        candidate.node.cost.scaled(0.0),
                        outer.rows,
                        candidate.node.cost,
                        inner_resident_cap(self._cost, candidate.node, available),
                    )
                ),
            )
        new_set = built | {alias}
        cap = inner_resident_cap(self._cost, inner.node, available)
        cost = self._cost.nested_loop_cost(
            outer.cost, outer.rows, inner.node.cost, cap
        )
        return NestedLoopJoinNode(
            outer=outer,
            inner=inner.node,
            residual=join_residual + self.multi_residual(built, alias),
            cost=cost,
            rows=self.subset_rows(new_set),
            order_columns=outer.order_columns,
            buffer_claim=outer.buffer_claim + (cap if cap is not None else 2.0),
        )

    def merge_with_sorts(
        self,
        outer: PlanNode,
        built: frozenset[str],
        alias: str,
        merge_factor: BooleanFactor,
    ) -> MergeJoinNode:
        """Merge join sorting both sides explicitly (the conservative form)."""
        join = merge_factor.join
        assert join is not None and join.is_equijoin
        inner_column = join.column_for(alias)
        outer_column = join.other_column(alias)
        new_set = built | {alias}

        outer_bytes = sum(
            tuple_byte_width(self.block.alias_table(a)) for a in built
        )
        sorted_outer = SortNode(
            child=outer,
            keys=[(outer_column, False)],
            cost=self._cost.sort_build_cost(outer.cost, outer.rows, outer_bytes)
            + self._cost.temp_scan_cost(outer.rows, outer_bytes),
            rows=outer.rows,
            order_columns=((outer_column.alias, outer_column.position),),
        )
        inner_path = self.cheapest_path(alias)
        inner_bytes = tuple_byte_width(self.block.alias_table(alias))
        inner_rows = inner_path.node.rows
        matches = (
            outer.rows
            * inner_rows
            * self._estimator.factor_selectivity(merge_factor)
        )
        sorted_inner = SortNode(
            child=inner_path.node,
            keys=[(inner_column, False)],
            cost=self._cost.sort_build_cost(
                inner_path.node.cost, inner_rows, inner_bytes
            )
            + Cost(
                pages=self._cost.temp_pages(inner_rows, inner_bytes),
                rsi=max(inner_rows, matches),
            ),
            rows=inner_rows,
            order_columns=((inner_column.alias, inner_column.position),),
        )
        residual = [
            factor.expr
            for factor in self.connecting_factors(built, alias)
            if factor is not merge_factor
        ] + self.multi_residual(built, alias)
        return MergeJoinNode(
            outer=sorted_outer,
            inner=sorted_inner,
            outer_column=outer_column,
            inner_column=inner_column,
            residual=residual,
            cost=sorted_outer.cost + sorted_inner.cost,
            rows=self.subset_rows(new_set),
            order_columns=((outer_column.alias, outer_column.position),),
        )

    def equijoin_factors(
        self, built: frozenset[str], alias: str
    ) -> list[BooleanFactor]:
        """The equi-join predicates usable as a merge key at this step."""
        return [
            factor
            for factor in self.connecting_factors(built, alias)
            if factor.join is not None and factor.join.is_equijoin
        ]
