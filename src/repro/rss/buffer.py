"""LRU buffer pool with page-fetch accounting.

Every page access in the system goes through :meth:`BufferPool.fetch`.  A
miss — the page is not currently buffered — counts as one *page fetch*, the
I/O unit of the paper's cost model.  A hit is free.  The pool holds a fixed
number of page ids and evicts the least recently used.

The paper's Table 2 formulas branch on "if this number fits in the System R
buffer"; :attr:`BufferPool.capacity` is that effective per-user buffer size,
and the optimizer reads it from here.

The accounting step (:meth:`note_fetch`) is separate from page resolution
so concurrent snapshot readers (the serving layer) can share one pool's
LRU state and counters — each session resolves page *contents* against its
own pinned version while hits and fetches accumulate in the shared trace.
A small internal lock makes the LRU update atomic; with a single caller it
is uncontended and the counter sequence is unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .counters import CostCounters
from .pagestore import PageStore

DEFAULT_BUFFER_PAGES = 64


class BufferPool:
    """Fixed-capacity LRU cache of page ids, the unit of fetch accounting."""

    def __init__(
        self,
        store: PageStore,
        counters: CostCounters,
        capacity: int = DEFAULT_BUFFER_PAGES,
    ):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one page")
        self._store = store
        self._counters = counters
        self.capacity = capacity
        #: Guards the LRU map and its counter updates; sessions sharing the
        #: pool account their fetches through the same trace.
        self._lock = threading.Lock()
        # Workers read pages through ScanSnapshot (a raw page-store
        # handle) and never touch the pool; only statement-issuing threads
        # call fetch()/note_fetch(), replaying the serial LRU trace at
        # gather points.
        self._resident: OrderedDict[int, None] = OrderedDict()  # concurrency: lock-guarded

    def note_fetch(self, page_id: int) -> None:
        """Account one page access: LRU update plus hit/fetch counting."""
        with self._lock:
            if page_id in self._resident:
                self._resident.move_to_end(page_id)
                self._counters.buffer_hits += 1
            else:
                self._counters.page_fetches += 1
                self._resident[page_id] = None
                if len(self._resident) > self.capacity:
                    self._resident.popitem(last=False)

    def fetch(self, page_id: int) -> object:
        """Return the page object, counting a page fetch on a miss."""
        self.note_fetch(page_id)
        return self._store.get(page_id)

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool (after it is freed)."""
        with self._lock:
            self._resident.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool — a "cold cache" for reproducible measurements."""
        with self._lock:
            self._resident.clear()
