"""Unit tests for the B+-tree index."""

import random

import pytest

from repro.datatypes import INTEGER, varchar
from repro.errors import StorageError
from repro.rss.btree import BTree, orderable_key
from repro.rss.buffer import BufferPool
from repro.rss.counters import CostCounters
from repro.rss.page import TupleId
from repro.rss.pagestore import PageStore


def make_tree(key_types=None) -> BTree:
    store = PageStore()
    counters = CostCounters()
    buffer = BufferPool(store, counters, capacity=256)
    return BTree(store, buffer, key_types or [INTEGER])


class TestOrderableKey:
    def test_null_sorts_first(self):
        assert orderable_key((None,)) < orderable_key((0,))
        assert orderable_key((None,)) < orderable_key((-(10**9),))

    def test_composite(self):
        assert orderable_key((1, "a")) < orderable_key((1, "b"))
        assert orderable_key((1, "z")) < orderable_key((2, "a"))


class TestInsertScan:
    def test_empty_tree_scans_nothing(self):
        assert list(make_tree().scan_all()) == []

    def test_single_entry(self):
        tree = make_tree()
        tree.insert((5,), TupleId(1, 0))
        assert list(tree.scan_all()) == [((5,), TupleId(1, 0))]

    def test_entries_come_back_sorted(self):
        tree = make_tree()
        rng = random.Random(3)
        keys = list(range(2000))
        rng.shuffle(keys)
        for key in keys:
            tree.insert((key,), TupleId(key, 0))
        result = [key[0] for key, __ in tree.scan_all()]
        assert result == sorted(keys)

    def test_duplicates_allowed(self):
        tree = make_tree()
        for slot in range(10):
            tree.insert((7,), TupleId(1, slot))
        assert len(list(tree.scan_range((7,), (7,)))) == 10

    def test_entry_count(self):
        tree = make_tree()
        for key in range(100):
            tree.insert((key,), TupleId(key, 0))
        assert tree.entry_count == 100

    def test_splits_create_pages(self):
        tree = make_tree()
        for key in range(5000):
            tree.insert((key,), TupleId(key, 0))
        assert tree.page_count() > 1
        assert tree.leaf_page_count() >= 2
        # All entries still present, in order.
        result = [key[0] for key, __ in tree.scan_all()]
        assert result == list(range(5000))


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = make_tree()
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert((key,), TupleId(key, 0))
        return tree

    def test_closed_range(self, tree):
        keys = [key[0] for key, __ in tree.scan_range((10,), (20,))]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_low(self, tree):
        keys = [
            key[0]
            for key, __ in tree.scan_range((10,), (16,), low_inclusive=False)
        ]
        assert keys == [12, 14, 16]

    def test_open_high(self, tree):
        keys = [
            key[0]
            for key, __ in tree.scan_range((10,), (16,), high_inclusive=False)
        ]
        assert keys == [10, 12, 14]

    def test_unbounded_low(self, tree):
        keys = [key[0] for key, __ in tree.scan_range(None, (6,))]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self, tree):
        keys = [key[0] for key, __ in tree.scan_range((94,), None)]
        assert keys == [94, 96, 98]

    def test_missing_bound_values(self, tree):
        keys = [key[0] for key, __ in tree.scan_range((11,), (15,))]
        assert keys == [12, 14]

    def test_empty_range(self, tree):
        assert list(tree.scan_range((51,), (51,))) == []


class TestCompositeKeys:
    def test_prefix_scan(self):
        tree = make_tree([INTEGER, varchar(10)])
        tree.insert((1, "a"), TupleId(1, 0))
        tree.insert((1, "b"), TupleId(1, 1))
        tree.insert((2, "a"), TupleId(2, 0))
        # Bound by the first column only.
        keys = [key for key, __ in tree.scan_range((1,), (1,))]
        assert keys == [(1, "a"), (1, "b")]

    def test_full_key_scan(self):
        tree = make_tree([INTEGER, varchar(10)])
        tree.insert((1, "a"), TupleId(1, 0))
        tree.insert((1, "b"), TupleId(1, 1))
        keys = [key for key, __ in tree.scan_range((1, "b"), (1, "b"))]
        assert keys == [(1, "b")]


class TestNullKeys:
    def test_null_sorts_first_in_scan(self):
        tree = make_tree()
        tree.insert((5,), TupleId(1, 0))
        tree.insert((None,), TupleId(2, 0))
        keys = [key[0] for key, __ in tree.scan_all()]
        assert keys == [None, 5]


class TestDelete:
    def test_delete_removes_entry(self):
        tree = make_tree()
        tree.insert((1,), TupleId(1, 0))
        tree.insert((1,), TupleId(1, 1))
        tree.delete((1,), TupleId(1, 0))
        assert list(tree.scan_all()) == [((1,), TupleId(1, 1))]
        assert tree.entry_count == 1

    def test_delete_missing_raises(self):
        tree = make_tree()
        tree.insert((1,), TupleId(1, 0))
        with pytest.raises(StorageError):
            tree.delete((1,), TupleId(9, 9))

    def test_delete_across_many(self):
        tree = make_tree()
        for key in range(1000):
            tree.insert((key,), TupleId(key, 0))
        for key in range(0, 1000, 2):
            tree.delete((key,), TupleId(key, 0))
        result = [key[0] for key, __ in tree.scan_all()]
        assert result == list(range(1, 1000, 2))


class TestStatistics:
    def test_distinct_key_count(self):
        tree = make_tree()
        for key in range(50):
            for slot in range(3):
                tree.insert((key,), TupleId(key, slot))
        assert tree.distinct_key_count() == 50

    def test_distinct_prefix_counts_empty(self):
        assert make_tree().distinct_prefix_counts() == ()

    def test_distinct_prefix_counts_single_column(self):
        tree = make_tree()
        for key in range(50):
            for slot in range(3):
                tree.insert((key,), TupleId(key, slot))
        assert tree.distinct_prefix_counts() == (50,)

    def test_distinct_prefix_counts_composite(self):
        tree = make_tree([INTEGER, INTEGER, INTEGER])
        rng = random.Random(41)
        keys = [
            (rng.randrange(4), rng.randrange(7), rng.randrange(10))
            for __ in range(500)
        ]
        for position, key in enumerate(keys):
            tree.insert(key, TupleId(position, 0))
        expected = tuple(
            len({key[: width + 1] for key in keys}) for width in range(3)
        )
        counts = tree.distinct_prefix_counts()
        assert counts == expected
        assert counts[-1] == tree.distinct_key_count()
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_distinct_prefix_counts_with_nulls(self):
        tree = make_tree([INTEGER, INTEGER])
        for key in [(None, 1), (None, 2), (1, 1), (1, 1), (2, None)]:
            tree.insert(key, TupleId(0, 0))
        # NULL is a distinct key value for statistics purposes.
        assert tree.distinct_prefix_counts() == (3, 4)

    def test_min_max(self):
        tree = make_tree()
        assert tree.min_key() is None
        assert tree.max_key() is None
        for key in (5, 3, 9):
            tree.insert((key,), TupleId(key, 0))
        assert tree.min_key() == (3,)
        assert tree.max_key() == (9,)

    def test_contains_key(self):
        tree = make_tree()
        tree.insert((4,), TupleId(1, 0))
        assert tree.contains_key((4,))
        assert not tree.contains_key((5,))


class TestPageAccounting:
    def test_scan_counts_page_fetches(self):
        store = PageStore()
        counters = CostCounters()
        buffer = BufferPool(store, counters, capacity=256)
        tree = BTree(store, buffer, [INTEGER])
        for key in range(3000):
            tree.insert((key,), TupleId(key, 0))
        counters.reset()
        buffer.clear()
        list(tree.scan_all())
        # A full scan touches every leaf plus the descent path.
        assert counters.page_fetches >= tree.leaf_page_count()
        assert counters.page_fetches <= tree.page_count() + 2
