"""Temp lists decode through DecodePlan — differentially checked.

Satellite of the storage PR: :class:`~repro.engine.temp.TempList` scans
now decode records with the compiled :class:`DecodePlan` instead of the
interpretive ``decode_tuple``.  The differential tests pin the two paths
to identical results, and the durability tests pin the other contract:
temp pages are scratch — they never reach the backing file.
"""

from repro.database import Database
from repro.datatypes import INTEGER, varchar
from repro.engine.rows import Row
from repro.engine.temp import TempList
from repro.rss.tuples import DecodePlan, decode_tuple, encode_tuple


class TestDecodeDifferential:
    SCHEMA = [
        ("E", [INTEGER, varchar(12), INTEGER]),
        ("D", [varchar(8), INTEGER]),
    ]

    def rows(self):
        return [
            Row(values={"E": (i, f"NAME{i}", i % 3), "D": (f"DEPT{i % 2}", i)})
            for i in range(25)
        ] + [
            # NULLs and a missing alias (padded with NULLs)
            Row(values={"E": (99, None, None), "D": (None, 7)}),
            Row(values={"E": (100, "ONLY-E", 1)}),
        ]

    def test_scan_matches_decode_tuple_reference(self):
        """DecodePlan in the scan and decode_tuple agree on every record."""
        db = Database()
        temp = TempList(db.storage, self.SCHEMA)
        temp.build(self.rows())

        datatypes = [
            datatype for __, datatypes in self.SCHEMA for datatype in datatypes
        ]
        reference = []
        for page_id in temp._page_ids:
            page = db.storage.store.get(page_id)
            for __, record in page.records():
                reference.append(decode_tuple(record, datatypes))

        scanned = [
            tuple(
                value
                for alias, __ in self.SCHEMA
                for value in row.values[alias]
            )
            for row in temp.scan()
        ]
        assert scanned == reference
        assert len(scanned) == 27
        temp.drop()

    def test_plan_equals_reference_on_raw_records(self):
        datatypes = [INTEGER, varchar(6), INTEGER, varchar(3)]
        plan = DecodePlan(datatypes)
        for values in [
            (1, "ABC", 2, "XY"),
            (None, None, None, None),
            (0, "", -5, "Z"),
            (2**31 - 1, "SIXSIX", None, ""),
        ]:
            record = encode_tuple(17, values, datatypes)
            assert plan.decode(record) == decode_tuple(record, datatypes)


class TestTempPagesStayOffDisk:
    def test_sort_query_leaves_backing_file_unchanged(self, tmp_path):
        """ORDER BY materializes temp lists; none of it is durable state."""
        db = Database(path=str(tmp_path / "db.pages"))
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))")
        for i in range(40):
            db.execute(f"INSERT INTO T VALUES ({40 - i}, 'R{i}')")
        durable_before = db.storage.store.disk.page_ids()

        result = db.execute("SELECT A FROM T ORDER BY A")
        assert [row[0] for row in result.rows] == list(range(1, 41))
        assert db.storage.store.disk.page_ids() == durable_before
        db.close()

        # and a reopen sees only the relation, not sort scratch
        again = Database(path=str(tmp_path / "db.pages"))
        assert again.execute("SELECT COUNT(*) FROM T").scalar() == 40
        again.close()

    def test_temp_pages_not_tracked_by_transactions(self):
        db = Database()
        db.execute("CREATE TABLE T (A INTEGER)")
        temp = TempList(db.storage, [("T", [INTEGER])])
        with db.storage.atomic():
            temp.build([Row(values={"T": (i,)}) for i in range(5)])
        # rollback machinery never saw the temp pages: they are all live
        assert list(temp.scan())
        temp.drop()
