"""Optimizer statistics: the exact quantities of Section 4.

For each relation T:

- ``NCARD(T)`` — cardinality of T,
- ``TCARD(T)`` — number of segment pages holding tuples of T,
- ``P(T)``     — TCARD(T) / (non-empty pages in T's segment).

For each index I on T:

- ``ICARD(I)`` — distinct keys in I,
- ``NINDX(I)`` — pages in I,
- plus the low/high key values of the first key column, which Table 1's
  linear interpolation needs for range predicates on arithmetic columns.

Statistics are collected by an explicit ``UPDATE STATISTICS`` pass (System R
deliberately did not maintain them per-INSERT to avoid catalog contention);
:func:`collect_statistics` is that pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..rss.storage import StorageEngine
    from .catalog import Catalog
    from .schema import TableDef


@dataclass(frozen=True)
class RelationStats:
    """NCARD / TCARD / P for one relation."""

    ncard: int
    tcard: int
    fraction: float  # P(T): TCARD / non-empty pages in segment

    def __str__(self) -> str:
        return f"NCARD={self.ncard} TCARD={self.tcard} P={self.fraction:.3f}"


@dataclass(frozen=True)
class IndexStats:
    """ICARD / NINDX and first-column key range for one index.

    ``prefix_icards`` extends ICARD to every key prefix of a composite
    index: entry k is the number of distinct values of the first k+1 key
    columns, so ``prefix_icards[0]`` is the leading column's own
    cardinality and ``prefix_icards[-1] == icard``.  Selectivity for an
    equality prefix of length k is ``1 / prefix_icards[k-1]`` — the full
    ICARD would overstate it on composite keys.
    """

    icard: int
    nindx: int
    low_key: object = None
    high_key: object = None
    prefix_icards: tuple[int, ...] = ()

    def __str__(self) -> str:
        prefixes = (
            f" prefixes={list(self.prefix_icards)}" if self.prefix_icards else ""
        )
        return (
            f"ICARD={self.icard} NINDX={self.nindx} "
            f"keys=[{self.low_key!r}..{self.high_key!r}]{prefixes}"
        )


def collect_statistics(
    catalog: "Catalog",
    storage: "StorageEngine",
    table_name: str | None = None,
) -> None:
    """Run UPDATE STATISTICS for one table, or for every table.

    Scans data and indexes directly (uncounted — this is catalog
    maintenance, not query execution) and installs fresh
    :class:`RelationStats` / :class:`IndexStats` in the catalog.
    """
    tables = (
        [catalog.table(table_name)] if table_name is not None else catalog.tables()
    )
    for table in tables:
        _collect_for_table(catalog, storage, table)


def _collect_for_table(
    catalog: "Catalog", storage: "StorageEngine", table: "TableDef"
) -> None:
    with storage.suppress_counting():
        segment = storage.segment(table.segment_name)
        ncard = 0
        pages_with_tuples: set[int] = set()
        for tid, __ in storage._raw_scan(table):
            ncard += 1
            pages_with_tuples.add(tid.page_id)
        tcard = len(pages_with_tuples)
        non_empty = segment.non_empty_pages()
        # P(T) is a fraction in (0, 1]; an empty relation (or a relation
        # holding no pages of a shared segment) gets the neutral 1.0, never
        # 0 — a zero P would divide segment-scan costs by zero downstream.
        fraction = tcard / non_empty if non_empty and tcard else 1.0
        catalog.set_relation_stats(
            table.name, RelationStats(ncard=ncard, tcard=tcard, fraction=fraction)
        )
        for index in catalog.indexes_on(table.name):
            btree = storage.btree(index.name)
            min_key = btree.min_key()
            max_key = btree.max_key()
            prefix_icards = btree.distinct_prefix_counts()
            catalog.set_index_stats(
                index.name,
                IndexStats(
                    icard=prefix_icards[-1] if prefix_icards else 0,
                    nindx=btree.page_count(),
                    low_key=min_key[0] if min_key else None,
                    high_key=max_key[0] if max_key else None,
                    prefix_icards=prefix_icards,
                ),
            )
