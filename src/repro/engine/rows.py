"""Composite rows flowing between operators.

A row maps each alias to the tuple of column values fetched for it, plus —
for base relations — the tuple identifier, which UPDATE and DELETE need.
Joins merge rows; projection produces a row with the single pseudo-alias
``__out__``; aggregation adds ``__agg__`` holding aggregate results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rss.page import TupleId

OUTPUT_ALIAS = "__out__"
AGGREGATE_ALIAS = "__agg__"


@dataclass
class Row:
    """One composite tuple during execution."""

    values: dict[str, tuple] = field(default_factory=dict)
    tids: dict[str, TupleId] = field(default_factory=dict)

    def merged(self, other: "Row") -> "Row":
        """A new row combining this row's aliases with another's."""
        values = dict(self.values)
        values.update(other.values)
        tids = dict(self.tids)
        tids.update(other.tids)
        return Row(values, tids)

    def with_alias(self, alias: str, values: tuple) -> "Row":
        """A copy of this row with one alias's values replaced or added."""
        merged = dict(self.values)
        merged[alias] = values
        return Row(merged, dict(self.tids))

    def __contains__(self, alias: str) -> bool:
        return alias in self.values
