"""Unit tests for execution operators: temp lists, sorting, merge joins."""

import pytest

from repro import Database
from repro.datatypes import INTEGER, varchar
from repro.engine.operators import _sort_rows
from repro.engine.rows import Row
from repro.engine.temp import TempList
from repro.optimizer.bound import BoundColumn
from repro.optimizer.plan import MergeJoinNode, walk_plan
from repro.rss import StorageEngine
from repro.workloads import load_rows


def column(alias, position):
    return BoundColumn(alias, position, f"C{position}", alias, INTEGER, 1)


class TestTempList:
    def make_rows(self, count):
        return [Row(values={"T": (i, f"name{i}")}) for i in range(count)]

    def test_roundtrip(self):
        storage = StorageEngine()
        temp = TempList(storage, [("T", [INTEGER, varchar(12)])])
        rows = self.make_rows(10)
        temp.build(rows)
        back = list(temp.scan())
        assert [r.values["T"] for r in back] == [r.values["T"] for r in rows]

    def test_counts_inserts_and_reads(self):
        storage = StorageEngine()
        temp = TempList(storage, [("T", [INTEGER, varchar(12)])])
        storage.counters.reset()
        temp.build(self.make_rows(100))
        assert storage.counters.rsi_calls == 100
        build_fetches = storage.counters.page_fetches
        assert build_fetches >= 1
        list(temp.scan())
        assert storage.counters.rsi_calls == 200

    def test_multi_page(self):
        storage = StorageEngine()
        temp = TempList(storage, [("T", [INTEGER, varchar(12)])])
        temp.build(self.make_rows(2000))
        assert temp.page_count() > 1
        assert len(list(temp.scan())) == 2000

    def test_drop_frees_pages(self):
        storage = StorageEngine()
        temp = TempList(storage, [("T", [INTEGER, varchar(12)])])
        temp.build(self.make_rows(50))
        before = len(storage.store)
        temp.drop()
        assert len(storage.store) < before

    def test_missing_alias_encoded_as_nulls(self):
        storage = StorageEngine()
        temp = TempList(storage, [("T", [INTEGER]), ("U", [INTEGER])])
        temp.build([Row(values={"T": (1,)})])
        row = next(temp.scan())
        assert row.values["U"] == (None,)


class TestSortRows:
    def rows(self, values):
        return [Row(values={"T": v}) for v in values]

    def test_single_key_ascending(self):
        rows = self.rows([(3,), (1,), (2,)])
        out = _sort_rows(rows, [(column("T", 0), False)])
        assert [r.values["T"][0] for r in out] == [1, 2, 3]

    def test_descending(self):
        rows = self.rows([(3,), (1,), (2,)])
        out = _sort_rows(rows, [(column("T", 0), True)])
        assert [r.values["T"][0] for r in out] == [3, 2, 1]

    def test_multi_key_mixed_direction(self):
        rows = self.rows([(1, 5), (2, 3), (1, 7), (2, 1)])
        out = _sort_rows(
            rows, [(column("T", 0), False), (column("T", 1), True)]
        )
        assert [r.values["T"] for r in out] == [(1, 7), (1, 5), (2, 3), (2, 1)]

    def test_nulls_first(self):
        rows = self.rows([(2,), (None,), (1,)])
        out = _sort_rows(rows, [(column("T", 0), False)])
        assert [r.values["T"][0] for r in out] == [None, 1, 2]

    def test_stability(self):
        rows = [Row(values={"T": (1, i)}) for i in range(5)]
        out = _sort_rows(rows, [(column("T", 0), False)])
        assert [r.values["T"][1] for r in out] == [0, 1, 2, 3, 4]


@pytest.fixture(scope="module")
def merge_db():
    """Index-less tables too big for the buffer: sorting to merge wins.

    With a tiny buffer pool the nested-loop inner cannot stay resident, so
    its rescans are charged (and measured) in full and the sort-merge plan
    is chosen.
    """
    db = Database(buffer_pages=3)
    db.execute("CREATE TABLE L (K INTEGER, V INTEGER, PAD VARCHAR(60))")
    db.execute("CREATE TABLE R (K INTEGER, W INTEGER, PAD VARCHAR(60))")
    load_rows(db, "L", [(i % 17, i, "x" * 52) for i in range(300)])
    load_rows(db, "R", [(i % 17, i * 10, "y" * 52) for i in range(200)])
    db.execute("UPDATE STATISTICS")
    return db


class TestMergeJoinExecution:
    @pytest.fixture(autouse=True)
    def _no_hash_join(self, monkeypatch):
        # These tests exercise the merge-join operator; with hash join in
        # the search space the DP prefers it on this index-less corpus.
        monkeypatch.setenv("REPRO_HASHJOIN", "0")

    def expected(self, db):
        left = db.execute("SELECT K, V FROM L").rows
        right = db.execute("SELECT K, W FROM R").rows
        return sorted(
            (lk, lv, rw)
            for lk, lv in left
            for rk, rw in right
            if lk == rk
        )

    def test_merge_join_chosen_and_correct(self, merge_db):
        sql = "SELECT L.K, L.V, R.W FROM L, R WHERE L.K = R.K"
        planned = merge_db.plan(sql)
        merges = [
            n for n in walk_plan(planned.root) if isinstance(n, MergeJoinNode)
        ]
        assert merges, "expected a merge join for the index-less equi-join"
        result = merge_db.executor().execute(planned)
        assert sorted(result.rows) == self.expected(merge_db)

    def test_duplicate_outer_keys_replay_inner_group(self, merge_db):
        # 300 x 200 over 17 keys: every outer key repeats, exercising the
        # group-rewind path.  Count result size exactly.
        result = merge_db.execute(
            "SELECT L.V FROM L, R WHERE L.K = R.K"
        )
        expected_count = len(self.expected(merge_db))
        assert len(result.rows) == expected_count

    def test_replays_counted_as_rsi_calls(self, merge_db):
        sql = "SELECT L.V FROM L, R WHERE L.K = R.K"
        planned = merge_db.plan(sql)
        merge_db.cold_cache()
        merge_db.executor().execute(planned)
        measured = merge_db.counters.snapshot()
        # Join output is ~3530 rows; inner tuples must cross the RSI at
        # least once per match.
        output = len(self.expected(merge_db))
        assert measured.rsi_calls >= output

    def test_merge_with_null_keys_excluded(self, db):
        db.execute("CREATE TABLE A (K INTEGER)")
        db.execute("CREATE TABLE B (K INTEGER)")
        load_rows(db, "A", [(1,), (None,), (2,)])
        load_rows(db, "B", [(1,), (None,), (3,)])
        db.execute("UPDATE STATISTICS")
        result = db.execute("SELECT A.K FROM A, B WHERE A.K = B.K")
        assert result.rows == [(1,)]

    def test_non_equijoin_residual(self, merge_db):
        result = merge_db.execute(
            "SELECT L.K, R.K FROM L, R WHERE L.K = R.K AND L.V < R.W"
        )
        left = merge_db.execute("SELECT K, V FROM L").rows
        right = merge_db.execute("SELECT K, W FROM R").rows
        expected = sorted(
            (lk, rk)
            for lk, lv in left
            for rk, rw in right
            if lk == rk and lv < rw
        )
        assert sorted(result.rows) == expected
