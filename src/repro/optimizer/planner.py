"""Whole-statement planning: the OPTIMIZER's access path selection phase.

For each query block: convert the WHERE tree to boolean factors, build the
interesting-order equivalence classes, run the join search, then pick the
cheapest complete solution — comparing order-satisfying solutions against
the cheapest unordered solution plus the cost of sorting QCARD tuples —
and wrap it with grouping, ordering, projection, and duplicate elimination.

Nested query blocks are planned recursively; at execution time uncorrelated
subqueries are evaluated once before first use and correlated subqueries
are re-evaluated per referenced candidate tuple (Section 6).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..sql import ast
from .binder import Binder
from .bound import BoundColumn, BoundQueryBlock
from .cost import Cost, CostModel, DEFAULT_W, tuple_byte_width
from .joins import JoinSearch, SearchStats
from .orders import InterestingOrders
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    PlanNode,
    ProjectNode,
    SortNode,
)
from .predicates import BooleanFactor, to_cnf_factors
from .selectivity import SelectivityEstimator


def check_enabled() -> bool:
    """Whether the ``REPRO_CHECK`` environment flag requests verification.

    With ``REPRO_CHECK=1`` every ``plan_query()`` result is statically
    verified (structural plan check, cost audit, DP prune audit) before it
    is returned; a violated invariant raises
    :class:`~repro.analysis.plan_check.PlanCheckError` instead of silently
    running a wrong plan.
    """
    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


def hash_join_enabled() -> bool:
    """Whether the DP search offers hash join as a join method.

    On by default; ``REPRO_HASHJOIN=0`` (or ``off``) restricts the search
    to the paper's NL/merge repertoire — the switch the equivalence tests
    and the NL/merge benchmark baseline use.
    """
    return os.environ.get("REPRO_HASHJOIN", "") not in ("0", "off")


@dataclass
class CorrelationInfo:
    """One correlated subquery's cost profile for ordering decisions (§6)."""

    column: BoundColumn  # this block's column the subquery references
    class_id: int
    eval_total: float  # weighted cost of one re-evaluation
    distinct: float  # expected distinct referenced values


@dataclass
class PlannedStatement:
    """A fully planned SELECT: plan tree plus everything needed to run it."""

    root: PlanNode
    block: BoundQueryBlock
    output_names: list[str]
    w: float
    qcard: float
    subquery_plans: dict[int, "PlannedStatement"] = field(default_factory=dict)
    search_stats: SearchStats | None = None
    factors: list[BooleanFactor] = field(default_factory=list)
    #: Weighted cost of nested-block evaluations (uncorrelated blocks once,
    #: correlated blocks per candidate tuple under the chosen order).
    nested_eval_total: float = 0.0

    @property
    def estimated_cost(self) -> Cost:
        """Predicted cost of the root plan node."""
        return self.root.cost

    def estimated_total(self) -> float:
        """Weighted total including nested-block evaluation costs."""
        return self.root.cost.total(self.w) + self.nested_eval_total


class Optimizer:
    """Configurable access path selector.

    ``use_heuristic`` and ``use_interesting_orders`` exist for the ablation
    experiments; both default to the paper's behaviour.
    """

    def __init__(
        self,
        catalog: Catalog,
        w: float = DEFAULT_W,
        buffer_pages: int = 64,
        use_heuristic: bool = True,
        use_interesting_orders: bool = True,
        correlation_ordering: bool = True,
        verify_plans: bool | None = None,
        use_hash_join: bool | None = None,
    ):
        self._catalog = catalog
        self.w = w
        self._buffer_pages = buffer_pages
        self._use_heuristic = use_heuristic
        self._use_orders = use_interesting_orders
        #: None defers to the REPRO_HASHJOIN environment flag at plan time.
        self.use_hash_join = use_hash_join
        # §6: when the runtime skips re-evaluation on repeated referenced
        # values, plans ordered on the referenced column become attractive
        # ("it might even pay to sort the referenced relation").
        self._correlation_ordering = correlation_ordering
        #: None defers to the REPRO_CHECK environment flag at plan time.
        self.verify_plans = verify_plans
        self._estimator = SelectivityEstimator(catalog)
        self._cost_model = CostModel(catalog, w, buffer_pages)

    @property
    def cost_model(self) -> CostModel:
        """The cost model this optimizer prices plans with."""
        return self._cost_model

    @property
    def estimator(self) -> SelectivityEstimator:
        """The TABLE 1 selectivity estimator in use."""
        return self._estimator

    # -- entry points ------------------------------------------------------------

    def verification_enabled(self) -> bool:
        """Whether this optimizer statically verifies its own output."""
        if self.verify_plans is not None:
            return self.verify_plans
        return check_enabled()

    def hash_join_allowed(self) -> bool:
        """Whether the join search may consider hash joins."""
        if self.use_hash_join is not None:
            return self.use_hash_join
        return hash_join_enabled()

    def plan_query(self, query: ast.SelectQuery) -> PlannedStatement:
        """Bind and plan a parsed SELECT statement."""
        block = Binder(self._catalog).bind(query)
        planned = self.plan_block(block)
        if self.verification_enabled():
            # Imported lazily: the analysis package imports the optimizer.
            from ..analysis.plan_check import verify_planned

            verify_planned(planned, self._catalog)
        return planned

    def plan_block(self, block: BoundQueryBlock) -> PlannedStatement:
        """Plan one bound query block (nested blocks recursively)."""
        factors = to_cnf_factors(block.where, block)
        # Nested blocks are planned first: their evaluation costs feed the
        # outer block's ordering decisions (§6).
        subquery_plans = self._plan_subqueries(block)
        correlations = self._correlation_info(block, subquery_plans)
        orders = InterestingOrders(
            block,
            factors,
            extra_single_columns=[
                (info.column.alias, info.column.position)
                for info in correlations
            ],
        )
        for info in correlations:
            info.class_id = orders.class_of(
                (info.column.alias, info.column.position)
            )
        search = JoinSearch(
            block,
            factors,
            self._catalog,
            self._estimator,
            self._cost_model,
            orders,
            use_heuristic=self._use_heuristic,
            use_interesting_orders=self._use_orders,
            record_prunes=self.verification_enabled(),
            use_hash_join=self.hash_join_allowed(),
        )
        solutions = search.search()
        root, correlation_total = self._choose_solution(
            block, factors, orders, search, solutions, correlations
        )
        root = self._apply_constant_factors(root, search.constant_factors)
        root = self._finish_block(block, factors, orders, root)

        uncorrelated_total = sum(
            subquery_plans[id(sub.block)].estimated_total()
            for sub in block.subqueries
            if not sub.block.is_correlated
        )
        planned = PlannedStatement(
            root=root,
            block=block,
            output_names=list(block.output_names),
            w=self.w,
            qcard=self._estimator.block_qcard(block, factors),
            search_stats=search.stats,
            factors=factors,
            subquery_plans=subquery_plans,
            nested_eval_total=uncorrelated_total + correlation_total,
        )
        return planned

    def run_join_search(
        self, block: BoundQueryBlock
    ) -> tuple[JoinSearch, InterestingOrders, list[BooleanFactor]]:
        """Expose the raw DP for the search-tree experiments (Figures 3-6)."""
        factors = to_cnf_factors(block.where, block)
        orders = InterestingOrders(block, factors)
        search = JoinSearch(
            block,
            factors,
            self._catalog,
            self._estimator,
            self._cost_model,
            orders,
            use_heuristic=self._use_heuristic,
            use_interesting_orders=self._use_orders,
            use_hash_join=self.hash_join_allowed(),
        )
        search.search()
        return search, orders, factors

    def wrap_plan(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        root: PlanNode,
    ) -> PlannedStatement:
        """Finish an externally built join tree into a runnable statement.

        Used by the baseline planners: applies constant factors, guarantees
        the grouping order, adds aggregation / ORDER BY sort / projection /
        DISTINCT, and plans nested blocks.
        """
        from .predicates import partition_factors

        orders = InterestingOrders(block, factors)
        partition = partition_factors(factors, block.aliases)
        root = self._apply_constant_factors(root, partition.constant)
        if block.group_by:
            wanted = tuple(
                (column.alias, column.position) for column in block.group_by
            )
            if root.order_columns[: len(wanted)] != wanted:
                row_bytes = sum(
                    tuple_byte_width(entry.table) for entry in block.tables
                )
                root = self._sort_plan(
                    root,
                    [(column, False) for column in block.group_by],
                    row_bytes,
                )
        root = self._finish_block(block, factors, orders, root)
        planned = PlannedStatement(
            root=root,
            block=block,
            output_names=list(block.output_names),
            w=self.w,
            qcard=self._estimator.block_qcard(block, factors),
            factors=factors,
        )
        planned.subquery_plans = self._plan_subqueries(block)
        return planned

    # -- solution choice ------------------------------------------------------------

    def _choose_solution(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        orders: InterestingOrders,
        search: JoinSearch,
        solutions,
        correlations: list["CorrelationInfo"],
    ) -> tuple[PlanNode, float]:
        """Pick the cheapest complete solution.

        Each candidate's total is its plan cost, plus — when required — the
        cost of sorting into the GROUP BY / ORDER BY order, plus the cost
        of re-evaluating correlated subqueries under the candidate's tuple
        order (ordered candidates amortize repeated referenced values).
        When correlations exist, explicitly sorting on the referenced
        column is considered as its own candidate (§6).
        """
        # The required order (grouping correctness!) applies regardless of
        # whether interesting-order bookkeeping is enabled; with the
        # bookkeeping off, no entry carries an order, so a sort is added.
        required = orders.required_for_block(block)
        needs_sort_keys = self._required_sort_keys(block)
        composite_bytes = sum(
            tuple_byte_width(entry.table) for entry in block.tables
        )

        candidates: list[tuple[PlanNode, tuple]] = []
        for entry in solutions.values():
            if required and orders.satisfies(entry.order_key, required):
                candidates.append((entry.plan, entry.order_key))
            elif required:
                candidates.append(
                    (
                        self._sort_plan(
                            entry.plan, needs_sort_keys, composite_bytes
                        ),
                        required,
                    )
                )
            else:
                candidates.append((entry.plan, entry.order_key))
                # "It might even pay to sort the referenced relation": offer
                # a sorted variant per correlated reference.
                for info in correlations:
                    if entry.order_key[:1] == (info.class_id,):
                        continue
                    sorted_plan = self._sort_plan(
                        entry.plan, [(info.column, False)], composite_bytes
                    )
                    candidates.append((sorted_plan, (info.class_id,)))

        best_plan: PlanNode | None = None
        best_total = float("inf")
        best_corr = 0.0
        for plan, order_key in candidates:
            correlation_total = self._correlation_term(
                correlations, tuple(order_key), plan.rows
            )
            total = self._cost_model.total(plan.cost) + correlation_total
            if total < best_total:
                best_total = total
                best_plan = plan
                best_corr = correlation_total
        assert best_plan is not None
        return best_plan, best_corr

    def _correlation_term(
        self,
        correlations: list["CorrelationInfo"],
        order_key: tuple,
        candidate_rows: float,
    ) -> float:
        """Predicted cost of correlated re-evaluations under a tuple order."""
        total = 0.0
        for info in correlations:
            if self._correlation_ordering and order_key[:1] == (info.class_id,):
                evaluations = min(max(1.0, candidate_rows), info.distinct)
            else:
                evaluations = max(1.0, candidate_rows)
            total += info.eval_total * evaluations
        return total

    def _correlation_info(
        self,
        block: BoundQueryBlock,
        subquery_plans: dict[int, PlannedStatement],
    ) -> list["CorrelationInfo"]:
        """Cost profiles of this block's correlated subqueries (§6).

        Only single-column correlations to this block produce a useful
        ordering; the "NCARD > ICARD clue" (an index on the referenced
        column) supplies the distinct-value estimate.
        """
        infos: list[CorrelationInfo] = []
        for subquery in block.subqueries:
            sub_block = subquery.block
            if not sub_block.is_correlated:
                continue
            local_refs = [
                column
                for column in sub_block.correlated_columns
                if column.block_id == block.block_id
            ]
            if len(local_refs) != 1:
                continue
            column = local_refs[0]
            icard = self._estimator.column_icard(column)
            if icard is None:
                distinct = max(
                    1.0,
                    self._estimator.relation_cardinality(column.table_name)
                    * 0.1,
                )
            else:
                distinct = float(icard)
            infos.append(
                CorrelationInfo(
                    column=column,
                    class_id=0,  # assigned once InterestingOrders exists
                    eval_total=subquery_plans[id(sub_block)].estimated_total(),
                    distinct=distinct,
                )
            )
        return infos

    def _required_sort_keys(
        self, block: BoundQueryBlock
    ) -> list[tuple[BoundColumn, bool]]:
        if block.group_by:
            return [(column, False) for column in block.group_by]
        return [(column, desc) for column, desc in block.order_by]

    def _sort_plan(
        self,
        child: PlanNode,
        keys: list[tuple[BoundColumn, bool]],
        row_bytes: int,
    ) -> SortNode:
        build = self._cost_model.sort_build_cost(child.cost, child.rows, row_bytes)
        read_back = self._cost_model.temp_scan_cost(child.rows, row_bytes)
        return SortNode(
            child=child,
            keys=list(keys),
            cost=build + read_back,
            rows=child.rows,
            order_columns=tuple(
                (column.alias, column.position) for column, __ in keys
            ),
        )

    def _apply_constant_factors(
        self, root: PlanNode, constant_factors: list[BooleanFactor]
    ) -> PlanNode:
        if not constant_factors:
            return root
        selectivity = 1.0
        for factor in constant_factors:
            selectivity *= self._estimator.factor_selectivity(factor)
        return FilterNode(
            child=root,
            predicates=[factor.expr for factor in constant_factors],
            cost=root.cost,
            rows=root.rows * selectivity,
            order_columns=root.order_columns,
        )

    def _finish_block(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        orders: InterestingOrders,
        root: PlanNode,
    ) -> PlanNode:
        if block.is_aggregate:
            out_rows = self._estimator.block_output_cardinality(block, factors)
            root = AggregateNode(
                child=root,
                group_by=list(block.group_by),
                aggregates=list(block.aggregates),
                having=block.having,
                cost=root.cost,
                rows=out_rows,
                order_columns=tuple(
                    (column.alias, column.position) for column in block.group_by
                ),
            )
        if block.order_by:
            produced = root.order_columns
            wanted = tuple(
                (column.alias, column.position) for column, __ in block.order_by
            )
            ascending = all(not desc for __, desc in block.order_by)
            if self._use_orders:
                # Order equivalence classes: an order on one side of an
                # equi-join serves ORDER BY on the other side.
                produced_key = tuple(
                    orders.class_of(column) for column in produced
                )
                wanted_key = tuple(orders.class_of(column) for column in wanted)
            else:
                produced_key, wanted_key = produced, wanted
            already = ascending and produced_key[: len(wanted_key)] == wanted_key
            if not already:
                row_bytes = sum(
                    tuple_byte_width(entry.table) for entry in block.tables
                )
                root = self._sort_plan(
                    root,
                    [(column, desc) for column, desc in block.order_by],
                    row_bytes,
                )
        root = ProjectNode(
            child=root,
            exprs=list(block.select_exprs),
            names=list(block.output_names),
            cost=root.cost,
            rows=root.rows,
            order_columns=root.order_columns,
        )
        if block.distinct:
            root = DistinctNode(
                child=root,
                cost=root.cost,
                rows=root.rows,
                order_columns=root.order_columns,
            )
        return root

    # -- nested blocks ------------------------------------------------------------------

    def _plan_subqueries(
        self, block: BoundQueryBlock
    ) -> dict[int, PlannedStatement]:
        """Plan every nested block, returning the flat plan registry."""
        plans: dict[int, PlannedStatement] = {}
        for subquery in block.subqueries:
            child = self.plan_block(subquery.block)
            plans[id(subquery.block)] = child
            plans.update(child.subquery_plans)
        return plans
