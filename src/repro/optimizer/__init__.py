"""The System R access path selector (Sections 4-6 of the paper).

Submodules:

- :mod:`repro.optimizer.bound` / :mod:`repro.optimizer.binder` — name
  resolution: raw AST into bound query blocks (the OPTIMIZER's catalog
  lookup and semantic checking phase).
- :mod:`repro.optimizer.predicates` — CNF conversion into boolean factors,
  sargability, index matching.
- :mod:`repro.optimizer.selectivity` — Table 1 selectivity factors, QCARD
  and RSICARD.
- :mod:`repro.optimizer.cost` — the cost model: Table 2 single-relation
  formulas and the Section 5 join/sort formulas.
- :mod:`repro.optimizer.orders` — interesting orders and their equivalence
  classes.
- :mod:`repro.optimizer.access_paths` — single-relation path enumeration.
- :mod:`repro.optimizer.joins` — dynamic-programming join enumeration with
  the deferred-Cartesian-product heuristic.
- :mod:`repro.optimizer.planner` — whole-statement planning including
  nested query blocks.
- :mod:`repro.optimizer.plan` — the plan tree (our stand-in for ASL).
- :mod:`repro.optimizer.explain` — plan and search-tree rendering.
"""

from .binder import Binder
from .bound import BoundColumn, BoundQueryBlock, BoundSubquery
from .cost import Cost, CostModel, DEFAULT_W
from .planner import Optimizer, PlannedStatement
from .plan import (
    AggregateNode,
    DistinctNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SegmentAccess,
    SortNode,
)

__all__ = [
    "AggregateNode",
    "Binder",
    "BoundColumn",
    "BoundQueryBlock",
    "BoundSubquery",
    "Cost",
    "CostModel",
    "DEFAULT_W",
    "DistinctNode",
    "IndexAccess",
    "MergeJoinNode",
    "NestedLoopJoinNode",
    "Optimizer",
    "PlanNode",
    "PlannedStatement",
    "ProjectNode",
    "ScanNode",
    "SegmentAccess",
    "SortNode",
]
