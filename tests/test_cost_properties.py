"""Property-based checks on the cost model's shape (monotonicity, bounds)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER
from repro.optimizer.binder import Binder
from repro.optimizer.cost import Cost, CostModel
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement


def model_for(ncard, tcard, icard, nindx, fraction=1.0, buffer_pages=64):
    catalog = Catalog()
    table = catalog.create_table("T", [("A", INTEGER), ("B", INTEGER)])
    index = catalog.create_index("T_A", "T", ["A"], clustered=False)
    catalog.set_relation_stats("T", RelationStats(ncard, tcard, fraction))
    catalog.set_index_stats("T_A", IndexStats(icard, nindx, 0, icard))
    return catalog, table, index, CostModel(catalog, w=1 / 30, buffer_pages=buffer_pages)


@given(
    st.integers(100, 100_000),
    st.integers(1, 1000),
    st.floats(0.05, 1.0),
)
def test_segment_scan_monotone_in_tcard(ncard, tcard, fraction):
    __, table, ___, model = model_for(ncard, tcard, 10, 2, fraction)
    smaller = model.segment_scan_cost(table, rsicard=ncard)
    __, table2, ___, model2 = model_for(ncard, tcard + 10, 10, 2, fraction)
    larger = model2.segment_scan_cost(table2, rsicard=ncard)
    assert larger.pages > smaller.pages


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_matching_cost_monotone_in_selectivity(f1, f2):
    __, table, index, model = model_for(50_000, 500, 100, 20)
    low, high = sorted((f1, f2))
    cheap = model.matching_index_cost(index, table, low, rsicard=0)
    costly = model.matching_index_cost(index, table, high, rsicard=0)
    assert cheap.pages <= costly.pages + 1e-12


@given(st.integers(0, 10_000), st.integers(8, 400))
def test_temp_pages_monotone_in_rows(rows, row_bytes):
    assert CostModel.temp_pages(rows, row_bytes) <= CostModel.temp_pages(
        rows + 100, row_bytes
    )


@given(st.integers(1, 99))
def test_range_selectivity_monotone_in_bound(value):
    catalog, *__ = model_for(10_000, 100, 100, 5)
    estimator = SelectivityEstimator(catalog)

    def sel(bound):
        block = Binder(catalog).bind(
            parse_statement(f"SELECT * FROM T WHERE A > {bound}")
        )
        factors = to_cnf_factors(block.where, block)
        return estimator.factor_selectivity(factors[0])

    assert sel(value) >= sel(value + 1) - 1e-12


@given(
    st.floats(0, 1000),
    st.floats(0, 100_000),
    st.floats(0.001, 3.0),
)
def test_cost_total_linear_in_w(pages, rsi, w):
    cost = Cost(pages=pages, rsi=rsi)
    assert cost.total(w) == pytest.approx(pages + w * rsi)
    assert cost.total(0) == pytest.approx(pages)


@given(st.integers(1, 50), st.integers(1, 500))
def test_sort_cost_never_below_single_pass(buffer_pages, rows):
    __, table, ___, model = model_for(10_000, 100, 100, 5, buffer_pages=buffer_pages)
    source = Cost(pages=10, rsi=rows)
    build = model.sort_build_cost(source, rows, row_bytes=50)
    single_pass = source + Cost(
        pages=model.temp_pages(rows, 50), rsi=rows
    )
    assert build.pages >= single_pass.pages - 1e-9
    assert build.rsi >= single_pass.rsi - 1e-9


@given(st.floats(1, 10_000), st.floats(0, 5_000))
def test_nested_loop_cap_never_increases_cost(outer_rows, footprint):
    __, ___, ____, model = model_for(10_000, 100, 100, 5)
    outer = Cost(pages=10, rsi=100)
    probe = Cost(pages=2, rsi=3)
    uncapped = model.nested_loop_cost(outer, outer_rows, probe)
    capped = model.nested_loop_cost(outer, outer_rows, probe, footprint)
    assert capped.pages <= uncapped.pages + 1e-9
    assert capped.rsi == pytest.approx(uncapped.rsi)
