"""The cost auditor: accepts real costings, rejects corrupted ones.

Covers the three layers of ``repro.analysis.cost_audit``: the per-plan
numeric audit (selectivities in [0, 1], cost monotonicity, the paper's
``C-outer + N * C-inner`` join shape), the TABLE 2 re-derivation over a
catalog, and the DP prune-admissibility audit.  Also holds the regression
tests for bugs the auditor itself found on the seed workloads.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.analysis.check import verifying_optimizer
from repro.analysis.cost_audit import (
    audit_cost_model,
    audit_search_stats,
    audit_statement,
)
from repro.catalog.statistics import IndexStats, RelationStats
from repro.optimizer.cost import Cost
from repro.optimizer.joins import PrunedCandidate, SearchStats
from repro.optimizer.orders import UNORDERED
from repro.optimizer.plan import (
    AggregateNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    ScanNode,
    SegmentAccess,
    SortNode,
    walk_plan,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement
from repro.workloads.empdept import FIG1_QUERY


def plan(db, sql):
    """Plan without verification so tests can corrupt the result."""
    return db.optimizer().plan_query(parse_statement(sql))


def rules(violations):
    return {violation.rule for violation in violations}


def scan_of(db, table_name, cost, rows):
    return ScanNode(
        alias=table_name,
        table=db.catalog.table(table_name),
        access=SegmentAccess(),
        cost=cost,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# clean plans audit cleanly
# ---------------------------------------------------------------------------


def test_clean_statement_audits_cleanly(empdept):
    planned = plan(empdept, FIG1_QUERY)
    assert audit_statement(planned, empdept.catalog) == []


def test_cost_model_audits_cleanly(empdept):
    violations = audit_cost_model(
        empdept.catalog, empdept.w, empdept.storage.buffer.capacity
    )
    assert violations == []


# ---------------------------------------------------------------------------
# corrupted costings are rejected
# ---------------------------------------------------------------------------


def test_rejects_negative_cost(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    scan.cost = Cost(-1.0, scan.cost.rsi)
    assert "negative-estimate" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_non_finite_cost(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    scan.cost = Cost(float("nan"), scan.cost.rsi)
    assert "non-finite" in rules(audit_statement(planned, empdept.catalog))


def test_rejects_rows_exceeding_ncard(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    scan.rows = 1e9  # NCARD(EMP) is 400; some selectivity escaped [0, 1]
    assert "rows-exceed-ncard" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_out_of_range_selectivity(empdept, monkeypatch):
    planned = plan(empdept, "SELECT NAME FROM EMP WHERE SAL > 500")
    monkeypatch.setattr(
        SelectivityEstimator, "factor_selectivity", lambda self, factor: 1.5
    )
    assert "selectivity-out-of-range" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_inconsistent_nested_loop(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    outer = scan_of(empdept, "EMP", Cost(10.0, 400.0), rows=400.0)
    inner = scan_of(empdept, "DEPT", Cost(2.0, 20.0), rows=20.0)
    # The paper's shape demands RSI = C-outer + N * C-inner = 400 + 400*20.
    planned.root = NestedLoopJoinNode(
        outer=outer, inner=inner, cost=Cost(10.0, 400.0), rows=100.0
    )
    assert "nested-loop-inconsistent" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_merge_cheaper_than_inputs(empdept):
    joined = plan(
        empdept, "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
    )
    join = next(f.join for f in joined.factors if f.join is not None)
    planned = plan(empdept, "SELECT * FROM EMP")
    planned.root = MergeJoinNode(
        outer=scan_of(empdept, "EMP", Cost(10.0, 400.0), rows=400.0),
        inner=scan_of(empdept, "DEPT", Cost(2.0, 20.0), rows=20.0),
        outer_column=join.left,
        inner_column=join.right,
        cost=Cost(5.0, 100.0),  # below the sum of its ordered inputs
        rows=400.0,
    )
    assert "merge-inconsistent" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_sort_changing_rows(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    child = scan_of(empdept, "EMP", Cost(10.0, 400.0), rows=400.0)
    planned.root = SortNode(
        child=child, keys=[], cost=Cost(40.0, 1200.0), rows=800.0
    )
    assert "sort-changes-rows" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_cost_not_monotone(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    child = scan_of(empdept, "EMP", Cost(10.0, 400.0), rows=400.0)
    planned.root = SortNode(
        child=child, keys=[], cost=Cost(1.0, 1.0), rows=400.0
    )
    assert "cost-not-monotone" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_whole_input_aggregate_cardinality(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    child = scan_of(empdept, "EMP", Cost(10.0, 400.0), rows=400.0)
    planned.root = AggregateNode(
        child=child,
        group_by=[],
        aggregates=[],
        cost=Cost(10.0, 400.0),
        rows=3.0,
    )
    assert "aggregate-cardinality" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_groups_exceeding_input(empdept):
    planned = plan(empdept, "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO")
    agg = next(
        n for n in walk_plan(planned.root) if isinstance(n, AggregateNode)
    )
    agg.rows = agg.child.rows * 2.0
    assert "groups-exceed-input" in rules(
        audit_statement(planned, empdept.catalog)
    )


def test_rejects_bad_statistics(db):
    db.execute("CREATE TABLE T (A INTEGER)")
    db.catalog.set_relation_stats(
        "T", RelationStats(ncard=5, tcard=50, fraction=2.0)
    )
    violations = audit_cost_model(db.catalog, db.w, db.storage.buffer.capacity)
    assert "bad-statistics" in rules(violations)


# ---------------------------------------------------------------------------
# the hash-join formula audit
# ---------------------------------------------------------------------------


@pytest.fixture
def hash_db():
    from tests.test_hash_join import _wide_pair_db

    keys1 = [None if i % 9 == 0 else i % 8 for i in range(120)]
    keys2 = [None if i % 7 == 0 else i % 8 for i in range(150)]
    return _wide_pair_db(keys1, keys2)


def hash_plan_of(db):
    planned = plan(db, "SELECT T1.V, T2.W FROM T1, T2 WHERE T1.K = T2.K")
    node = next(
        n for n in walk_plan(planned.root) if isinstance(n, HashJoinNode)
    )
    return planned, node


def test_clean_hash_plan_audits_cleanly(hash_db):
    planned, node = hash_plan_of(hash_db)
    assert node.partitions > 1  # the grace path is the one audited here
    assert audit_statement(planned, hash_db.catalog) == []


def test_rejects_wrong_build_side(hash_db):
    planned, node = hash_plan_of(hash_db)
    node.inner.rows = node.outer.rows + node.inner.rows + 1.0
    assert "hash-build-side" in rules(
        audit_statement(planned, hash_db.catalog)
    )


def test_rejects_tampered_hash_rsi(hash_db):
    planned, node = hash_plan_of(hash_db)
    node.cost = Cost(node.cost.pages, node.cost.rsi * 2.0)
    assert "hash-inconsistent" in rules(
        audit_statement(planned, hash_db.catalog)
    )


def test_rejects_tampered_hash_pages(hash_db):
    planned, node = hash_plan_of(hash_db)
    node.cost = Cost(node.cost.pages + 9.0, node.cost.rsi)
    assert "hash-inconsistent" in rules(
        audit_statement(planned, hash_db.catalog)
    )


def test_rejects_dropped_grace_spill_term(hash_db):
    # Claiming an in-memory join while the cost still carries the spill
    # term (or vice versa) must not re-derive.
    planned, node = hash_plan_of(hash_db)
    node.partitions = 1
    assert "hash-inconsistent" in rules(
        audit_statement(planned, hash_db.catalog)
    )


# ---------------------------------------------------------------------------
# composite-prefix statistics audit
# ---------------------------------------------------------------------------


def _two_column_indexed(db):
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    db.execute("CREATE INDEX T_AB ON T (A, B)")
    for i in range(10):
        db.execute(f"INSERT INTO T VALUES ({i % 5}, {i})")
    db.execute("UPDATE STATISTICS")
    return db.catalog.index_stats("T_AB")


def test_collected_prefix_statistics_audit_cleanly(db):
    stats = _two_column_indexed(db)
    assert stats.prefix_icards == (5, 10)
    assert (
        audit_cost_model(db.catalog, db.w, db.storage.buffer.capacity) == []
    )


@pytest.mark.parametrize(
    "prefix_icards",
    [
        (5, 9),  # full-width prefix cardinality must equal ICARD
        (12, 10),  # cardinality cannot shrink as the prefix widens
        (10,),  # one entry per key column
    ],
    ids=["icard-mismatch", "decreasing", "truncated"],
)
def test_rejects_inconsistent_prefix_statistics(db, prefix_icards):
    _two_column_indexed(db)
    db.catalog.set_index_stats(
        "T_AB", IndexStats(10, 1, 0, 4, prefix_icards=prefix_icards)
    )
    violations = audit_cost_model(db.catalog, db.w, db.storage.buffer.capacity)
    assert "bad-statistics" in rules(violations)


# ---------------------------------------------------------------------------
# the DP prune audit
# ---------------------------------------------------------------------------


def test_rejects_inadmissible_prune():
    mask = 0b11  # {A, B}
    stats = SearchStats(alias_order=("A", "B"))
    stats.survivor_totals[(mask, UNORDERED)] = 10.0
    stats.pruned.append(PrunedCandidate(mask, UNORDERED, 5.0))
    assert "inadmissible-prune" in rules(audit_search_stats(stats))


def test_rejects_prune_without_survivor():
    stats = SearchStats(alias_order=("A", "B"))
    stats.pruned.append(PrunedCandidate(0b01, UNORDERED, 5.0))
    assert "prune-without-survivor" in rules(audit_search_stats(stats))


def test_accepts_admissible_prune():
    mask = 0b11  # {A, B}
    stats = SearchStats(alias_order=("A", "B"))
    stats.survivor_totals[(mask, UNORDERED)] = 10.0
    stats.pruned.append(PrunedCandidate(mask, UNORDERED, 15.0))
    assert audit_search_stats(stats) == []


def test_real_search_prunes_are_admissible(empdept):
    planned = verifying_optimizer(empdept).plan_query(
        parse_statement(FIG1_QUERY)
    )
    stats = planned.search_stats
    assert stats is not None and stats.pruned  # the DP really discarded plans
    assert audit_search_stats(stats) == []


# ---------------------------------------------------------------------------
# regression tests for bugs the auditor found on the seed workloads
# ---------------------------------------------------------------------------


def test_group_estimate_clamped_to_input(empdept):
    """Selective predicates under GROUP BY: groups must not exceed input.

    ``block_output_cardinality``'s no-statistics fallback used to return
    ``max(1, QCARD/10)`` which exceeds QCARD whenever QCARD < 1; the cost
    auditor flagged this as groups-exceed-input on the seed workload.
    """
    sql = (
        "SELECT DNAME, COUNT(*) FROM DEPT WHERE DNO = 3 AND LOC = 'DENVER' "
        "GROUP BY DNAME"
    )
    planned = verifying_optimizer(empdept).plan_query(parse_statement(sql))
    agg = next(
        n for n in walk_plan(planned.root) if isinstance(n, AggregateNode)
    )
    assert agg.rows <= agg.child.rows + 1e-9


def test_empty_relation_statistics():
    """UPDATE STATISTICS on an empty relation must keep P(T) in (0, 1].

    The collector used to store P(T) = 0.0 for a relation with no pages,
    which divides segment-scan costs by zero; the catalog audit flagged it
    as bad-statistics.
    """
    db = Database()
    db.execute("CREATE TABLE EMPTY_REL (A INTEGER, B INTEGER)")
    db.execute("CREATE INDEX EMPTY_A ON EMPTY_REL (A)")
    db.execute("UPDATE STATISTICS")
    stats = db.catalog.relation_stats("EMPTY_REL")
    assert stats is not None
    assert stats.ncard == 0 and stats.tcard == 0
    assert 0.0 < stats.fraction <= 1.0
    assert (
        audit_cost_model(db.catalog, db.w, db.storage.buffer.capacity) == []
    )
    # The empty relation must still be plannable with verification on.
    verifying_optimizer(db).plan_query(
        parse_statement("SELECT * FROM EMPTY_REL WHERE A = 1")
    )
