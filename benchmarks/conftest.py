"""Shared fixtures for the benchmark/experiment harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index).  Numeric results are written to
``benchmark_results/<test name>.txt`` and echoed to stdout (visible with
``pytest -s``); EXPERIMENTS.md summarizes them against the paper.  Each
run also writes ``benchmark_results/BENCH_<test name>.json`` carrying the
same tables in machine-readable form, so perf trajectories can be diffed
across commits without scraping the text rendering.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.workloads import build_empdept

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session", autouse=True)
def repro_check():
    """Run every benchmark with static plan verification enabled.

    Each figure/table regeneration plans dozens of queries; with
    ``REPRO_CHECK=1`` every one of those plans passes through the
    structural checker, the cost audit, and the DP prune audit (see
    ``repro.analysis``), so the whole experiment suite doubles as a
    property-test corpus.
    """
    previous = os.environ.get("REPRO_CHECK")
    os.environ["REPRO_CHECK"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_CHECK", None)
    else:
        os.environ["REPRO_CHECK"] = previous


class Reporter:
    """Collects report lines (and structured tables) for one experiment."""

    def __init__(self, name: str):
        self.name = name
        self._lines: list[str] = []
        self._tables: list[dict] = []
        self._metrics: dict[str, object] = {}

    def line(self, text: str = "") -> None:
        self._lines.append(str(text))

    def metric(self, name: str, value) -> None:
        """Record one named scalar for the JSON report (not rendered)."""
        self._metrics[name] = value

    def table(self, headers: list[str], rows: list[list], widths=None) -> None:
        self._tables.append(
            {
                "headers": list(headers),
                "rows": [list(row) for row in rows],
            }
        )
        widths = widths or [max(12, len(h) + 2) for h in headers]
        header = "".join(f"{h:>{w}}" for h, w in zip(headers, widths))
        self._lines.append(header)
        self._lines.append("-" * len(header))
        for row in rows:
            rendered = []
            for value, width in zip(row, widths):
                if isinstance(value, float):
                    rendered.append(f"{value:>{width}.3f}")
                else:
                    rendered.append(f"{str(value):>{width}}")
            self._lines.append("".join(rendered))

    def text(self) -> str:
        return "\n".join(self._lines)

    def as_json(self) -> dict:
        """The machine-readable mirror of the rendered report."""
        return {
            "name": self.name,
            "tables": self._tables,
            "metrics": self._metrics,
        }


@pytest.fixture
def report(request):
    """A per-test reporter persisted under benchmark_results/.

    Writes both the human-readable ``<name>.txt`` and a structured
    ``BENCH_<name>.json`` (headers/rows exactly as passed to ``table``).
    """
    reporter = Reporter(request.node.name)
    yield reporter
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.txt"
    path.write_text(reporter.text() + "\n", encoding="utf-8")
    json_path = RESULTS_DIR / f"BENCH_{request.node.name}.json"
    json_path.write_text(
        json.dumps(reporter.as_json(), indent=2, sort_keys=True, default=str)
        + "\n",
        encoding="utf-8",
    )
    print(f"\n===== {request.node.name} =====")
    print(reporter.text())


@pytest.fixture(scope="session")
def empdept():
    """The Figure 1 database, sized so costs are non-trivial."""
    return build_empdept(employees=2000, departments=50, jobs=5, seed=42)


def measure_cold(db, planned):
    """Execute a plan against a cold buffer pool; return (snapshot, result)."""
    db.cold_cache()
    result = db.executor().execute(planned)
    return db.counters.snapshot(), result


def weighted(snapshot, w: float) -> float:
    return snapshot.page_fetches + w * snapshot.rsi_calls
