"""``repro bench --exec`` — time end-to-end query execution, not planning.

The planning benchmark (:mod:`repro.perf.bench`) times access path
selection; this harness times what the chosen plan then *does*: scans,
SARG evaluation, tuple decoding, joins, predicates, aggregation, and
projection — the CPU path the paper's ``W``·RSICARD term models.

Each query is planned once, then executed repeatedly prepared-statement
style with a fresh executor and a cold buffer pool per run, so the
stopwatch sees steady-state execution over identical physical I/O.  In
addition to wall-clock, every query records its result checksum and the
exact :class:`~repro.rss.counters.CostCounters` deltas (page fetches, RSI
calls, buffer hits) of one cold execution; ``--compare old.json`` reports
per-query speedups and **fails** if any counter or checksum moved — an
execution-engine optimization must change how fast the work happens, not
how much work the cost model sees.

The module is deliberately self-contained over the stable public API
(``Database``, ``parse_statement``, the workload generators), so the same
file can be pointed at an older checkout via ``PYTHONPATH`` to produce
the "before" report:

    git worktree add /tmp/seed <base-commit>
    PYTHONPATH=/tmp/seed/src python src/repro/perf/bench_exec.py \
        --output BENCH_executor_seed.json
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import math
import pstats
import random
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.database import Database
from repro.sql import ast, parse_statement
from repro.workloads.empdept import FIG1_QUERY, build_empdept
from repro.workloads.generator import (
    build_database,
    chain_join_query,
    random_chain_spec,
    random_star_spec,
    star_join_query,
)

#: Bump when the JSON schema changes shape.
REPORT_VERSION = 1

DEFAULT_OUTPUT = "BENCH_executor.json"

#: Counter fields that must be bit-identical between compared runs.
COUNTER_FIELDS = ("page_fetches", "rsi_calls", "buffer_hits")


@dataclass(frozen=True)
class ExecCase:
    """One named benchmark point: a database builder plus a query."""

    name: str
    build: Callable[[], Database]
    sql: str
    quick: bool = False  # part of the CI smoke subset


def _empdept_cases(employees: int) -> list[ExecCase]:
    def build() -> Database:
        return build_empdept(employees=employees, departments=24, seed=7)

    return [
        ExecCase("fig1-join", build, FIG1_QUERY, quick=True),
        ExecCase(
            "emp-filter",
            build,
            "SELECT NAME, SAL FROM EMP WHERE SAL > 400 AND JOB = 2",
            quick=True,
        ),
        ExecCase(
            "emp-arith",
            build,
            "SELECT ENO, SAL * 12 + 500 FROM EMP WHERE SAL / 2 > 150",
        ),
        ExecCase(
            "emp-between-in",
            build,
            "SELECT ENO, SAL FROM EMP "
            "WHERE SAL BETWEEN 200 AND 800 AND DNO IN (1, 2, 3, 4, 5)",
        ),
        ExecCase(
            "emp-like",
            build,
            "SELECT NAME FROM EMP WHERE NAME LIKE 'EMP1%' AND SAL > 300",
        ),
        ExecCase(
            "emp-agg",
            build,
            "SELECT DNO, COUNT(*), AVG(SAL), MAX(SAL) FROM EMP "
            "GROUP BY DNO HAVING COUNT(*) > 2",
            quick=True,
        ),
        ExecCase(
            "emp-order",
            build,
            "SELECT NAME, SAL FROM EMP WHERE DNO <= 12 ORDER BY SAL DESC",
        ),
    ]


def _chain_case(relations: int, max_rows: int, quick: bool = False) -> ExecCase:
    """A chain join at one NCARD scale (``max_rows`` ≈ the largest NCARD)."""

    def build() -> Database:
        rng = random.Random(1000 + relations * 10 + max_rows)
        tables = random_chain_spec(
            relations, rng, min_rows=max_rows // 4, max_rows=max_rows
        )
        return build_database(tables, seed=relations)

    rng = random.Random(1000 + relations * 10 + max_rows)
    tables = random_chain_spec(
        relations, rng, min_rows=max_rows // 4, max_rows=max_rows
    )
    sql = chain_join_query(tables)
    return ExecCase(f"chain{relations}-n{max_rows}", build, sql, quick=quick)


def _star_case(dimensions: int, fact_rows: int, quick: bool = False) -> ExecCase:
    """A star join at one fact-table NCARD scale."""

    def build() -> Database:
        rng = random.Random(2000 + dimensions * 10 + fact_rows)
        tables = random_star_spec(dimensions, rng, fact_rows=fact_rows)
        return build_database(tables, seed=dimensions)

    rng = random.Random(2000 + dimensions * 10 + fact_rows)
    tables = random_star_spec(dimensions, rng, fact_rows=fact_rows)
    sql = star_join_query(tables)
    return ExecCase(f"star{dimensions}-n{fact_rows}", build, sql, quick=quick)


def default_cases(quick: bool = False) -> list[ExecCase]:
    """The benchmark matrix: empdept corpus + chain/star at several NCARDs."""
    cases = _empdept_cases(employees=600 if quick else 1500)
    cases += [
        _chain_case(3, 400, quick=True),
        _chain_case(3, 1600),
        _chain_case(5, 800),
        _star_case(3, 1000, quick=True),
        _star_case(3, 4000),
        _star_case(5, 2000),
    ]
    if quick:
        return [case for case in cases if case.quick]
    return cases


# ---------------------------------------------------------------------------
# the unsorted-large-join section (``--hashjoin``)
# ---------------------------------------------------------------------------

#: Execution modes the hash-join gate audits for counter fidelity.
HASHJOIN_MODES = ("interp", "compiled", "fused", "parallel")


def _unsorted_join_case(
    name: str, tables: list, sql: str, buffer_pages: int
) -> ExecCase:
    def build() -> Database:
        return build_database(tables, seed=7, buffer_pages=buffer_pages)

    return ExecCase(name, build, sql, quick=True)


def hashjoin_cases(quick: bool = False) -> list[ExecCase]:
    """Large joins over unindexed, unsorted inputs: the hash sweet spot.

    Every shape keeps at least one relation out of buffer residency so
    nested loops cannot coast on a cached inner, and none carries an
    index that would hand merge join a free order.  The DP must pick a
    hash join on each of these when ``REPRO_HASHJOIN`` allows it (the
    bench asserts it does).
    """
    from repro.workloads.generator import ColumnSpec, TableSpec

    scale = 2 if quick else 1

    def spec(name, rows, columns, pad):
        return TableSpec(name, rows // scale, columns, [], pad_bytes=pad)

    cases = [
        _unsorted_join_case(
            "hj-filtered",
            [
                spec("T1", 8000, [ColumnSpec("A", 50), ColumnSpec("J1", 500)], 80),
                spec("T2", 12000, [ColumnSpec("J1", 500), ColumnSpec("B", 10)], 80),
            ],
            "SELECT T1.A, T2.J1 FROM T1, T2 "
            "WHERE T1.J1 = T2.J1 AND T2.B = 3",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-grace",
            [
                spec("T1", 8000, [ColumnSpec("A", 50), ColumnSpec("J1", 500)], 80),
                spec("T2", 12000, [ColumnSpec("J1", 500), ColumnSpec("B", 10)], 80),
            ],
            "SELECT COUNT(*) FROM T1, T2 WHERE T1.J1 = T2.J1",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-chain3",
            [
                spec("C1", 4000, [ColumnSpec("A", 50), ColumnSpec("J1", 400)], 80),
                spec("C2", 6000, [ColumnSpec("J1", 400), ColumnSpec("J2", 400)], 80),
                spec("C3", 5000, [ColumnSpec("J2", 400), ColumnSpec("B", 10)], 80),
            ],
            "SELECT C1.A, C3.B FROM C1, C2, C3 "
            "WHERE C1.J1 = C2.J1 AND C2.J2 = C3.J2 AND C3.B = 3",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-star2",
            [
                spec(
                    "FACT",
                    10000,
                    [
                        ColumnSpec("D1", 300),
                        ColumnSpec("D2", 300),
                        ColumnSpec("M", 50),
                    ],
                    80,
                ),
                spec("DIM1", 3000, [ColumnSpec("D1", 300), ColumnSpec("A", 10)], 80),
                spec("DIM2", 3000, [ColumnSpec("D2", 300), ColumnSpec("B", 10)], 80),
            ],
            "SELECT FACT.M, DIM1.A, DIM2.B FROM FACT, DIM1, DIM2 "
            "WHERE FACT.D1 = DIM1.D1 AND FACT.D2 = DIM2.D2 "
            "AND DIM1.A = 3 AND DIM2.B = 5",
            buffer_pages=48 // scale,
        ),
    ]
    return cases


def _count_hash_joins(db: Database, sql: str) -> int:
    from repro.optimizer.plan import HashJoinNode, walk_plan

    statement = parse_statement(sql)
    assert isinstance(statement, ast.SelectQuery)
    planned = db.plan_query(statement)
    return sum(
        isinstance(node, HashJoinNode) for node in walk_plan(planned.root)
    )


def run_hashjoin_bench(
    repeats: int | None = None,
    quick: bool = False,
    echo: Callable[[str], None] = print,
) -> dict:
    """The hash-join gate: baseline vs hash across every execution mode.

    The baseline leg re-runs the section with ``REPRO_HASHJOIN=0`` in
    fused mode — the best nested-loop/merge plan the DP can find without
    the hash alternative.  The hash leg runs all four execution modes and
    requires bit-identical counters, row counts, and checksums across
    them; the headline ``geomean_speedup`` is fused-over-baseline on the
    same runner.  Unlike ``--compare``, counters are *expected* to differ
    between the two legs: they execute different plans.
    """
    import os

    cases = hashjoin_cases(quick=quick)
    effective_repeats = repeats or (3 if quick else 5)

    # The section is vacuous unless the DP picks hash joins on it.
    for case in cases:
        db = case.build()
        hash_joins = _count_hash_joins(db, case.sql)
        if hash_joins == 0:
            raise RuntimeError(
                f"{case.name}: the DP picked no hash join; the section no "
                "longer measures what it claims to"
            )

    echo("  -- baseline (REPRO_HASHJOIN=0, fused)")
    saved = os.environ.get("REPRO_HASHJOIN")
    os.environ["REPRO_HASHJOIN"] = "0"
    try:
        baseline = [
            run_case(case, repeats=effective_repeats, mode="fused")
            for case in cases
        ]
    finally:
        if saved is None:
            del os.environ["REPRO_HASHJOIN"]
        else:
            os.environ["REPRO_HASHJOIN"] = saved
    for entry in baseline:
        echo(
            f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
            f"rows {entry['rows']:>6d}"
        )

    mode_sections: dict[str, list[dict]] = {}
    for mode in HASHJOIN_MODES:
        echo(f"  -- hash joins, {mode} mode")
        workers = 2 if mode == "parallel" else None
        mode_sections[mode] = [
            run_case(case, repeats=effective_repeats, mode=mode, workers=workers)
            for case in cases
        ]
        for entry in mode_sections[mode]:
            echo(
                f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
                f"rows {entry['rows']:>6d}  rsi {entry['rsi_calls']:>8d}"
            )

    # Counter fidelity: every mode must agree with interp exactly.
    mismatches: list[str] = []
    reference = {entry["name"]: entry for entry in mode_sections["interp"]}
    for mode in HASHJOIN_MODES[1:]:
        for entry in mode_sections[mode]:
            ref = reference[entry["name"]]
            identical = all(
                ref[fieldname] == entry[fieldname]
                for fieldname in (*COUNTER_FIELDS, "rows", "checksum")
            )
            if not identical:
                mismatches.append(f"{entry['name']}@{mode}")

    # Same-runner speedup: fused hash leg over the no-hash baseline.
    baseline_by_name = {entry["name"]: entry for entry in baseline}
    rows: list[dict] = []
    for entry in mode_sections["fused"]:
        before = baseline_by_name[entry["name"]]
        if before["checksum"] != entry["checksum"]:
            mismatches.append(f"{entry['name']}@baseline-rows")
        rows.append(
            {
                "name": entry["name"],
                "baseline_mean_ms": before["mean_ms"],
                "hash_mean_ms": entry["mean_ms"],
                "speedup": round(before["mean_ms"] / entry["mean_ms"], 3),
            }
        )
        echo(
            f"  {entry['name']:<16s} {before['mean_ms']:9.2f} ms -> "
            f"{entry['mean_ms']:9.2f} ms  {rows[-1]['speedup']:6.2f}x"
        )
    geo = math.exp(statistics.fmean(math.log(row["speedup"]) for row in rows))
    echo(f"  geomean speedup over the no-hash baseline: {geo:.2f}x")
    if mismatches:
        echo(f"  COUNTER MISMATCHES: {', '.join(mismatches)}")
    else:
        echo("  counters identical across every execution mode")

    return {
        "version": REPORT_VERSION,
        "kind": "executor-hashjoin",
        "quick": quick,
        "baseline": {"mode": "fused", "hashjoin": "off", "queries": baseline},
        "modes": mode_sections,
        "queries": mode_sections["fused"],
        "comparison": {
            "queries": rows,
            "geomean_speedup": round(geo, 3),
            "counter_mismatches": mismatches,
        },
    }


def _checksum(rows: list[tuple]) -> str:
    digest = hashlib.sha256()
    for row in sorted(repr(row) for row in rows):
        digest.update(row.encode("utf-8"))
    return digest.hexdigest()[:16]


#: Pipeline stages profiled executions are attributed to, by module path
#: fragment (first match wins).
PROFILE_STAGES = (
    ("engine/fuse.py", "fused drivers"),
    ("engine/operators.py", "operators"),
    ("engine/compile.py", "compiled exprs"),
    ("engine/evaluator.py", "interpreter"),
    ("engine/external_sort.py", "sort"),
    ("engine/temp.py", "temp lists"),
    ("rss/scan.py", "rss scan"),
    ("rss/sargs.py", "sargs"),
    ("rss/tuples.py", "decode"),
    ("rss/btree.py", "btree"),
    ("rss/", "storage"),
    ("engine/", "engine other"),
)


def _profile_stages(execute: Callable[[], object]) -> dict[str, float]:
    """Per-pipeline-stage self-time (ms) of one profiled execution."""
    profiler = cProfile.Profile()
    profiler.enable()
    execute()
    profiler.disable()
    stages: dict[str, float] = {}
    for (filename, __, ___), (____, _____, tottime, ______, _______) in (
        pstats.Stats(profiler).stats.items()  # type: ignore[attr-defined]
    ):
        normalized = filename.replace("\\", "/")
        if "/repro/" not in normalized:
            continue
        fragment = normalized.split("/repro/", 1)[1]
        for prefix, stage in PROFILE_STAGES:
            if fragment.startswith(prefix):
                break
        else:
            stage = "other"
        stages[stage] = stages.get(stage, 0.0) + tottime * 1000.0
    return {
        stage: round(ms, 3)
        for stage, ms in sorted(stages.items(), key=lambda kv: -kv[1])
    }


def run_case(
    case: ExecCase,
    repeats: int,
    mode: str | None = None,
    profile: bool = False,
    workers: int | None = None,
) -> dict:
    """Benchmark one case: build and plan once, execute ``repeats`` times."""
    db = case.build()
    if mode is not None:
        db.exec_mode = mode
    if workers is not None:
        db.workers = workers
    statement = parse_statement(case.sql)
    assert isinstance(statement, ast.SelectQuery)
    planned = db.plan_query(statement)
    storage = db.storage

    # One cold, measured execution for the result fingerprint and the cost
    # counters (which --compare later requires to be bit-identical).
    storage.cold_cache()
    before = storage.counters.snapshot()
    result = db.executor().execute(planned)
    after = storage.counters.snapshot()
    counters = {
        "page_fetches": after.page_fetches - before.page_fetches,
        "rsi_calls": after.rsi_calls - before.rsi_calls,
        "buffer_hits": after.buffer_hits - before.buffer_hits,
    }

    times: list[float] = []
    for __ in range(repeats):
        executor = db.executor()
        storage.cold_cache()
        started = time.perf_counter()
        executor.execute(planned)
        times.append(time.perf_counter() - started)

    entry = {
        "name": case.name,
        "repeats": repeats,
        "mean_ms": round(statistics.fmean(times) * 1000.0, 4),
        "min_ms": round(min(times) * 1000.0, 4),
        "rows": len(result.rows),
        "checksum": _checksum(result.rows),
        **counters,
    }
    if profile:
        storage.cold_cache()
        entry["stages"] = _profile_stages(
            lambda: db.executor().execute(planned)
        )
    return entry


def run_bench(
    cases: list[ExecCase],
    repeats: int | None = None,
    quick: bool = False,
    mode: str | None = None,
    profile: bool = False,
    workers: list[int] | None = None,
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the matrix and return the JSON-ready report.

    ``workers`` sweeps the matrix once per worker count (parallel mode);
    the report's top-level ``queries`` — the section ``--compare`` and CI
    gates read — reflects the *highest* count, and every swept count
    keeps its full per-query section under ``worker_sweep``.
    """
    from repro.engine.executor import resolve_exec_settings

    resolved_mode, resolved_workers = resolve_exec_settings(mode)
    sweep = sorted(workers) if workers else [resolved_workers]
    sweep_sections: list[dict] = []
    queries: list[dict] = []
    for count in sweep:
        if len(sweep) > 1:
            echo(f"  -- {resolved_mode} mode, {count} worker(s)")
        queries = []
        for case in cases:
            entry = run_case(
                case,
                repeats=repeats or (3 if quick else 7),
                mode=mode,
                profile=profile,
                workers=count if workers else None,
            )
            queries.append(entry)
            echo(
                f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
                f"min {entry['min_ms']:9.2f} ms  rows {entry['rows']:>6d}  "
                f"fetches {entry['page_fetches']:>6d}  "
                f"rsi {entry['rsi_calls']:>8d}"
            )
            if profile:
                for stage, ms in list(entry.get("stages", {}).items())[:6]:
                    echo(f"      {stage:<16s} {ms:9.2f} ms")
        sweep_sections.append(
            {
                "workers": count,
                "queries": queries,
                "total_mean_ms": round(sum(q["mean_ms"] for q in queries), 4),
            }
        )
    report = {
        "version": REPORT_VERSION,
        "kind": "executor",
        "quick": quick,
        "mode": resolved_mode,
        "workers": sweep[-1],
        "queries": queries,
        "summary": {
            "total_mean_ms": round(sum(q["mean_ms"] for q in queries), 4),
        },
    }
    if len(sweep) > 1:
        report["worker_sweep"] = sweep_sections
    return report


def load_report(path: str | Path) -> dict:
    """Load a previously written ``BENCH_executor.json``."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "queries" not in report:
        raise ValueError(f"{path}: not a repro bench --exec report")
    return report


def compare_reports(
    old: dict, new: dict, echo: Callable[[str], None] = print
) -> dict:
    """Per-query speedups of ``new`` over ``old`` plus counter fidelity.

    ``speedup`` > 1 means the new run executes faster.  Any difference in
    page fetches, RSI calls, buffer hits, row counts, or result checksums
    is reported as a counter mismatch — the optimization contract is that
    the physical work is unchanged.
    """
    old_by_name = {q["name"]: q for q in old["queries"]}
    rows: list[dict] = []
    mismatches: list[str] = []
    for query in new["queries"]:
        before = old_by_name.get(query["name"])
        if before is None or before["mean_ms"] <= 0.0:
            continue
        speedup = before["mean_ms"] / query["mean_ms"]
        identical = all(
            before.get(fieldname) == query.get(fieldname)
            for fieldname in (*COUNTER_FIELDS, "rows", "checksum")
        )
        if not identical:
            mismatches.append(query["name"])
        rows.append(
            {
                "name": query["name"],
                "old_mean_ms": before["mean_ms"],
                "new_mean_ms": query["mean_ms"],
                "speedup": round(speedup, 3),
                "counters_identical": identical,
            }
        )
        marker = "" if speedup >= 1.0 else "  REGRESSION"
        if not identical:
            marker += "  COUNTER MISMATCH"
        echo(
            f"  {query['name']:<16s} {before['mean_ms']:9.2f} ms -> "
            f"{query['mean_ms']:9.2f} ms  {speedup:6.2f}x{marker}"
        )
    if not rows:
        raise ValueError("no matching queries between the two reports")
    geo = math.exp(statistics.fmean(math.log(row["speedup"]) for row in rows))
    comparison = {
        "queries": rows,
        "geomean_speedup": round(geo, 3),
        "regressions": [row["name"] for row in rows if row["speedup"] < 1.0],
        "counter_mismatches": mismatches,
    }
    echo(f"  geomean speedup: {comparison['geomean_speedup']:.2f}x")
    if comparison["regressions"]:
        echo(f"  regressions: {', '.join(comparison['regressions'])}")
    if mismatches:
        echo(f"  COUNTER MISMATCHES: {', '.join(mismatches)}")
    else:
        echo("  cost counters identical on every query")
    return comparison


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``repro bench --exec [--quick] [--mode M] [--compare OLD] [--gate X]
    [--profile] [--output PATH]``."""
    parser = argparse.ArgumentParser(
        prog="repro bench --exec",
        description="benchmark end-to-end query execution",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix for CI smoke runs",
    )
    parser.add_argument(
        "--mode",
        choices=("fused", "parallel", "compiled", "interp"),
        default=None,
        help="execution mode to benchmark (default: REPRO_EXEC or fused)",
    )
    parser.add_argument(
        "--workers",
        metavar="N[,N...]",
        default=None,
        help="comma-separated worker counts to sweep (parallel mode); the "
        "report's headline queries come from the highest count",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report path (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD_JSON",
        help="report speedups/counter fidelity against an earlier report",
    )
    parser.add_argument(
        "--gate",
        type=float,
        metavar="MIN_GEOMEAN",
        default=None,
        help="with --compare: fail unless the geomean speedup over the old "
        "report reaches this value (e.g. 0.9 = tolerate 10%% slowdown)",
    )
    parser.add_argument(
        "--hashjoin",
        action="store_true",
        help="run the unsorted-large-join section instead: hash joins in "
        "all four modes vs a REPRO_HASHJOIN=0 fused baseline; --gate "
        "bounds the geomean speedup over that baseline",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute one cProfile'd execution per query to pipeline "
        "stages (scan/decode/fused drivers/sort/...)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the per-query repeat count",
    )
    args = parser.parse_args(argv)

    workers: list[int] | None = None
    if args.workers is not None:
        try:
            workers = [int(part) for part in args.workers.split(",") if part]
        except ValueError:
            workers = []
        if not workers or any(count < 1 for count in workers):
            print(
                f"error: --workers {args.workers!r}: expected a "
                "comma-separated list of positive integers",
                file=sys.stderr,
            )
            return 2

    if args.hashjoin:
        cases = hashjoin_cases(quick=args.quick)
        print(f"repro bench --exec --hashjoin: {len(cases)} queries")
        report = run_hashjoin_bench(repeats=args.repeats, quick=args.quick)
        output = Path(args.output)
        if args.output == DEFAULT_OUTPUT:
            output = Path("BENCH_executor_hashjoin.json")
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {output}")
        comparison = report["comparison"]
        if comparison["counter_mismatches"]:
            print(
                "HASHJOIN GATE FAILED: counter mismatches on "
                + ", ".join(comparison["counter_mismatches"]),
                file=sys.stderr,
            )
            return 1
        if args.gate is not None and comparison["geomean_speedup"] < args.gate:
            print(
                f"HASHJOIN GATE FAILED: geomean speedup "
                f"{comparison['geomean_speedup']:.3f}x < {args.gate:.3f}x",
                file=sys.stderr,
            )
            return 1
        return 0

    cases = default_cases(quick=args.quick)
    print(f"repro bench --exec: {len(cases)} quer{'y' if len(cases) == 1 else 'ies'}")
    report = run_bench(
        cases,
        repeats=args.repeats,
        quick=args.quick,
        mode=args.mode,
        profile=args.profile,
        workers=workers,
    )
    output = Path(args.output)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    if args.compare:
        old = load_report(args.compare)
        if old.get("quick", False) != args.quick:
            print(
                f"error: {args.compare} is a "
                f"{'quick' if old.get('quick') else 'full'}-matrix report; "
                "compare like against like (database sizes differ)",
                file=sys.stderr,
            )
            return 2
        print(f"compare against {args.compare}:")
        comparison = compare_reports(old, report)
        report["comparison"] = comparison
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if comparison["counter_mismatches"]:
            return 1
        if args.gate is not None and comparison["geomean_speedup"] < args.gate:
            print(
                f"PERF GATE FAILED: geomean speedup "
                f"{comparison['geomean_speedup']:.3f}x < {args.gate:.3f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
