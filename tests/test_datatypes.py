"""Unit tests for the type system."""

import pytest

from repro.datatypes import (
    DataType,
    FLOAT,
    INTEGER,
    TypeKind,
    compare_values,
    varchar,
)
from repro.errors import SemanticError


class TestDataType:
    def test_integer_str(self):
        assert str(INTEGER) == "INTEGER"

    def test_varchar_str(self):
        assert str(varchar(12)) == "VARCHAR(12)"

    def test_varchar_requires_positive_length(self):
        with pytest.raises(SemanticError):
            DataType(TypeKind.VARCHAR, 0)

    def test_arithmetic_flags(self):
        assert INTEGER.is_arithmetic
        assert FLOAT.is_arithmetic
        assert not varchar(5).is_arithmetic

    def test_max_encoded_size(self):
        assert INTEGER.max_encoded_size() == 8
        assert FLOAT.max_encoded_size() == 8
        assert varchar(10).max_encoded_size() == 12


class TestValidate:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(SemanticError):
            INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(SemanticError):
            INTEGER.validate(1.5)

    def test_float_coerces_int(self):
        value = FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_varchar_length_enforced(self):
        with pytest.raises(SemanticError):
            varchar(3).validate("toolong")

    def test_varchar_length_is_bytes(self):
        # Two 3-byte UTF-8 characters exceed VARCHAR(5).
        with pytest.raises(SemanticError):
            varchar(5).validate("世界")

    def test_null_passes_any_type(self):
        assert INTEGER.validate(None) is None
        assert varchar(1).validate(None) is None

    def test_varchar_rejects_number(self):
        with pytest.raises(SemanticError):
            varchar(10).validate(5)


class TestCompareValues:
    def test_basic_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    def test_mixed_numeric(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1.5, 1) == 1

    def test_strings(self):
        assert compare_values("ABEL", "BAKER") == -1

    def test_null_is_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None
        assert compare_values(None, None) is None

    def test_cross_type_raises(self):
        with pytest.raises(SemanticError):
            compare_values(1, "one")
