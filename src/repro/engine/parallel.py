"""Worker-pool parallel execution of fused scan pipelines.

``REPRO_EXEC=parallel`` runs the PR 5 fused ``Scan→Filter*→Project``
drivers over page-aligned partitions of a segment concurrently: the
segment's page list is snapshotted once per driver call
(:meth:`repro.rss.storage.StorageEngine.scan_snapshot`), split into
contiguous ranges, and each range is handed to a worker that decodes,
SARG-matches, filters, and projects its pages against the *same* compiled
closure programs the serial driver would run.  A nested-loop join gets an
exchange operator instead: equality probe SARGs hash-repartition the
inner relation once per statement, and workers answer probes by bucket
lookup rather than by rescanning the inner pages.

Counter fidelity is the contract that keeps ``repro bench --exec
--compare`` bit-identical to ``fused``:

- **RSI calls** are order-independent sums.  Every worker counts into its
  own private :class:`~repro.rss.counters.CostCounters` and the driving
  thread folds them into the statement's counters with
  :meth:`~repro.rss.counters.CostCounters.merge` as results drain — the
  summation-at-the-gather the concurrency report's ``mergeable-counter``
  class is machine-proven to permit.
- **Page fetches and buffer hits** depend on LRU order, so workers never
  touch the buffer pool: they read frozen pages directly from the page
  store (a plain dict lookup with no counter effects), and the driving
  thread *replays* ``BufferPool.fetch`` in exact serial page order,
  lazily, as batches are pulled downstream.  The fetch/hit trace is
  therefore byte-identical to the serial engine's, including its
  interleaving with any downstream breaker's page traffic.

Row order is preserved by construction: morsels are contiguous page
ranges, the gather concatenates morsel results in submission order, and
hash buckets are built in (page, slot) order, so every driver emits rows
in exactly the serial scan order — no sort is needed to keep
order-dependent plans honest.

Eligibility is strict and failure is silent: a chain whose SARG values,
residuals, filters, or projections contain a subquery, or whose access
path is an index (the B-tree descent *is* the fetch trace), builds no
parallel driver and :mod:`repro.engine.fuse` falls back to the serial
fused driver.  Subqueries still parallelize internally — their own plans
compile their own drivers — while the enclosing chain keeps its exact
per-probe evaluation cadence.

Scheduling and backends live in :mod:`repro.engine.scheduler`: scans
decompose into fixed-size page morsels pulled from the pool's shared
queue by idle workers (work-stealing by construction), and
``REPRO_BACKEND`` selects the thread pool or the fork-based process
pool.  Process workers cannot receive compiled closures, so the scan
drivers ship value-bound SARG specs and either apply the all-columns
``itemgetter`` fast path worker-side or return raw ``(tid, values)``
chunks for the driver's closures at the gather; the probe and sort
exchanges below always pin themselves to the thread backend for the
same reason.  On top of the scheduler the two serial breakers go
parallel: :func:`parallel_aggregate_driver` folds per-morsel partial
aggregates merged at the gather, and :func:`parallel_run_sorter` feeds
per-worker sorted runs into the external sort's k-way merge.
"""

from __future__ import annotations

import heapq
from functools import partial

from ..optimizer.bound import BoundColumn, BoundSubquery
from ..optimizer.plan import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    IndexAccess,
    NestedLoopJoinNode,
    ProjectNode,
    ScanNode,
)
from ..rss.counters import CostCounters
from ..rss.sargs import (
    CompareOp,
    ConjunctiveSargs,
    SargPredicate,
    Sargs,
    and_matcher,
    dnf_matcher,
)
from ..rss.scan import DEFAULT_BATCH_SIZE, decode_page_rows
from ..sql import ast
from .evaluator import EvalEnv
from .external_sort import _HeapKey, _sorted_run
from .operators import (
    ExecContext,
    _AggState,
    _build_aggregate,
    _build_filter,
    _build_hash_join,
    _build_nested_loop,
    _build_project,
    _build_scan,
    _HashJoinProgram,
    _program,
    _ScanProgram,
    build_hash_table,
    compile_sarg_matcher,
)
from .rows import AGGREGATE_ALIAS, OUTPUT_ALIAS, Row
from .scheduler import (
    AggCallSpec,
    AggMorsel,
    ScanMorsel,
    get_backend,
    partition_ranges,
    run_agg_morsel,
    run_scan_morsel,
    scan_ranges,
)

#: Outer rows per probe task for the nested-loop exchange.
_PROBE_CHUNK = 64

#: Below this workspace size a parallel sorted run is not worth the
#: slice/merge overhead; the run sorts serially (results are identical
#: either way — ``parallel_run_sorter`` is differentially gated).
_SORT_SLICE_MIN_ROWS = 512


# ---------------------------------------------------------------------------
# eligibility
# ---------------------------------------------------------------------------

#: Expression nodes that evaluate through the runtime's subquery machinery.
#: ``walk_expr`` yields (and does not descend into) both forms.
_SUBQUERY_NODES = (BoundSubquery, ast.InSubquery)


def _subquery_free(exprs) -> bool:
    """True when no expression reaches the runtime's subquery machinery.

    Subquery evaluation mutates statement-scoped caches and fetches pages
    mid-expression; both would break worker confinement and the replayed
    fetch trace, so any subquery anywhere in a chain vetoes parallelism.
    """
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if type(node) in _SUBQUERY_NODES:
                return False
    return True


def _scan_exprs(node: ScanNode) -> list:
    exprs = list(node.residual)
    for expression in node.sargs:
        for group in expression.groups:
            for pred in group:
                exprs.append(pred.value)
    return exprs


def _segment_scan_eligible(node: ScanNode, program: _ScanProgram) -> bool:
    """Parallel drivers handle plain segment scans only.

    An index scan's B-tree descent and per-entry data-page fetches *are*
    its cost trace — there is no counter-free way to compute them ahead on
    a worker — so index access paths stay on the serial fused driver.
    """
    if isinstance(node.access, IndexAccess):
        return False
    return not program.low_fns and not program.high_fns


# ---------------------------------------------------------------------------
# partitioned segment scans
# ---------------------------------------------------------------------------


def _scan_partition(
    snapshot, decode, matcher, process, lo: int, hi: int
) -> tuple[CostCounters, list[list]]:
    """One worker task: decode, SARG-match, and process a page range.

    Runs on a worker thread against the read-only snapshot with a private
    :class:`CostCounters`; the buffer pool is never touched here (the
    driving thread replays fetches in serial page order as results
    drain).  Matched rows are chunked exactly as the serial scan's
    page-aligned batches so RSI charges land in identical quanta.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    get_page = snapshot.get_page
    page_ids = snapshot.page_ids
    relation_id = snapshot.relation_id
    pages: list[list] = []
    for index in range(lo, hi):
        page_id = page_ids[index]
        rows = decode_page_rows(page_id, get_page(page_id), relation_id, decode)
        if matcher is not None:
            rows = [item for item in rows if matcher(item[1])]
        chunks: list = []
        for start in range(0, len(rows), DEFAULT_BATCH_SIZE):
            chunk = rows[start : start + DEFAULT_BATCH_SIZE]
            count_rsi(len(chunk))
            chunks.append(process(chunk))
        pages.append(chunks)
    return counters, pages


def _value_bound_sargs(
    program: _ScanProgram, ctx: ExecContext, outer: EvalEnv | None
) -> ConjunctiveSargs | None:
    """The scan's SARGs with probe values evaluated, as picklable data.

    Process workers cannot receive the per-open matcher closure, so the
    driver evaluates every value closure once (pure by the subquery-free
    eligibility guarantee) and rebuilds the predicate structure the
    worker recompiles with :func:`~repro.rss.sargs.compile_matcher` —
    the same factories, fast paths, and NULL-rejects-all semantics as
    :func:`~repro.engine.operators.compile_sarg_matcher`.
    """
    if not program.sarg_parts:
        return None
    value_env = ctx.env(Row(), outer)
    parts = []
    for part, spec_part in zip(program.sarg_parts, program.sarg_specs):
        groups = []
        for group, spec_group in zip(part, spec_part):
            groups.append(
                [
                    SargPredicate(position, op, value_fn(value_env))
                    for (__, value_fn), (position, op) in zip(
                        group, spec_group
                    )
                ]
            )
        parts.append(Sargs(groups))
    return ConjunctiveSargs(parts)


def _column_positions(exprs, alias: str) -> tuple[int, ...] | None:
    """Output column positions when every projection is a plain column of
    ``alias`` — the positional mirror of ``fuse._columns_getter``, shipped
    to process workers instead of the getter closure."""
    positions = []
    for expr in exprs:
        if type(expr) is not BoundColumn or expr.alias != alias:
            return None
        positions.append(expr.position)
    if not positions:
        return None
    return tuple(positions)


def _partitioned_driver(
    scan_node: ScanNode,
    program: _ScanProgram,
    make_process,
    out_positions: tuple[int, ...] | None = None,
):
    """The generic gather: fan page morsels out, replay counters in order.

    ``make_process`` builds one per-task closure (with its own mutable
    environment) mapping a SARG-matched chunk to its output batch.  On
    the process backend closures cannot cross into workers, so morsels
    either carry ``out_positions`` (the all-columns fast path, applied
    worker-side) or return raw chunks that the driving thread maps
    through a single ``make_process`` closure at the gather — the same
    deterministic per-row function either way.
    """
    decode = program.decode_plan.decode
    table = scan_node.table
    alias = scan_node.alias

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        snapshot = ctx.storage.scan_snapshot(table)
        page_ids = snapshot.page_ids
        if not page_ids:
            return
        backend = get_backend(ctx.workers, ctx.backend)
        ranges = scan_ranges(len(page_ids), backend.workers)
        post = None
        if backend.kind == "process":
            sargs = _value_bound_sargs(program, ctx, outer)
            datatypes = tuple(ctx.schemas[alias])
            tasks = [
                partial(
                    run_scan_morsel,
                    ScanMorsel(
                        pages=snapshot.freeze_range(lo, hi),
                        relation_id=snapshot.relation_id,
                        datatypes=datatypes,
                        sargs=sargs,
                        out_positions=out_positions,
                    ),
                )
                for lo, hi in ranges
            ]
            if out_positions is None:
                post = make_process(ctx, outer)
        else:
            value_env = ctx.env(Row(), outer)
            matcher = compile_sarg_matcher(program, value_env)
            tasks = [
                (
                    lambda lo=lo, hi=hi: _scan_partition(
                        snapshot, decode, matcher, make_process(ctx, outer), lo, hi
                    )
                )
                for lo, hi in ranges
            ]
        fetch = ctx.storage.buffer.fetch
        merge = ctx.storage.counters.merge
        index = 0
        for counters, pages in backend.imap(tasks):
            merge(counters)
            for chunks in pages:
                fetch(page_ids[index])
                index += 1
                for out in chunks:
                    if post is not None:
                        out = post(out)
                    if out:
                        yield out

    return driver


def parallel_chain_driver(
    scan_node: ScanNode,
    filters: list[FilterNode],
    project: ProjectNode | None,
    ctx: ExecContext,
):
    """A partitioned ``Scan→Filter*→Project?`` driver, or ``None``.

    Mirrors the four serial flavors of ``fuse._scan_chain_driver`` —
    same closures, same ``Row`` shapes, same charge points — with the
    per-tuple work moved onto workers.
    """
    program: _ScanProgram = _program(scan_node, ctx, _build_scan)
    if not _segment_scan_eligible(scan_node, program):
        return None
    filter_exprs = [pred for f in filters for pred in f.predicates]
    project_exprs = [] if project is None else list(project.exprs)
    if not _subquery_free(_scan_exprs(scan_node) + filter_exprs + project_exprs):
        return None
    from .fuse import _combine

    alias = scan_node.alias
    preds = [program.residual]
    preds.extend(_program(f, ctx, _build_filter) for f in filters)
    test = _combine(preds)
    fns = None if project is None else _program(project, ctx, _build_project)

    if test is None and fns is None:

        def make_rows(ctx: ExecContext, outer: EvalEnv | None):
            def process(chunk):
                return [
                    Row(values={alias: values}, tids={alias: tid})
                    for tid, values in chunk
                ]

            return process

        return _partitioned_driver(scan_node, program, make_rows)

    if fns is None:

        def make_filter(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)

            def process(chunk):
                out = []
                append = out.append
                for tid, values in chunk:
                    row = Row(values={alias: values}, tids={alias: tid})
                    env.row = row
                    if test(env):
                        append(row)
                return out

            return process

        return _partitioned_driver(scan_node, program, make_filter)

    if test is None:

        def make_project(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)

            def process(chunk):
                out = []
                append = out.append
                for tid, values in chunk:
                    tids = {alias: tid}
                    env.row = Row(values={alias: values}, tids=tids)
                    append(
                        Row(
                            values={
                                alias: values,
                                OUTPUT_ALIAS: tuple([fn(env) for fn in fns]),
                            },
                            tids=tids,
                        )
                    )
                return out

            return process

        return _partitioned_driver(scan_node, program, make_project)

    def make_chain(ctx: ExecContext, outer: EvalEnv | None):
        env = ctx.env(Row(), outer)

        def process(chunk):
            out = []
            append = out.append
            for tid, values in chunk:
                tids = {alias: tid}
                env.row = Row(values={alias: values}, tids=tids)
                if test(env):
                    append(
                        Row(
                            values={
                                alias: values,
                                OUTPUT_ALIAS: tuple([fn(env) for fn in fns]),
                            },
                            tids=tids,
                        )
                    )
            return out

        return process

    return _partitioned_driver(scan_node, program, make_chain)


def parallel_output_driver(
    scan_node: ScanNode,
    filters: list[FilterNode],
    project: ProjectNode,
    ctx: ExecContext,
):
    """A partitioned chain emitting bare output tuples, or ``None``.

    The output-tuple counterpart of :func:`parallel_chain_driver`,
    mirroring ``fuse._scan_output_driver`` including its all-columns
    ``itemgetter`` fast path.
    """
    program: _ScanProgram = _program(scan_node, ctx, _build_scan)
    if not _segment_scan_eligible(scan_node, program):
        return None
    filter_exprs = [pred for f in filters for pred in f.predicates]
    if not _subquery_free(
        _scan_exprs(scan_node) + filter_exprs + list(project.exprs)
    ):
        return None
    from .fuse import _columns_getter, _combine

    alias = scan_node.alias
    preds = [program.residual]
    preds.extend(_program(f, ctx, _build_filter) for f in filters)
    test = _combine(preds)
    fns = _program(project, ctx, _build_project)
    fast = _columns_getter(project.exprs, alias)

    if test is None and fast is not None:

        def make_direct(ctx: ExecContext, outer: EvalEnv | None):
            def process(chunk):
                return [fast(values) for __, values in chunk]

            return process

        return _partitioned_driver(
            scan_node,
            program,
            make_direct,
            out_positions=_column_positions(project.exprs, alias),
        )

    if test is None:

        def make_project(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)

            def process(chunk):
                out = []
                append = out.append
                for __, values in chunk:
                    env.row = Row(values={alias: values})
                    append(tuple([fn(env) for fn in fns]))
                return out

            return process

        return _partitioned_driver(scan_node, program, make_project)

    if fast is not None:

        def make_filtered_direct(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)

            def process(chunk):
                out = []
                append = out.append
                for __, values in chunk:
                    env.row = Row(values={alias: values})
                    if test(env):
                        append(fast(values))
                return out

            return process

        return _partitioned_driver(scan_node, program, make_filtered_direct)

    def make_chain(ctx: ExecContext, outer: EvalEnv | None):
        env = ctx.env(Row(), outer)

        def process(chunk):
            out = []
            append = out.append
            for __, values in chunk:
                env.row = Row(values={alias: values})
                if test(env):
                    append(tuple([fn(env) for fn in fns]))
            return out

        return process

    return _partitioned_driver(scan_node, program, make_chain)


# ---------------------------------------------------------------------------
# exchange: hash-repartitioned nested-loop probes
# ---------------------------------------------------------------------------


def _probe_keys(program: _ScanProgram) -> tuple[tuple[int, ...], list[int], list]:
    """Split SARG parts into hash-key equality conjuncts and the rest.

    A part whose DNF is a single group of all-equality predicates is a
    conjunction of ``column = probe-value`` terms: its column positions
    become hash-key components and its value closures compute the probe
    key.  Remaining parts stay as a per-probe matcher over bucket
    candidates.
    """
    key_positions: list[int] = []
    key_value_fns: list = []
    rest_parts: list[int] = []
    for index, (part, spec_part) in enumerate(
        zip(program.sarg_parts, program.sarg_specs)
    ):
        if len(part) == 1 and all(op is CompareOp.EQ for __, op in spec_part[0]):
            for (position, __), (___, value_fn) in zip(spec_part[0], part[0]):
                key_positions.append(position)
                key_value_fns.append(value_fn)
        else:
            rest_parts.append(index)
    return tuple(key_positions), rest_parts, key_value_fns


def _build_buckets(
    snapshot, decode, key_positions: tuple[int, ...]
) -> dict[tuple, list]:
    """Hash-repartition the frozen inner relation by its probe-key columns.

    Built once per statement from the page-store snapshot (no counter
    effects), in (page, slot) order so every bucket preserves the serial
    scan order.  Rows with a NULL key component are excluded: SQL
    equality never matches NULL, exactly as the serial matcher's
    reject-all behaviour for a NULL comparison value.
    """
    buckets: dict[tuple, list] = {}
    get_page = snapshot.get_page
    relation_id = snapshot.relation_id
    for page_id in snapshot.page_ids:
        rows = decode_page_rows(page_id, get_page(page_id), relation_id, decode)
        for item in rows:
            values = item[1]
            key = tuple([values[position] for position in key_positions])
            if None in key:
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [item]
            else:
                bucket.append(item)
    return buckets


def _probe_chunk(
    ctx: ExecContext,
    outer: EvalEnv | None,
    outer_rows: list[Row],
    buckets: dict[tuple, list],
    key_value_fns,
    rest_parts,
    inner_alias: str,
    inner_test,
    residual,
) -> tuple[CostCounters, list[list[Row]]]:
    """One worker task: answer a chunk of probes by hash lookup.

    Per outer row this reproduces exactly what one serial inner scan
    computes — the SARG-matched tuple set (now a bucket plus the residual
    SARG matcher), its RSI charge, the inner residual test, and the join
    residual — against private environments and counters.  The driving
    thread replays the probe's page fetches.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    probe_env = ctx.env(Row(), outer)
    inner_env = ctx.env(Row(), probe_env)
    join_env = ctx.env(Row(), outer)
    no_match: list = []
    results: list[list[Row]] = []
    for outer_row in outer_rows:
        probe_env.row = outer_row
        key = tuple([fn(probe_env) for fn in key_value_fns])
        if None in key:
            matched = no_match
        else:
            matched = buckets.get(key, no_match)
            if matched and rest_parts:
                groups = [
                    [
                        [make(value_fn(probe_env)) for make, value_fn in group]
                        for group in part
                    ]
                    for part in rest_parts
                ]
                rest = and_matcher([dnf_matcher(g) for g in groups])
                if rest is not None:
                    matched = [item for item in matched if rest(item[1])]
        count_rsi(len(matched))
        out: list[Row] = []
        append = out.append
        outer_values = outer_row.values
        outer_tids = outer_row.tids
        for tid, values in matched:
            if inner_test is not None:
                inner_env.row = Row(
                    values={inner_alias: values}, tids={inner_alias: tid}
                )
                if not inner_test(inner_env):
                    continue
            merged = Row(
                values={**outer_values, inner_alias: values},
                tids={**outer_tids, inner_alias: tid},
            )
            if residual is not None:
                join_env.row = merged
                if not residual(join_env):
                    continue
            append(merged)
        results.append(out)
    return counters, results


def parallel_nested_loop_driver(node: NestedLoopJoinNode, ctx: ExecContext):
    """A hash-exchange nested-loop driver, or ``None`` when ineligible.

    Eligible when the inner is a plain segment scan whose SARGs include
    at least one all-equality conjunct and no expression anywhere in the
    probe (SARG values, inner residual, join residual) contains a
    subquery.  The serial driver rescans every inner page per outer row;
    here the relation is hashed once and each probe is a bucket lookup,
    while the per-probe page fetches are replayed through the buffer pool
    so the cost trace is unchanged.
    """
    inner = node.inner
    inner_program: _ScanProgram = _program(inner, ctx, _build_scan)
    if not _segment_scan_eligible(inner, inner_program):
        return None
    if not _subquery_free(_scan_exprs(inner) + list(node.residual)):
        return None
    key_positions, rest_indexes, key_value_fns = _probe_keys(inner_program)
    if not key_positions:
        return None
    rest_parts = [inner_program.sarg_parts[i] for i in rest_indexes]
    residual = _program(node, ctx, _build_nested_loop)
    inner_alias = inner.alias
    inner_test = inner_program.residual
    decode = inner_program.decode_plan.decode
    inner_table = inner.table
    from .fuse import _fused_program

    outer_source = _fused_program(node.outer, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        snapshot = ctx.storage.scan_snapshot(inner_table)
        inner_pages = snapshot.page_ids
        buckets = _build_buckets(snapshot, decode, key_positions)
        # Probe tasks close over the shared buckets and compiled
        # residuals — unpicklable, so the exchange stays on threads
        # whatever REPRO_BACKEND selects for scans.
        backend = get_backend(ctx.workers, "thread")
        fetch = ctx.storage.buffer.fetch
        merge = ctx.storage.counters.merge
        for outer_batch in outer_source(ctx, outer):
            tasks = [
                (
                    lambda rows=outer_batch[lo:hi]: _probe_chunk(
                        ctx,
                        outer,
                        rows,
                        buckets,
                        key_value_fns,
                        rest_parts,
                        inner_alias,
                        inner_test,
                        residual,
                    )
                )
                for lo, hi in partition_ranges(
                    len(outer_batch), max(backend.workers, len(outer_batch) // _PROBE_CHUNK)
                )
            ]
            out: list[Row] = []
            extend = out.extend
            for counters, results in backend.imap(tasks):
                merge(counters)
                for probe_out in results:
                    for page_id in inner_pages:
                        fetch(page_id)
                    extend(probe_out)
            if out:
                yield out

    return driver


# ---------------------------------------------------------------------------
# exchange: partitioned probes over a shared hash-join build table
# ---------------------------------------------------------------------------


def _hash_probe_chunk(
    ctx: ExecContext,
    outer: EvalEnv | None,
    outer_rows: list[Row],
    table: dict[tuple, list[Row]],
    getters,
    residual,
) -> tuple[CostCounters, list[Row]]:
    """One worker task: probe the shared built table for a chunk of rows.

    Per outer row this reproduces exactly what the serial probe loop
    computes — the bucket lookup, its RSI charge (bucket size, before the
    residual), and the join residual — against a private environment and
    private counters.  The table is frozen before any task is submitted
    and probes never touch the buffer pool, so no fetch replay is needed.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    env = ctx.env(Row(), outer)
    out: list[Row] = []
    append = out.append
    for outer_row in outer_rows:
        key = tuple([getter(outer_row) for getter in getters])
        bucket = table.get(key)
        if bucket is None:
            continue
        count_rsi(len(bucket))
        if residual is None:
            for inner_row in bucket:
                append(outer_row.merged(inner_row))
        else:
            for inner_row in bucket:
                merged = outer_row.merged(inner_row)
                env.row = merged
                if residual(env):
                    append(merged)
    return counters, out


def parallel_hash_join_driver(node: HashJoinNode, ctx: ExecContext):
    """A partitioned-probe hash-join driver, or ``None`` when ineligible.

    The build side is consumed serially on the driving thread through the
    same counted inner scan the serial operator uses, so the build's
    fetch/RSI trace is the statement's own.  The finished table is then
    shared read-only: workers answer contiguous chunks of outer-batch
    probes with private counters that the gather merges in chunk order,
    and chunk results concatenate back into the serial emit order.  Grace
    plans (``partitions > 1``) spill through counted temp lists whose
    traffic is inherently serial, so they stay on the serial driver (the
    fuse dispatch never routes them here).
    """
    if not _subquery_free(node.residual):
        return None
    program: _HashJoinProgram = _program(node, ctx, _build_hash_join)
    from .fuse import _fused_program

    outer_source = _fused_program(node.outer, ctx)
    getters = program.outer_getters
    residual = program.residual

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        table = build_hash_table(node, program, ctx, outer)
        # The shared build table and residual closures cannot cross a
        # process boundary; probes pin to the thread backend.
        backend = get_backend(ctx.workers, "thread")
        merge = ctx.storage.counters.merge
        for outer_batch in outer_source(ctx, outer):
            tasks = [
                (
                    lambda rows=outer_batch[lo:hi]: _hash_probe_chunk(
                        ctx, outer, rows, table, getters, residual
                    )
                )
                for lo, hi in partition_ranges(
                    len(outer_batch),
                    max(backend.workers, len(outer_batch) // _PROBE_CHUNK),
                )
            ]
            out: list[Row] = []
            extend = out.extend
            for counters, rows in backend.imap(tasks):
                merge(counters)
                extend(rows)
            if out:
                yield out

    return driver


# ---------------------------------------------------------------------------
# breaker: partial aggregation over scan morsels
# ---------------------------------------------------------------------------


def _agg_partition(
    snapshot,
    decode,
    matcher,
    key_positions: tuple[int, ...],
    arg_positions: tuple[int | None, ...],
    aggregates,
    lo: int,
    hi: int,
) -> tuple[CostCounters, int, list[tuple]]:
    """One thread-pool task: fold a page range into per-group partials.

    The thread twin of :func:`~repro.engine.scheduler.run_agg_morsel`
    (no freeze, no pickle): returns ``(counters, page_count, runs)``
    with runs ``(key, states, tid, values)`` in first-occurrence order
    under streaming (adjacency) group semantics, RSI charged in the
    serial scan's page-aligned batch quanta.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    get_page = snapshot.get_page
    page_ids = snapshot.page_ids
    relation_id = snapshot.relation_id
    runs: list[tuple] = []
    current_key: object = None
    states: list[_AggState] = []
    saw_rows = False
    for index in range(lo, hi):
        page_id = page_ids[index]
        rows = decode_page_rows(page_id, get_page(page_id), relation_id, decode)
        if matcher is not None:
            rows = [item for item in rows if matcher(item[1])]
        for start in range(0, len(rows), DEFAULT_BATCH_SIZE):
            chunk = rows[start : start + DEFAULT_BATCH_SIZE]
            count_rsi(len(chunk))
            for tid, values in chunk:
                key = tuple([values[p] for p in key_positions])
                if not saw_rows or key != current_key:
                    current_key = key
                    states = [_AggState(call) for call in aggregates]
                    runs.append((key, states, tid, values))
                saw_rows = True
                for state, position in zip(states, arg_positions):
                    state.add(None if position is None else values[position])
    return counters, hi - lo, runs


def parallel_aggregate_driver(node: AggregateNode, ctx: ExecContext):
    """A morsel-parallel ``Scan→Aggregate`` driver, or ``None``.

    Eligible exactly where ``fuse._scan_aggregate_driver`` is (bare
    segment scan, no residual, plain-column keys and arguments) plus the
    parallel preconditions (no index access, subquery-free SARG values
    and HAVING).  Workers fold morsels into per-group partial states
    with streaming group semantics; the gather merges a morsel's first
    run into the previous morsel's last run when they share a key
    (:meth:`_AggState.merge` — the mergeable-partial twin of the
    counter-merge discipline), so group boundaries, representatives,
    and results reproduce the serial scan-order fold bit-for-bit.
    Aggregate folds touch no counters, so the fetch replay per morsel
    keeps the serial page trace.
    """
    from .fuse import _collapse

    project, filters, bottom = _collapse(node.child)
    if project is not None or filters or not isinstance(bottom, ScanNode):
        return None
    scan_node = bottom
    scan_program: _ScanProgram = _program(scan_node, ctx, _build_scan)
    if scan_program.residual is not None:
        return None
    if not _segment_scan_eligible(scan_node, scan_program):
        return None
    having_exprs = [] if node.having is None else [node.having]
    if not _subquery_free(_scan_exprs(scan_node) + having_exprs):
        return None
    alias = scan_node.alias
    for column in node.group_by:
        if column.alias != alias:
            return None
    arg_positions: list[int | None] = []
    for call in node.aggregates:
        if call.argument is None:
            arg_positions.append(None)
        elif (
            type(call.argument) is BoundColumn
            and call.argument.alias == alias
        ):
            arg_positions.append(call.argument.position)
        else:
            return None
    positions = tuple(arg_positions)
    key_positions = tuple(column.position for column in node.group_by)
    aggregates = tuple(node.aggregates)
    agg_program = _program(node, ctx, _build_aggregate)
    having = agg_program.having
    grouped = bool(node.group_by)
    decode = scan_program.decode_plan.decode
    table = scan_node.table

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        having_env = None if having is None else ctx.env(Row(), outer)

        def emit(representative: Row, states) -> Row | None:
            results = tuple([state.result() for state in states])
            out = representative.with_alias(AGGREGATE_ALIAS, results)
            if having is not None:
                having_env.row = out
                if having(having_env) is not True:
                    return None
            return out

        emitted: list[Row] = []
        snapshot = ctx.storage.scan_snapshot(table)
        page_ids = snapshot.page_ids
        pending: tuple | None = None  # (key, states, representative Row)
        if page_ids:
            backend = get_backend(ctx.workers, ctx.backend)
            ranges = scan_ranges(len(page_ids), backend.workers)
            if backend.kind == "process":
                sargs = _value_bound_sargs(scan_program, ctx, outer)
                datatypes = tuple(ctx.schemas[alias])
                calls = tuple(
                    AggCallSpec(call.name, position, call.distinct)
                    for call, position in zip(aggregates, positions)
                )
                tasks = [
                    partial(
                        run_agg_morsel,
                        AggMorsel(
                            pages=snapshot.freeze_range(lo, hi),
                            relation_id=snapshot.relation_id,
                            datatypes=datatypes,
                            sargs=sargs,
                            key_positions=key_positions,
                            arg_positions=positions,
                            calls=calls,
                        ),
                    )
                    for lo, hi in ranges
                ]
            else:
                value_env = ctx.env(Row(), outer)
                matcher = compile_sarg_matcher(scan_program, value_env)
                tasks = [
                    (
                        lambda lo=lo, hi=hi: _agg_partition(
                            snapshot,
                            decode,
                            matcher,
                            key_positions,
                            positions,
                            aggregates,
                            lo,
                            hi,
                        )
                    )
                    for lo, hi in ranges
                ]
            fetch = ctx.storage.buffer.fetch
            merge = ctx.storage.counters.merge
            index = 0
            for counters, page_count, runs in backend.imap(tasks):
                merge(counters)
                for __ in range(page_count):
                    fetch(page_ids[index])
                    index += 1
                for key, states, tid, values in runs:
                    if pending is not None and key == pending[0]:
                        # Boundary group continues across the morsel
                        # seam: fold the partial states in.
                        for mine, other in zip(pending[1], states):
                            mine.merge(other)
                    else:
                        if pending is not None:
                            out = emit(pending[2], pending[1])
                            if out is not None:
                                emitted.append(out)
                        pending = (
                            key,
                            states,
                            Row(values={alias: values}, tids={alias: tid}),
                        )
        if pending is not None:
            out = emit(pending[2], pending[1])
            if out is not None:
                emitted.append(out)
        elif not grouped:
            # Aggregates over an empty input still produce one row.
            out = emit(Row(), [_AggState(call) for call in aggregates])
            if out is not None:
                emitted.append(out)
        if emitted:
            yield emitted

    return driver


# ---------------------------------------------------------------------------
# breaker: parallel sorted-run generation
# ---------------------------------------------------------------------------


def parallel_run_sorter(ctx: ExecContext, keys):
    """A drop-in ``run_sorter`` for :class:`ExternalSorter`: per-worker
    sorted slices k-way-merged into one run.

    The workspace splits into contiguous slices, each stably sorted on a
    thread worker (``Row`` objects and key closures do not pickle, so
    the sort breaker always uses the thread backend), and
    ``heapq.merge`` reassembles them — equal keys prefer the earlier
    slice, which combined with slice contiguity and per-slice stability
    reproduces the serial stable sort's order exactly.  Run boundaries,
    contents, and temp-list traffic are untouched, so the sort's cost
    trace is bit-identical to the serial sorter's.
    """
    keys = list(keys)

    def sort_run(rows):
        backend = get_backend(ctx.workers, "thread")
        if backend.workers <= 1 or len(rows) < _SORT_SLICE_MIN_ROWS:
            return _sorted_run(rows, keys)
        slices = [
            rows[lo:hi]
            for lo, hi in partition_ranges(len(rows), backend.workers)
        ]
        tasks = [
            (lambda part=part: _sorted_run(part, keys)) for part in slices
        ]
        ordered = list(backend.imap(tasks))

        def merge_key(row, _keys=keys):
            return _HeapKey(row, _keys)

        return list(heapq.merge(*ordered, key=merge_key))

    return sort_run
