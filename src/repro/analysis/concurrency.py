"""The shared-mutable-state report: concurrency readiness, measured.

The ROADMAP's two parallelism items — snapshot-reader serving and worker
pools over the ``batches()`` seam — both need an *inventory* of every
piece of state two workers could race on.  This module derives that
inventory from the :class:`~repro.analysis.dataflow.ProgramGraph` and
classifies each entry:

- ``immutable-after-init`` — built once, never mutated afterwards
  (lookup tables, interned constants, objects only written in
  ``__init__``);
- ``statement-scoped`` — the owning object lives and dies inside one
  statement execution (runtime subquery caches, decode caches, compiled
  plan programs), so statement-level confinement is the guard;
- ``version-stamped`` — mutations bump a version counter that dependent
  caches compare before trusting their contents (``Catalog.version`` and
  the stat caches keyed on it); detected structurally: a method that
  advances ``self._version`` and rebuilds/clears the state in the same
  breath;
- ``lock-guarded`` — every mutation site sits lexically inside a
  ``with`` block whose context expression names a lock-like object
  (``lock``/``latch``/``mutex``/``cond`` in the name); the serving
  layer's page store, buffer pool, and commit queue live here;
- ``mergeable-counter`` — the :class:`~repro.rss.counters.CostCounters`
  fields, *proven* increment-only and confined to ``rss/`` so per-worker
  copies can merge by summation at a pipeline breaker (the precondition
  for the ROADMAP's counter-merge design);
- ``driver-confined`` — mutated only by the single driving thread of a
  parallel statement; workers see it through read-only snapshots
  (``ScanSnapshot``) or never at all (the buffer pool, whose fetch trace
  the driver replays serially at the gather point);
- ``UNGUARDED`` — none of the above.

Unguarded state is a violation unless the committed baseline
(``analysis/concurrency_baseline.toml``) acknowledges it: the baseline is
a reviewed ratchet — existing known state is listed with a justification,
and any *new* unguarded shared state fails ``repro check --concurrency``.
State whose mutation sites are reachable from the parallel paths (the
fused drivers of ``engine/fuse.py``, the compiled closures of
``engine/compile.py``, the worker tasks and gather drivers of
``engine/parallel.py``, ``batches()`` in ``rss/scan.py``) is flagged
``parallel: yes`` — that subset is the worklist parallel execution must
guard before it can grow.

An in-source trailing comment ``# concurrency: statement-scoped`` (on the
declaration line or the line above) classifies state where the
justification belongs next to the code; the baseline file covers the
rest.
"""

from __future__ import annotations

import ast
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from .dataflow import ClassInfo, Mutation, ProgramGraph
from .plan_check import Violation

#: Every classification the report can assign.
CLASSIFICATIONS = (
    "immutable-after-init",
    "statement-scoped",
    "version-stamped",
    "lock-guarded",
    "mergeable-counter",
    "driver-confined",
    "UNGUARDED",
)

#: The CostCounters fields whose mergeability is audited.
COUNTER_FIELDS = ("page_fetches", "rsi_calls", "buffer_hits")

#: Roots of the future parallel execution paths (module prefix or exact
#: function qualname): state mutated under these must not stay unguarded.
PARALLEL_ROOT_MODULES = (
    "engine/fuse.py",
    "engine/compile.py",
    "engine/parallel.py",
    "engine/scheduler.py",
)
PARALLEL_ROOT_FUNCTIONS = (
    "rss/scan.py::SegmentScan.batches",
    "rss/scan.py::IndexScan.batches",
)

#: Attribute names matched to declaring classes only when the name is
#: this distinctive (declared by at most this many classes): common names
#: would otherwise attribute unrelated mutations to everyone.
_MAX_DECLARING_CLASSES = 3

#: Modules outside the report's scope: the analysis framework runs in its
#: own ``repro check`` process and is never on an engine execution path.
_EXCLUDED_PREFIXES = ("analysis/",)


@dataclass
class Finding:
    """One piece of shared mutable state."""

    key: str  # "module::Name" or "module::Class.attr"
    kind: str  # "module-global" | "class-attr" | "counter-field"
    classification: str
    #: Where the classification came from: "auto", "annotation", "baseline".
    source: str
    reason: str
    sites: list[str] = field(default_factory=list)
    parallel: bool = False

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "key": self.key,
            "kind": self.kind,
            "classification": self.classification,
            "source": self.source,
            "reason": self.reason,
            "sites": list(self.sites),
            "parallel": self.parallel,
        }


@dataclass
class ConcurrencyReport:
    """Findings plus the violations they imply under the baseline."""

    findings: list[Finding]
    violations: list[Violation]

    def by_classification(self) -> dict[str, list[Finding]]:
        grouped: dict[str, list[Finding]] = {c: [] for c in CLASSIFICATIONS}
        for finding in self.findings:
            grouped.setdefault(finding.classification, []).append(finding)
        return grouped

    def finding(self, key: str) -> Finding | None:
        for candidate in self.findings:
            if candidate.key == key:
                return candidate
        return None


def default_baseline_path() -> Path:
    """The committed baseline next to this module."""
    return Path(__file__).resolve().parent / "concurrency_baseline.toml"


# ---------------------------------------------------------------------------
# the analysis
# ---------------------------------------------------------------------------


def analyze_concurrency(
    graph: ProgramGraph, baseline_path: Path | None = None
) -> ConcurrencyReport:
    """Build the shared-mutable-state report for a program graph."""
    baseline, baseline_errors = _load_baseline(
        default_baseline_path() if baseline_path is None else baseline_path
    )
    parallel_functions = _parallel_reachable(graph)

    findings: list[Finding] = []
    findings.extend(_module_global_findings(graph, parallel_functions))
    findings.extend(_class_attr_findings(graph, parallel_functions))
    counter_findings, counter_violations = _audit_counters(
        graph, parallel_functions
    )
    findings.extend(counter_findings)
    findings.sort(key=lambda f: f.key)

    violations: list[Violation] = list(baseline_errors)
    violations.extend(counter_violations)
    known_keys = {finding.key for finding in findings}
    for key, entry in baseline.items():
        if key not in known_keys:
            violations.append(
                Violation(
                    "stale-baseline",
                    key,
                    "baseline entry does not match any current finding; "
                    "remove it so the baseline stays an honest inventory",
                )
            )
    for finding in findings:
        entry = baseline.get(finding.key)
        if finding.classification != "UNGUARDED":
            if entry is not None:
                violations.append(
                    Violation(
                        "stale-baseline",
                        finding.key,
                        f"already classified {finding.classification} "
                        f"({finding.source}); drop the baseline entry",
                    )
                )
            continue
        if entry is not None:
            # The baseline either reclassifies the finding or acknowledges
            # it as known-unguarded; both carry the reviewed reason.
            finding.classification = str(entry["classification"])
            finding.source = "baseline"
            finding.reason = str(entry["reason"])
        else:
            rule = (
                "unguarded-parallel-state"
                if finding.parallel
                else "unguarded-shared-state"
            )
            scope = (
                "reachable from the parallel execution paths "
                "(fused drivers / compiled closures / batches())"
                if finding.parallel
                else "not currently on a parallel path"
            )
            violations.append(
                Violation(
                    rule,
                    finding.key,
                    f"new unguarded shared mutable state, {scope}; mutated "
                    f"at {', '.join(finding.sites[:4]) or 'declaration'} — "
                    "guard it (confine, version-stamp, or make it "
                    "mergeable) or acknowledge it in "
                    "analysis/concurrency_baseline.toml",
                )
            )
    return ConcurrencyReport(findings=findings, violations=violations)


# -- baseline ---------------------------------------------------------------


def _load_baseline(
    path: Path,
) -> tuple[dict[str, dict], list[Violation]]:
    violations: list[Violation] = []
    if not path.exists():
        return {}, violations
    try:
        with path.open("rb") as handle:
            raw = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as error:
        return {}, [Violation("baseline-unreadable", str(path), str(error))]
    entries: dict[str, dict] = {}
    for key, entry in raw.items():
        if not isinstance(entry, dict):
            violations.append(
                Violation(
                    "baseline-malformed",
                    key,
                    "baseline entries must be tables with 'classification' "
                    "and 'reason'",
                )
            )
            continue
        classification = entry.get("classification")
        if classification not in CLASSIFICATIONS:
            violations.append(
                Violation(
                    "baseline-malformed",
                    key,
                    f"unknown classification {classification!r}; one of "
                    f"{', '.join(CLASSIFICATIONS)} required",
                )
            )
            continue
        if not entry.get("reason"):
            violations.append(
                Violation(
                    "baseline-malformed",
                    key,
                    "baseline entries need a 'reason' a reviewer signed "
                    "off on",
                )
            )
            continue
        entries[key] = entry
    return entries, violations


def render_baseline(findings: list[Finding]) -> str:
    """Draft baseline TOML for every currently-unacknowledged finding.

    Drafted entries keep classification ``UNGUARDED`` on purpose: the
    check stays red until a human replaces each with a real
    classification and reason — the review *is* the workflow.
    """
    lines = [
        "# Shared-mutable-state baseline (repro check --concurrency).",
        "# Every entry acknowledges one finding; 'reason' is the reviewed",
        "# justification. New unguarded state not listed here fails CI.",
        "",
    ]
    for finding in findings:
        if finding.classification != "UNGUARDED" or finding.source != "auto":
            continue
        lines.append(f'["{finding.key}"]')
        lines.append('classification = "UNGUARDED"  # FIXME: classify')
        lines.append('reason = ""  # FIXME: justify')
        if finding.sites:
            lines.append(f"# mutated at: {', '.join(finding.sites[:6])}")
        if finding.parallel:
            lines.append("# NOTE: reachable from the parallel paths")
        lines.append("")
    return "\n".join(lines)


# -- parallel-path reachability ---------------------------------------------


def _parallel_reachable(graph: ProgramGraph) -> set[str]:
    roots = [
        qualname
        for qualname, func in graph.functions.items()
        if func.module in PARALLEL_ROOT_MODULES
    ]
    roots.extend(PARALLEL_ROOT_FUNCTIONS)
    return graph.reachable(roots)


# -- module-level globals ---------------------------------------------------


def _module_global_findings(
    graph: ProgramGraph, parallel_functions: set[str]
) -> list[Finding]:
    mutation_sites: dict[tuple[str, str], list[tuple[str, int]]] = {}
    for qualname, mutations in graph.mutations.items():
        func = graph.functions[qualname]
        for mutation in mutations:
            if mutation.kind in ("global", "global-attr"):
                key = (func.module, mutation.target)
                mutation_sites.setdefault(key, []).append(
                    (qualname, mutation.lineno)
                )

    findings: list[Finding] = []
    for module in graph.modules.values():
        if module.relpath.startswith(_EXCLUDED_PREFIXES):
            continue
        for var in module.globals.values():
            sites = mutation_sites.get((module.relpath, var.name), [])
            if var.kind == "other" and not sites:
                continue  # constants (Structs, interned strings, numbers)
            annotation = _annotation(module.source_lines, var.lineno)
            if sites:
                classification, source, reason = _classify_mutable(
                    annotation,
                    default_reason="module-level mutable mutated at runtime",
                )
            else:
                classification, source, reason = (
                    "immutable-after-init",
                    "auto",
                    "module-level container never mutated after import",
                )
            findings.append(
                Finding(
                    key=var.key,
                    kind="module-global",
                    classification=classification,
                    source=source,
                    reason=reason,
                    sites=_format_sites(graph, sites),
                    parallel=any(q in parallel_functions for q, __ in sites),
                )
            )
    return findings


def _classify_mutable(
    annotation: str | None, default_reason: str
) -> tuple[str, str, str]:
    if annotation is not None:
        return annotation, "annotation", "classified at the declaration site"
    return "UNGUARDED", "auto", default_reason


# -- lock-guarded detection -------------------------------------------------

#: Name fragments that mark a with-block's context object as a lock.
_LOCKISH_NAMES = ("lock", "latch", "mutex", "cond")


def _is_lockish(node: ast.expr) -> bool:
    """Whether a with-item expression names a lock-like object."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        else:
            continue
        lowered = name.lower()
        if any(token in lowered for token in _LOCKISH_NAMES):
            return True
    return False


def _lock_ranges(graph: ProgramGraph) -> dict[str, list[tuple[int, int]]]:
    """Per module, the line spans of with-blocks that hold a lock."""
    ranges: dict[str, list[tuple[int, int]]] = {}
    for relpath, module in graph.modules.items():
        spans: list[tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None:
                continue
            if any(_is_lockish(item.context_expr) for item in node.items):
                spans.append((node.lineno, end))
        if spans:
            ranges[relpath] = spans
    return ranges


def _all_sites_locked(
    graph: ProgramGraph,
    lock_ranges: dict[str, list[tuple[int, int]]],
    sites: list[tuple[str, int]],
) -> bool:
    """Whether every mutation site sits inside a with-lock block."""
    if not sites:
        return False
    for qualname, lineno in sites:
        func = graph.functions.get(qualname)
        if func is None:
            return False
        spans = lock_ranges.get(func.module, ())
        if not any(start <= lineno <= end for start, end in spans):
            return False
    return True


# -- class attributes -------------------------------------------------------


def _class_attr_findings(
    graph: ProgramGraph, parallel_functions: set[str]
) -> list[Finding]:
    # self-attr mutations outside __init__, grouped per (class, attr).
    self_sites: dict[tuple[str, str, str], list[tuple[str, int]]] = {}
    version_stamped: set[tuple[str, str, str]] = set()
    for qualname, mutations in graph.mutations.items():
        func = graph.functions[qualname]
        if func.klass is None:
            continue
        if func.name in ("__init__", "__post_init__"):
            continue
        attrs_here = {
            m.target for m in mutations if m.kind == "self-attr"
        }
        for mutation in mutations:
            if mutation.kind != "self-attr":
                continue
            key = (func.module, func.klass, mutation.target)
            self_sites.setdefault(key, []).append((qualname, mutation.lineno))
        # Version-stamp detection: this method advances the version field
        # and rebuilds other attributes in the same breath.  The version
        # field itself is the stamp, so it carries its own classification.
        if "_version" in attrs_here or "version" in attrs_here:
            for attr in attrs_here:
                version_stamped.add((func.module, func.klass, attr))

    # param-attr / unknown-attr mutations matched by distinctive attr name.
    for qualname, mutations in graph.mutations.items():
        func = graph.functions[qualname]
        for mutation in mutations:
            if mutation.kind not in ("param-attr", "unknown-attr"):
                continue
            if mutation.target in ("[]=",):
                continue
            declaring = graph.classes_declaring(mutation.target)
            if not declaring or len(declaring) > _MAX_DECLARING_CLASSES:
                continue
            for klass in declaring:
                if func.klass == klass.name and func.module == klass.module:
                    continue  # already counted as a self mutation
                key = (klass.module, klass.name, mutation.target)
                self_sites.setdefault(key, []).append(
                    (qualname, mutation.lineno)
                )

    lock_ranges = _lock_ranges(graph)
    findings: list[Finding] = []
    for (module_path, class_name, attr), sites in self_sites.items():
        if module_path.startswith(_EXCLUDED_PREFIXES):
            continue
        klass = graph.class_of(module_path, class_name)
        if klass is None:
            continue
        if attr in COUNTER_FIELDS and class_name == "CostCounters":
            continue  # audited separately, classification mergeable-counter
        annotation = _attr_annotation(graph, klass, attr)
        if annotation is not None:
            classification, source, reason = (
                annotation,
                "annotation",
                "classified at the declaration site",
            )
        elif _all_sites_locked(graph, lock_ranges, sites):
            classification, source, reason = (
                "lock-guarded",
                "auto",
                "every mutation site sits inside a with-block holding a "
                "lock-named object",
            )
        elif (module_path, class_name, attr) in version_stamped:
            classification, source, reason = (
                "version-stamped",
                "auto",
                "rebuilt by the method that advances the class's version "
                "counter; staleness is one int compare",
            )
        else:
            classification, source, reason = (
                "UNGUARDED",
                "auto",
                "instance attribute mutated outside __init__",
            )
        findings.append(
            Finding(
                key=f"{module_path}::{class_name}.{attr}",
                kind="class-attr",
                classification=classification,
                source=source,
                reason=reason,
                sites=_format_sites(graph, sorted(set(sites))),
                parallel=any(q in parallel_functions for q, __ in sites),
            )
        )
    return findings


# -- CostCounters mergeability ----------------------------------------------


def _audit_counters(
    graph: ProgramGraph, parallel_functions: set[str]
) -> tuple[list[Finding], list[Violation]]:
    """Prove the cost counters stay confined to rss/ and increment-only.

    Per-worker counters can merge by summation only if every mutation is
    an increment (``+=``) — plus ``reset()`` zeroing and dataclass
    defaults inside :mod:`repro.rss.counters` itself.  Any other write
    anywhere breaks the ROADMAP's counter-merge design and is reported.
    """
    violations: list[Violation] = []
    sites: dict[str, list[tuple[str, int]]] = {f: [] for f in COUNTER_FIELDS}
    broken: set[str] = set()
    for relpath, module in graph.modules.items():
        for node in ast.walk(module.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr in COUNTER_FIELDS
                ):
                    continue
                where = f"{relpath}:{node.lineno}"
                qualname = _enclosing_function(graph, relpath, node.lineno)
                if qualname:
                    sites[target.attr].append((qualname, node.lineno))
                if not relpath.startswith("rss/"):
                    broken.add(target.attr)
                    violations.append(
                        Violation(
                            "counter-confinement",
                            where,
                            f"cost counter {target.attr!r} mutated outside "
                            "rss/; per-worker merge needs all counting in "
                            "the storage layer",
                        )
                    )
                elif isinstance(node, ast.AugAssign):
                    if not isinstance(node.op, ast.Add):
                        broken.add(target.attr)
                        violations.append(
                            Violation(
                                "counter-not-mergeable",
                                where,
                                f"cost counter {target.attr!r} mutated with "
                                "a non-additive operator; per-worker "
                                "counters merge by summation, so only += "
                                "is mergeable",
                            )
                        )
                elif relpath != "rss/counters.py":
                    broken.add(target.attr)
                    violations.append(
                        Violation(
                            "counter-not-mergeable",
                            where,
                            f"cost counter {target.attr!r} overwritten "
                            "outside rss/counters.py; absolute writes do "
                            "not merge across workers",
                        )
                    )
    findings = [
        Finding(
            key=f"rss/counters.py::CostCounters.{fieldname}",
            kind="counter-field",
            classification=(
                "UNGUARDED" if fieldname in broken else "mergeable-counter"
            ),
            source="auto",
            reason=(
                "increment-only and confined to rss/ (verified); "
                "per-worker copies merge by summation at a pipeline "
                "breaker"
                if fieldname not in broken
                else "counter mutated in a non-mergeable way; see violations"
            ),
            sites=_format_sites(graph, sites[fieldname]),
            parallel=any(
                q in parallel_functions for q, __ in sites[fieldname]
            ),
        )
        for fieldname in COUNTER_FIELDS
    ]
    return findings, violations


def _enclosing_function(
    graph: ProgramGraph, relpath: str, lineno: int
) -> str | None:
    best: str | None = None
    best_line = -1
    for qualname, func in graph.functions.items():
        if func.module != relpath:
            continue
        node = func.node
        end = getattr(node, "end_lineno", None)
        if node is None or end is None:
            continue
        if func.lineno <= lineno <= end and func.lineno > best_line:
            best, best_line = qualname, func.lineno
    return best


# -- annotations ------------------------------------------------------------


def _annotation(source_lines: list[str], lineno: int) -> str | None:
    """``# concurrency: <class>`` on the line or the line above."""
    for line_index in (lineno - 1, lineno - 2):
        if not 0 <= line_index < len(source_lines):
            continue
        line = source_lines[line_index]
        marker = "# concurrency:"
        position = line.find(marker)
        if position < 0:
            continue
        word = line[position + len(marker) :].strip().split()[0:1]
        if word and word[0] in CLASSIFICATIONS and word[0] != "UNGUARDED":
            return word[0]
    return None


def _attr_annotation(
    graph: ProgramGraph, klass: ClassInfo, attr: str
) -> str | None:
    """Attr-line annotation, falling back to one on the class def line.

    A class-level ``# concurrency: statement-scoped`` classifies every
    attribute of the class at once — the idiom for per-statement worker
    objects (parsers, binders, runtimes) whose whole instance shares one
    lifetime.
    """
    module = graph.modules.get(klass.module)
    if module is None:
        return None
    lineno = klass.attrs.get(attr)
    if lineno is not None:
        found = _annotation(module.source_lines, lineno)
        if found is not None:
            return found
    return _annotation(module.source_lines, klass.lineno)


# -- rendering --------------------------------------------------------------


def _format_sites(
    graph: ProgramGraph, sites: list[tuple[str, int]]
) -> list[str]:
    formatted = []
    for qualname, lineno in sorted(set(sites)):
        func = graph.functions.get(qualname)
        module = func.module if func else "?"
        formatted.append(f"{module}:{lineno} ({qualname.split('::')[-1]})")
    return formatted


def render_report(report: ConcurrencyReport) -> list[str]:
    """Human-readable report lines (one classification per section)."""
    lines: list[str] = []
    grouped = report.by_classification()
    for classification in CLASSIFICATIONS:
        findings = grouped.get(classification, [])
        if not findings:
            continue
        lines.append(f"{classification} ({len(findings)}):")
        for finding in findings:
            marker = " [parallel path]" if finding.parallel else ""
            suffix = "" if finding.source == "auto" else f" ({finding.source})"
            lines.append(f"  {finding.key}{suffix}{marker}")
            if classification == "UNGUARDED" and finding.sites:
                lines.append(f"    mutated at {', '.join(finding.sites[:4])}")
    return lines
