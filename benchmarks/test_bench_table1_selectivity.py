"""E1 — TABLE 1: predicted selectivity factors vs measured fractions.

For every predicate kind of TABLE 1 we generate data with a known
distribution, ask the estimator for F, and measure the true fraction of
tuples satisfying the predicate.  The paper's formulas are exact for the
indexed/uniform cases and deliberate guesses elsewhere; the table shows
which is which.
"""

import pytest

from repro.optimizer.binder import Binder
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement
from repro.workloads import build_database, ColumnSpec, IndexSpec, TableSpec

ROWS = 4000


@pytest.fixture(scope="module")
def db():
    spec = [
        TableSpec(
            name="S",
            rows=ROWS,
            columns=[
                ColumnSpec("KEYED", distinct=80),  # indexed, uniform
                ColumnSpec("PLAIN", distinct=80),  # same data, no index
                ColumnSpec("RNG", distinct=1000),  # indexed, for ranges
            ],
            indexes=[
                IndexSpec("S_KEYED", ["KEYED"]),
                IndexSpec("S_RNG", ["RNG"]),
            ],
        ),
        TableSpec(
            name="S2",
            rows=500,
            columns=[ColumnSpec("KEYED", distinct=80), ColumnSpec("FLAG", distinct=4)],
            indexes=[IndexSpec("S2_KEYED", ["KEYED"])],
        ),
    ]
    return build_database(spec, seed=99)


PREDICATES = [
    ("column = value (indexed)", "KEYED = 17", "1/ICARD"),
    ("column = value (no index)", "PLAIN = 17", "1/10 guess"),
    ("column <> value", "KEYED <> 17", "1 - 1/ICARD"),
    ("column > value", "RNG > 750", "interpolation"),
    ("column < value", "RNG < 250", "interpolation"),
    ("column BETWEEN", "RNG BETWEEN 250 AND 500", "interpolation"),
    ("column IN (list)", "KEYED IN (1, 2, 3, 4)", "n/ICARD"),
    ("pred OR pred", "KEYED = 1 OR RNG > 900", "f1+f2-f1*f2"),
    ("pred AND pred", "KEYED = 1 AND RNG > 500", "f1*f2"),
    ("NOT pred", "NOT KEYED = 17", "1-f"),
    (
        "column IN (subquery)",
        "KEYED IN (SELECT KEYED FROM S2 WHERE FLAG = 1)",
        "qcard ratio",
    ),
]


def test_table1_selectivity(db, report, benchmark):
    estimator = SelectivityEstimator(db.catalog)

    def estimate_all():
        results = []
        for __, where, ___ in PREDICATES:
            block = Binder(db.catalog).bind(
                parse_statement(f"SELECT * FROM S WHERE {where}")
            )
            factors = to_cnf_factors(block.where, block)
            f = 1.0
            for factor in factors:
                f *= estimator.factor_selectivity(factor)
            results.append(f)
        return results

    predicted = benchmark(estimate_all)

    rows = []
    max_exact_error = 0.0
    for (label, where, formula), f in zip(PREDICATES, predicted):
        actual = (
            db.execute(f"SELECT COUNT(*) FROM S WHERE {where}").scalar() / ROWS
        )
        error = abs(f - actual)
        if formula in ("1/ICARD", "interpolation", "n/ICARD", "1 - 1/ICARD"):
            max_exact_error = max(max_exact_error, error)
        rows.append([label, formula, f, actual, error])

    report.line("E1 / TABLE 1 — selectivity factor F: predicted vs measured")
    report.line(f"relation S: NCARD={ROWS}")
    report.table(
        ["predicate", "formula", "F (pred)", "F (meas)", "abs err"],
        rows,
        widths=[30, 16, 12, 12, 12],
    )
    report.line()
    report.line(
        "Statistics-backed formulas (ICARD / interpolation) track the truth;"
    )
    report.line("the 1/10-style defaults are the paper's deliberate guesses.")
    # The statistics-driven formulas must be accurate on uniform data.
    assert max_exact_error < 0.08
