"""Unit tests for CNF conversion, sargability, and index matching."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import FLOAT, INTEGER, varchar
from repro.optimizer.binder import Binder
from repro.optimizer.predicates import (
    match_index,
    join_factor_as_sarg,
    partition_factors,
    to_cnf_factors,
)
from repro.rss.sargs import CompareOp
from repro.sql import ast, parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP",
        [
            ("ENO", INTEGER),
            ("NAME", varchar(20)),
            ("DNO", INTEGER),
            ("JOB", INTEGER),
            ("SAL", FLOAT),
        ],
    )
    catalog.create_table("DEPT", [("DNO", INTEGER), ("LOC", varchar(20))])
    return catalog


def factors_for(catalog, where):
    block = Binder(catalog).bind(
        parse_statement(f"SELECT * FROM EMP, DEPT WHERE {where}")
    )
    return block, to_cnf_factors(block.where, block)


def single_table_factors(catalog, where):
    block = Binder(catalog).bind(
        parse_statement(f"SELECT * FROM EMP WHERE {where}")
    )
    return block, to_cnf_factors(block.where, block)


class TestCnf:
    def test_conjunction_splits(self, catalog):
        __, factors = single_table_factors(catalog, "DNO = 1 AND SAL > 2")
        assert len(factors) == 2

    def test_disjunction_is_one_factor(self, catalog):
        __, factors = single_table_factors(catalog, "DNO = 1 OR SAL > 2")
        assert len(factors) == 1

    def test_or_distributes_over_and(self, catalog):
        # (a AND b) OR c  ->  (a OR c) AND (b OR c)
        __, factors = single_table_factors(
            catalog, "(DNO = 1 AND SAL > 2) OR ENO = 3"
        )
        assert len(factors) == 2
        assert all(isinstance(factor.expr, ast.Or) for factor in factors)

    def test_not_pushed_to_comparison(self, catalog):
        __, factors = single_table_factors(catalog, "NOT DNO = 1")
        comparison = factors[0].expr
        assert isinstance(comparison, ast.Comparison)
        assert comparison.op is CompareOp.NE

    def test_not_between_becomes_or(self, catalog):
        __, factors = single_table_factors(catalog, "NOT (SAL BETWEEN 1 AND 2)")
        assert isinstance(factors[0].expr, ast.Or)

    def test_de_morgan(self, catalog):
        # NOT (a OR b)  ->  NOT a AND NOT b  ->  two factors
        __, factors = single_table_factors(catalog, "NOT (DNO = 1 OR ENO = 2)")
        assert len(factors) == 2

    def test_not_in_list(self, catalog):
        __, factors = single_table_factors(catalog, "DNO NOT IN (1, 2)")
        assert len(factors) == 2  # two <> conjuncts

    def test_empty_where(self, catalog):
        block = Binder(catalog).bind(parse_statement("SELECT * FROM EMP"))
        assert to_cnf_factors(block.where, block) == []


class TestSargability:
    def test_simple_equal_is_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "DNO = 5")
        assert factors[0].sarg is not None

    def test_flipped_comparison_is_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "5 < DNO")
        sarg = factors[0].sarg
        assert sarg is not None
        assert sarg.groups[0][0].op is CompareOp.GT

    def test_between_is_one_group(self, catalog):
        __, factors = single_table_factors(catalog, "SAL BETWEEN 1 AND 2")
        groups = factors[0].sarg.groups
        assert len(groups) == 1
        assert [pred.op for pred in groups[0]] == [CompareOp.GE, CompareOp.LE]

    def test_in_list_is_dnf(self, catalog):
        __, factors = single_table_factors(catalog, "DNO IN (1, 2, 3)")
        assert len(factors[0].sarg.groups) == 3

    def test_or_of_same_table_preds_is_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "DNO = 1 OR SAL > 9")
        assert factors[0].sarg is not None
        assert len(factors[0].sarg.groups) == 2

    def test_arithmetic_left_side_not_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "SAL + 1 > 9")
        assert factors[0].sarg is None

    def test_like_not_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "NAME LIKE 'A%'")
        assert factors[0].sarg is None

    def test_column_to_column_same_table_not_sargable(self, catalog):
        __, factors = single_table_factors(catalog, "ENO = DNO")
        assert factors[0].sarg is None
        assert factors[0].join is None  # same relation, not a join

    def test_uncorrelated_scalar_subquery_value_is_sargable(self, catalog):
        __, factors = single_table_factors(
            catalog, "SAL > (SELECT AVG(SAL) FROM EMP)"
        )
        assert factors[0].sarg is not None


class TestJoinPredicates:
    def test_equijoin_detected(self, catalog):
        __, factors = factors_for(catalog, "EMP.DNO = DEPT.DNO")
        join = factors[0].join
        assert join is not None
        assert join.is_equijoin
        assert {join.left.alias, join.right.alias} == {"EMP", "DEPT"}

    def test_non_equijoin_detected(self, catalog):
        __, factors = factors_for(catalog, "EMP.DNO < DEPT.DNO")
        assert factors[0].join is not None
        assert not factors[0].join.is_equijoin

    def test_or_across_tables_is_not_join(self, catalog):
        __, factors = factors_for(catalog, "EMP.DNO = 1 OR DEPT.DNO = 2")
        assert factors[0].join is None
        assert len(factors[0].aliases) == 2

    def test_join_as_probe_sarg(self, catalog):
        __, factors = factors_for(catalog, "EMP.DNO = DEPT.DNO")
        sarg = join_factor_as_sarg(factors[0], "EMP")
        assert sarg is not None
        assert sarg.column.alias == "EMP"
        assert sarg.op is CompareOp.EQ


class TestPartition:
    def test_roles(self, catalog):
        block, factors = factors_for(
            catalog,
            "EMP.DNO = DEPT.DNO AND EMP.SAL > 5 AND "
            "(EMP.ENO = 1 OR DEPT.LOC = 'X') AND 1 = 1",
        )
        partition = partition_factors(factors, block.aliases)
        assert len(partition.joins) == 1
        assert len(partition.local["EMP"]) == 1
        assert len(partition.multi) == 1
        assert len(partition.constant) == 1


class TestIndexMatching:
    def test_single_column_equality(self, catalog):
        catalog.create_index("EMP_DNO", "EMP", ["DNO"])
        __, factors = single_table_factors(catalog, "DNO = 5 AND SAL > 2")
        match = match_index(catalog.index("EMP_DNO"), factors, "EMP")
        assert len(match.equal_prefix) == 1
        assert len(match.matched_factors) == 1

    def test_composite_prefix(self, catalog):
        catalog.create_index("EMP_COMP", "EMP", ["DNO", "JOB", "ENO"])
        __, factors = single_table_factors(
            catalog, "DNO = 5 AND JOB = 2 AND ENO > 7"
        )
        match = match_index(catalog.index("EMP_COMP"), factors, "EMP")
        assert len(match.equal_prefix) == 2
        assert len(match.range_sargs) == 1

    def test_prefix_stops_at_gap(self, catalog):
        catalog.create_index("EMP_COMP", "EMP", ["DNO", "JOB", "ENO"])
        # No predicate on JOB: ENO cannot be used.
        __, factors = single_table_factors(catalog, "DNO = 5 AND ENO = 7")
        match = match_index(catalog.index("EMP_COMP"), factors, "EMP")
        assert len(match.equal_prefix) == 1
        assert not match.range_sargs

    def test_range_on_first_column(self, catalog):
        catalog.create_index("EMP_SAL", "EMP", ["SAL"])
        __, factors = single_table_factors(catalog, "SAL BETWEEN 10 AND 20")
        match = match_index(catalog.index("EMP_SAL"), factors, "EMP")
        assert not match.equal_prefix
        assert len(match.range_sargs) == 2

    def test_unique_equal(self, catalog):
        catalog.create_index("EMP_ENO", "EMP", ["ENO"], unique=True)
        __, factors = single_table_factors(catalog, "ENO = 7")
        match = match_index(catalog.index("EMP_ENO"), factors, "EMP")
        assert match.is_unique_equal

    def test_in_list_does_not_bound_scan(self, catalog):
        catalog.create_index("EMP_DNO", "EMP", ["DNO"])
        __, factors = single_table_factors(catalog, "DNO IN (1, 2)")
        match = match_index(catalog.index("EMP_DNO"), factors, "EMP")
        assert not match.matches_anything

    def test_no_match(self, catalog):
        catalog.create_index("EMP_DNO", "EMP", ["DNO"])
        __, factors = single_table_factors(catalog, "SAL > 5")
        match = match_index(catalog.index("EMP_DNO"), factors, "EMP")
        assert not match.matches_anything
        assert not match.is_unique_equal
