"""The public error hierarchy and API surface."""

import pytest

import repro
from repro.errors import (
    CatalogError,
    ExecutionError,
    FaultInjectedError,
    IntegrityError,
    LexerError,
    PageFullError,
    ParseError,
    PlannerError,
    RecordTooLargeError,
    RecoveryError,
    ReproError,
    SemanticError,
    SimulatedCrash,
    SqlError,
    StorageError,
    TornPageError,
    TupleTooLargeError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            CatalogError,
            ExecutionError,
            FaultInjectedError,
            IntegrityError,
            LexerError,
            PageFullError,
            ParseError,
            PlannerError,
            RecordTooLargeError,
            RecoveryError,
            SemanticError,
            SimulatedCrash,
            SqlError,
            StorageError,
            TornPageError,
            TupleTooLargeError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_sql_errors_grouped(self):
        assert issubclass(LexerError, SqlError)
        assert issubclass(ParseError, SqlError)
        assert issubclass(SemanticError, SqlError)

    def test_storage_errors_grouped(self):
        assert issubclass(PageFullError, StorageError)
        assert issubclass(TupleTooLargeError, StorageError)
        assert issubclass(RecordTooLargeError, PageFullError)
        assert issubclass(FaultInjectedError, StorageError)
        assert issubclass(SimulatedCrash, StorageError)
        assert issubclass(TornPageError, StorageError)
        assert issubclass(RecoveryError, StorageError)

    def test_record_too_large_carries_sizes(self):
        error = RecordTooLargeError(9000, 4088)
        assert error.record_size == 9000
        assert error.usable_size == 4088
        assert "9000" in str(error) and "4088" in str(error)

    def test_torn_page_names_the_page(self):
        error = TornPageError(42, 0x1234, 0x5678)
        assert error.page_id == 42
        assert "42" in str(error)

    def test_lexer_error_position(self):
        error = LexerError("bad char", 17)
        assert error.position == 17
        assert "17" in str(error)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_one_catch_all(self):
        """A caller can wrap any library failure with one except clause."""
        db = repro.Database()
        failures = 0
        for sql in (
            "SELECT FROM",  # parse error
            "SELECT * FROM NOPE",  # semantic error
            "INSERT INTO NOPE VALUES (1)",  # semantic error
        ):
            try:
                db.execute(sql)
            except repro.ReproError:
                failures += 1
        assert failures == 3
