"""Deterministic fault injection for the storage layer.

The RSS threads named *fault points* through its mutation and commit
paths (``segment.insert``, ``btree.split``, ``pagetable.flip``, ``fsync``,
...).  In production they are inert flag checks; a test arms a
:class:`FaultPlan` and the Nth hit of the chosen point raises a typed
:class:`~repro.errors.StorageError` — or a :class:`SimulatedCrash`, which
snapshots the durable backing file at the instant of failure so the test
can re-open it through recovery, exactly as a restart after a real crash
would.

Determinism is the point: the same plan against the same workload fails
at the same instruction every time, so the fault matrix in the test
suite is reproducible.  Plans can also be armed from the environment::

    REPRO_FAULTS="btree.insert@2:error" python -m repro ...
    REPRO_FAULTS="pagetable.flip@1:crash" ...

Fault points are registered at import time by the modules that host
them; :func:`registered_points` enumerates them for matrix tests.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from ..errors import FaultInjectedError, SimulatedCrash, StorageError

if TYPE_CHECKING:
    from .disk import DiskManager

#: Every fault point name declared by the storage layer, in declaration
#: order.  ``register_point`` adds to this; tests iterate it.
_REGISTERED: dict[str, str] = {}  # concurrency: immutable-after-init


def register_point(name: str, description: str) -> str:
    """Declare a fault point; returns the name for use with :func:`trip`."""
    _REGISTERED[name] = description
    return name


def registered_points() -> dict[str, str]:
    """All declared fault point names mapped to their descriptions."""
    return dict(_REGISTERED)


class FaultPlan:
    """Arm one fault point to fail on its Nth hit.

    ``action`` is ``"error"`` (raise ``error_type``, default
    :class:`FaultInjectedError`) or ``"crash"`` (raise
    :class:`SimulatedCrash` carrying a snapshot of the backing file).
    """

    def __init__(
        self,
        point: str,
        hit: int = 1,
        action: str = "error",
        error_type: type[StorageError] | None = None,
    ):
        if point not in _REGISTERED:
            raise ValueError(f"unknown fault point {point!r}")
        if hit < 1:
            raise ValueError("hit numbers are 1-based")
        if action not in ("error", "crash"):
            raise ValueError(f"unknown fault action {action!r}")
        self.point = point
        self.hit = hit
        self.action = action
        self.error_type = error_type

    def __repr__(self) -> str:
        return f"FaultPlan({self.point}@{self.hit}:{self.action})"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``point@N:action`` (``@N`` and ``:action`` optional)."""
        action = "error"
        if ":" in spec:
            spec, action = spec.rsplit(":", 1)
        hit = 1
        if "@" in spec:
            spec, hit_text = spec.rsplit("@", 1)
            hit = int(hit_text)
        return cls(spec, hit=hit, action=action)


class FaultInjector:
    """Holds the armed plans and counts hits on every fault point."""

    def __init__(self) -> None:
        self._plans: list[FaultPlan] = []
        self.hits: dict[str, int] = {}
        self.fired: list[FaultPlan] = []
        self._disk: "DiskManager | None" = None

    # -- arming -----------------------------------------------------------

    def arm(self, *plans: FaultPlan) -> None:
        """Install plans (added to any already armed)."""
        self._plans.extend(plans)

    def disarm(self) -> None:
        """Remove every plan and reset hit counts."""
        self._plans.clear()
        self.hits.clear()
        self.fired.clear()

    @property
    def armed(self) -> bool:
        """Whether any plan is currently installed."""
        return bool(self._plans)

    def attach_disk(self, disk: "DiskManager | None") -> None:
        """Point crash snapshots at a durable backing file."""
        self._disk = disk

    # -- the hot check ----------------------------------------------------

    def trip(self, point: str) -> None:
        """Record a hit on ``point``; raise if an armed plan matches.

        The disarmed case is a single attribute check, so production code
        can call this unconditionally.
        """
        if not self._plans:
            return
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        for plan in self._plans:
            if plan.point != point or plan.hit != count:
                continue
            self.fired.append(plan)
            self._plans.remove(plan)
            if plan.action == "crash":
                snapshot = (
                    self._disk.snapshot() if self._disk is not None else None
                )
                raise SimulatedCrash(point, count, snapshot)
            error_type = plan.error_type or FaultInjectedError
            if error_type is FaultInjectedError:
                raise FaultInjectedError(point, count)
            raise error_type(f"injected fault at {point!r} (hit {count})")


#: The process-wide injector.  Storage objects share it so one armed plan
#: covers every engine in the process; tests must :meth:`disarm` after use
#: (the ``fault_plan`` helper below does this automatically).
INJECTOR = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-wide fault injector."""
    return INJECTOR


class fault_plan:
    """Context manager: arm plans on entry, disarm everything on exit.

    >>> with fault_plan(FaultPlan("btree.insert", hit=2)):
    ...     db.execute("INSERT ...")    # doctest: +SKIP
    """

    def __init__(self, *plans: FaultPlan):
        self._plans = plans

    def __enter__(self) -> FaultInjector:
        INJECTOR.arm(*self._plans)
        return INJECTOR

    def __exit__(self, *exc_info: object) -> None:
        INJECTOR.disarm()


def plans_from_env() -> list[FaultPlan]:
    """Plans described by ``REPRO_FAULTS`` (semicolon/comma separated)."""
    raw = os.environ.get("REPRO_FAULTS", "")
    specs = [part.strip() for part in raw.replace(";", ",").split(",")]
    return [FaultPlan.parse(spec) for spec in specs if spec]


def arm_from_env() -> bool:
    """Arm any ``REPRO_FAULTS`` plans; returns whether any were armed."""
    plans = plans_from_env()
    if plans:
        INJECTOR.arm(*plans)
    return bool(plans)
