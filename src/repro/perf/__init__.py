"""Optimizer performance tracking.

The paper's Section 8 argues that access path selection itself is cheap —
"a few thousand instructions" per optimization.  This package keeps that
claim honest for the reproduction: :mod:`repro.perf.bench` is a
micro-benchmark harness (``repro bench``) that times *planning only* over
generated chain / star / clique workloads, records the DP's own search
statistics next to wall-clock, and emits a machine-readable
``BENCH_optimizer.json`` so perf trajectories can be compared across
commits (``repro bench --compare old.json``).

:mod:`repro.perf.bench_exec` (``repro bench --exec``) is the companion
harness for the execution engine: it times end-to-end query runs over
empdept and generated join workloads, fingerprints results and
:class:`~repro.rss.counters.CostCounters` deltas, and writes
``BENCH_executor.json``; ``--compare`` additionally enforces that the
physical cost counters are bit-identical between the two runs.
"""

from .bench import (
    BenchResult,
    compare_reports,
    default_workloads,
    load_report,
    run_bench,
)

__all__ = [
    "BenchResult",
    "compare_reports",
    "default_workloads",
    "load_report",
    "run_bench",
]
