"""E7 — Figure 5: the extended search tree for pairs, merging scans.

Figure 5 enumerates the merge variants for the second relation: merging on
an existing index order without sorting, and sort-then-merge alternatives.
The DP considers all of them; whether any survives depends on whether
nested loops dominates its order class.  This bench reconstructs the
figure's explicit variants with their costs, then reports which (if any)
survive DP pruning.
"""

from repro.baselines import LeftDeepBuilder
from repro.optimizer.binder import Binder
from repro.optimizer.explain import format_order, plan_summary, solutions_table
from repro.optimizer.predicates import to_cnf_factors
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


def test_fig5_pairs_merge_join(empdept, report, benchmark):
    optimizer = empdept.optimizer()
    block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
    factors = to_cnf_factors(block.where, block)
    builder = LeftDeepBuilder(
        block, factors, empdept.catalog, optimizer.estimator, optimizer.cost_model
    )

    # The figure's merge variants: (outer, inner) with sort-both-sides.
    variants = []
    for outer_alias, inner_alias in (
        ("EMP", "DEPT"),
        ("DEPT", "EMP"),
        ("JOB", "EMP"),
        ("EMP", "JOB"),
    ):
        built = frozenset({outer_alias})
        merge_factors = builder.equijoin_factors(built, inner_alias)
        if not merge_factors:
            continue
        outer = builder.cheapest_path(outer_alias).node

        def build(outer=outer, built=built, inner=inner_alias, mf=merge_factors[0]):
            return builder.merge_with_sorts(outer, built, inner, mf)

        node = benchmark.pedantic(build, rounds=1, iterations=1) if not variants else build()
        variants.append((outer_alias, inner_alias, node))

    report.line("E7 / Figure 5 — merge-scan variants for pairs")
    report.table(
        ["outer", "inner", "cost", "rows", "plan"],
        [
            [
                outer,
                inner,
                optimizer.cost_model.total(node.cost),
                node.rows,
                plan_summary(node),
            ]
            for outer, inner, node in variants
        ],
        widths=[8, 8, 12, 12, 70],
    )

    search, __, ___ = optimizer.run_join_search(
        Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
    )
    survivors = [
        row
        for row in solutions_table(search, optimizer.cost_model, size=2)
        if "MERGE(" in row["plan"]
    ]
    report.line()
    if survivors:
        report.line("merge solutions surviving DP pruning at the pair level:")
        for row in survivors:
            report.line(
                f"  {row['relations']} {format_order(row['order'])} "
                f"cost={row['cost']:.2f}  {row['plan']}"
            )
    else:
        report.line(
            "no merge solution survived pair-level pruning here: nested "
            "loops with an index probe dominates every order class (the "
            "merges shown above were considered and costed, then pruned)."
        )
    assert variants, "merge variants must exist for the connected pairs"
    # Merge variants produce output ordered on the merge column.
    for __, ___, node in variants:
        assert node.order_columns
