"""E9 — §7 claim: "the true optimal path is selected in a large majority of
cases ... the ordering among estimated costs is precisely the same as that
among the actual measured costs".

For randomized join workloads we enumerate every candidate plan, execute
each against a cold buffer, and check (a) how often the optimizer's pick is
the measured optimum (or within 25% of it), and (b) the Spearman rank
correlation between predicted and measured cost across the plan space.

Two regimes are reported:

- **covered statistics** — every join/selection column is indexed, so the
  TABLE 1 formulas run on real ICARDs and key ranges (the System R
  setting the paper's claim was made in);
- **sparse statistics** — 50% of indexes are missing and the arbitrary
  1/10-style defaults fill the gaps, showing how much of the claim is owed
  to the statistics.
"""

import random

from scipy import stats as scipy_stats

from conftest import measure_cold, weighted
from repro.baselines import ExhaustivePlanner
from repro.optimizer.binder import Binder
from repro.sql import parse_statement
from repro.workloads import build_database, random_chain_spec, random_select_query

QUERIES = 6
MAX_PLANS = 50


def run_regime(report, label, index_probability, seed_base):
    rng = random.Random(7 + seed_base)
    rows_header = []
    optimal = near_optimal = skipped_total = 0
    correlations = []
    for number in range(QUERIES):
        tables = random_chain_spec(
            rng.choice([2, 3]),
            rng,
            min_rows=150,
            max_rows=450,
            index_probability=index_probability,
            pad_bytes=60,
        )
        db = build_database(tables, seed=seed_base + number, buffer_pages=12)
        sql = random_select_query(tables, rng)
        chosen = db.plan(sql)
        planner = ExhaustivePlanner(db.optimizer(), db.catalog)
        block = Binder(db.catalog).bind(parse_statement(sql))
        candidates = planner.enumerate_statements(block, max_plans=MAX_PLANS)
        # Plans predicted two orders of magnitude above the chosen plan are
        # not executed (Cartesian-first disasters never measure best).
        cap = chosen.estimated_total() * 100 + 100
        runnable = [p for p in candidates if p.estimated_total() <= cap]
        skipped_total += len(candidates) - len(runnable)

        predicted, measured = [], []
        for planned in runnable:
            snapshot, __ = measure_cold(db, planned)
            predicted.append(planned.estimated_total())
            measured.append(weighted(snapshot, planned.w))
        chosen_snapshot, __ = measure_cold(db, chosen)
        chosen_measured = weighted(chosen_snapshot, chosen.w)
        best_measured = min(measured + [chosen_measured])
        is_optimal = chosen_measured <= best_measured * 1.001
        is_near = chosen_measured <= best_measured * 1.25
        optimal += is_optimal
        near_optimal += is_near
        rho = scipy_stats.spearmanr(predicted, measured).statistic
        correlations.append(rho)
        rows_header.append(
            [
                f"Q{number}",
                len(runnable),
                chosen_measured,
                best_measured,
                "yes" if is_optimal else ("near" if is_near else "NO"),
                rho,
            ]
        )

    mean_rho = sum(correlations) / len(correlations)
    report.line(f"--- {label} ---")
    report.table(
        ["query", "plans", "chosen (meas)", "best (meas)", "optimal?", "spearman"],
        rows_header,
        widths=[8, 8, 16, 14, 10, 12],
    )
    report.line(
        f"optimal: {optimal}/{QUERIES}; within 25%: {near_optimal}/{QUERIES}; "
        f"mean Spearman: {mean_rho:.3f}; skipped (pred >100x): {skipped_total}"
    )
    report.line()
    return optimal, near_optimal, mean_rho


def test_plan_quality(report, benchmark):
    report.line("E9 — plan quality against the exhaustively measured optimum")
    report.line()

    def covered():
        return run_regime(report, "covered statistics (every column indexed)", 1.0, 100)

    cov_optimal, cov_near, cov_rho = benchmark.pedantic(
        covered, rounds=1, iterations=1
    )
    sparse_optimal, sparse_near, sparse_rho = run_regime(
        report, "sparse statistics (50% of indexes missing)", 0.5, 200
    )

    report.line(
        'paper: "the true optimal path is selected in a large majority of'
    )
    report.line(
        'cases", "ordering among the estimated costs is precisely the same'
    )
    report.line('as that among the actual measured costs" (in many cases).')
    report.line()
    report.line(
        "The claim holds when the statistics cover the predicates; with the"
    )
    report.line(
        "arbitrary defaults standing in, near-ties get decided by guesses."
    )

    # With covered statistics the paper's claim must reproduce.
    assert cov_near >= QUERIES - 1, "covered: large majority near-optimal"
    assert cov_rho > 0.5
    # Sparse statistics may not do better than covered.
    assert sparse_near <= cov_near or sparse_rho <= cov_rho + 0.2
