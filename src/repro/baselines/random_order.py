"""Random plan choice: the distributional baseline for plan quality.

Draws a uniformly random join order, a random access path for the leading
relation, and a random method + inner path for every step.  Running many
seeds shows the cost distribution an optimizer-less system samples from —
the denominator behind "how much does optimization matter".
"""

from __future__ import annotations

import random

from ..catalog.catalog import Catalog
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.plan import PlanNode
from ..optimizer.planner import Optimizer, PlannedStatement
from ..optimizer.predicates import to_cnf_factors
from .common import LeftDeepBuilder


class RandomPlanner:
    """Seeded random left-deep planner."""

    def __init__(self, optimizer: Optimizer, catalog: Catalog, seed: int = 0):
        self._optimizer = optimizer
        self._catalog = catalog
        self._random = random.Random(seed)

    def plan_block(self, block: BoundQueryBlock) -> PlannedStatement:
        """Plan one block with uniformly random order, paths, and methods."""
        factors = to_cnf_factors(block.where, block)
        builder = LeftDeepBuilder(
            block,
            factors,
            self._catalog,
            self._optimizer.estimator,
            self._optimizer.cost_model,
        )
        aliases = list(block.aliases)
        self._random.shuffle(aliases)
        first = aliases[0]
        plan: PlanNode = self._random.choice(builder.path_candidates(first)).node
        built = frozenset({first})
        for alias in aliases[1:]:
            choices: list[PlanNode] = []
            probes, __ = builder.probes_for(built, alias)
            for inner in builder.path_candidates(alias, probes):
                choices.append(builder.nested_loop(plan, built, alias, inner))
            for merge_factor in builder.equijoin_factors(built, alias):
                choices.append(
                    builder.merge_with_sorts(plan, built, alias, merge_factor)
                )
            plan = self._random.choice(choices)
            built = built | {alias}
        return self._optimizer.wrap_plan(block, factors, plan)
