"""Unit tests for name resolution and semantic checking."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import FLOAT, INTEGER, varchar
from repro.errors import SemanticError
from repro.optimizer.binder import Binder
from repro.optimizer.bound import AggregateRef, BoundColumn, BoundSubquery
from repro.sql import ast, parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP",
        [
            ("ENO", INTEGER),
            ("NAME", varchar(20)),
            ("DNO", INTEGER),
            ("SAL", FLOAT),
            ("MANAGER", INTEGER),
        ],
    )
    catalog.create_table(
        "DEPT", [("DNO", INTEGER), ("DNAME", varchar(20)), ("LOC", varchar(20))]
    )
    return catalog


def bind(catalog, sql):
    return Binder(catalog).bind(parse_statement(sql))


class TestResolution:
    def test_unqualified_column(self, catalog):
        block = bind(catalog, "SELECT NAME FROM EMP")
        column = block.select_exprs[0]
        assert isinstance(column, BoundColumn)
        assert (column.alias, column.position) == ("EMP", 1)

    def test_qualified_column(self, catalog):
        block = bind(catalog, "SELECT E.SAL FROM EMP E")
        column = block.select_exprs[0]
        assert column.alias == "E"
        assert column.datatype == FLOAT

    def test_star_expansion(self, catalog):
        block = bind(catalog, "SELECT * FROM EMP, DEPT")
        assert len(block.select_exprs) == 8
        assert block.output_names[:2] == ["ENO", "NAME"]

    def test_ambiguous_column(self, catalog):
        with pytest.raises(SemanticError, match="ambiguous"):
            bind(catalog, "SELECT DNO FROM EMP, DEPT")

    def test_unknown_column(self, catalog):
        with pytest.raises(SemanticError, match="unknown column"):
            bind(catalog, "SELECT NOPE FROM EMP")

    def test_unknown_table(self, catalog):
        with pytest.raises(SemanticError, match="unknown table"):
            bind(catalog, "SELECT * FROM NOPE")

    def test_duplicate_alias(self, catalog):
        with pytest.raises(SemanticError, match="duplicate alias"):
            bind(catalog, "SELECT * FROM EMP, EMP")

    def test_self_join_aliases(self, catalog):
        block = bind(catalog, "SELECT X.NAME FROM EMP X, EMP Y WHERE X.ENO = Y.MANAGER")
        assert {entry.alias for entry in block.tables} == {"X", "Y"}


class TestTypes:
    def test_type_mismatch_rejected(self, catalog):
        with pytest.raises(SemanticError, match="type mismatch"):
            bind(catalog, "SELECT * FROM EMP WHERE NAME = 5")

    def test_numeric_cross_type_ok(self, catalog):
        bind(catalog, "SELECT * FROM EMP WHERE SAL > 100")
        bind(catalog, "SELECT * FROM EMP WHERE ENO = 1.5")

    def test_arithmetic_on_string_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT NAME + 1 FROM EMP")

    def test_like_on_number_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT * FROM EMP WHERE SAL LIKE 'x%'")


class TestAggregates:
    def test_aggregate_collected_and_rewritten(self, catalog):
        block = bind(catalog, "SELECT AVG(SAL), COUNT(*) FROM EMP")
        assert isinstance(block.select_exprs[0], AggregateRef)
        assert [call.name for call in block.aggregates] == ["AVG", "COUNT"]

    def test_identical_aggregates_deduplicated(self, catalog):
        block = bind(catalog, "SELECT AVG(SAL), AVG(SAL) FROM EMP")
        assert len(block.aggregates) == 1
        assert block.select_exprs[0] == block.select_exprs[1]

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT NAME FROM EMP WHERE AVG(SAL) > 5")

    def test_plain_column_needs_group_by(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT NAME, AVG(SAL) FROM EMP")

    def test_group_column_allowed(self, catalog):
        block = bind(catalog, "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO")
        assert block.is_aggregate

    def test_having_without_grouping_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT NAME FROM EMP HAVING NAME = 'X'")

    def test_order_by_non_group_column_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO ORDER BY SAL")

    def test_avg_of_string_rejected(self, catalog):
        with pytest.raises(SemanticError):
            bind(catalog, "SELECT AVG(NAME) FROM EMP")


class TestSubqueries:
    def test_uncorrelated_subquery(self, catalog):
        block = bind(
            catalog,
            "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)",
        )
        assert len(block.subqueries) == 1
        sub = block.subqueries[0]
        assert sub.scalar
        assert not sub.block.is_correlated
        assert not block.is_correlated

    def test_correlated_subquery(self, catalog):
        block = bind(
            catalog,
            "SELECT NAME FROM EMP X WHERE SAL > "
            "(SELECT SAL FROM EMP WHERE ENO = X.MANAGER)",
        )
        sub = block.subqueries[0]
        assert sub.block.is_correlated
        corr = sub.block.correlated_columns[0]
        assert corr.alias == "X"
        assert corr.column_name == "MANAGER"
        # The outer block itself is not correlated to anything above it.
        assert not block.is_correlated

    def test_correlation_skips_intermediate_block(self, catalog):
        block = bind(
            catalog,
            "SELECT NAME FROM EMP X WHERE SAL > "
            "(SELECT SAL FROM EMP WHERE ENO = "
            "(SELECT MANAGER FROM EMP WHERE ENO = X.MANAGER))",
        )
        middle = block.subqueries[0].block
        innermost = middle.subqueries[0].block
        # The innermost references level 1, so the middle block must also be
        # treated as correlated (re-evaluated per level-1 candidate tuple).
        assert innermost.is_correlated
        assert middle.is_correlated

    def test_in_subquery(self, catalog):
        block = bind(
            catalog,
            "SELECT NAME FROM EMP WHERE DNO IN "
            "(SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
        )
        sub = block.subqueries[0]
        assert not sub.scalar

    def test_subquery_must_select_one_column(self, catalog):
        with pytest.raises(SemanticError):
            bind(
                catalog,
                "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO, LOC FROM DEPT)",
            )

    def test_group_by_must_be_local(self, catalog):
        with pytest.raises(SemanticError):
            bind(
                catalog,
                "SELECT NAME FROM EMP X WHERE SAL > "
                "(SELECT AVG(SAL) FROM EMP GROUP BY X.DNO)",
            )
