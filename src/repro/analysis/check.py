"""The ``repro check`` driver: run the static analyses over real corpora.

Eight sub-checks, all on by default:

- ``--plans`` plans every query of the EMP/DEPT/JOB workload (under every
  optimizer configuration) and a stream of generated chain/star join
  queries, with structural plan checking, cost auditing, and DP prune
  auditing enabled — the whole workload suite acts as a property-test
  corpus.
- ``--costs`` re-derives the TABLE 2 formulas against every catalog the
  corpus builds and audits the collected statistics.
- ``--lint`` runs the project's ``ast``-based lint over ``src/repro``.
- ``--storage`` audits the storage invariants (index/tuple agreement, page
  reachability, checksums) over in-memory, durable, torn-page, and
  crash/recover scenarios.
- ``--fusion`` executes the workload corpus (plus a dedicated hash-join
  corpus) under every engine mode — interpreted, compiled, fused, and
  parallel — on identically-built databases, asserting the *ordered* row
  sequences, cost counters, and subquery evaluation cadence are
  bit-identical — fused chains must preserve every declared output
  order, not just row sets.
- ``--effects`` infers per-function effect signatures over the whole
  program (:mod:`repro.analysis.effects`) and enforces the effect rules:
  planning layers (``optimizer/``, ``sql/``, ``catalog/``) perform no
  direct IO, and module-level rebinding stays confined to the fault
  registry.
- ``--concurrency`` emits the shared-mutable-state report
  (:mod:`repro.analysis.concurrency`) and fails on unguarded state not
  acknowledged by the committed ``analysis/concurrency_baseline.toml``.
- ``--dead-code`` reports functions unreachable from the entry points,
  the test/benchmark trees, and registered walkers.

``--json`` switches every selected section to one machine-readable JSON
document on stdout.  Exit status is non-zero when any violation is found.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Callable

from ..database import Database
from ..optimizer.planner import Optimizer
from ..workloads.empdept import FIG1_QUERY, build_empdept
from ..workloads.generator import (
    ColumnSpec,
    TableSpec,
    build_database,
    random_chain_spec,
    random_select_query,
    random_star_spec,
    star_join_query,
)
from .concurrency import analyze_concurrency, render_report
from .cost_audit import audit_cost_model
from .dataflow import ProgramGraph, find_dead_code
from .effects import effects_summary, infer_effects
from .lint import lint_repo
from .plan_check import PlanCheckError, Violation
from .storage_check import check_storage

#: The EMP/DEPT/JOB corpus: one query per planner feature.
EMPDEPT_QUERIES = (
    FIG1_QUERY,
    "SELECT NAME, SAL FROM EMP WHERE SAL > 500",
    "SELECT * FROM EMP WHERE DNO = 5",
    "SELECT * FROM EMP WHERE DNO = 5 AND JOB = 2 AND SAL < 900",
    "SELECT DNAME FROM DEPT WHERE DNO = 7",
    "SELECT NAME FROM EMP WHERE SAL BETWEEN 200 AND 400 ORDER BY SAL",
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
    "ORDER BY EMP.DNO",
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
    "SELECT DNO, AVG(SAL) FROM EMP WHERE JOB = 1 GROUP BY DNO "
    "HAVING COUNT(*) > 2",
    # Grouping on an unindexed column under selective predicates: the
    # estimated group count must stay below the estimated input rows
    # (regression corpus for the block_output_cardinality clamp).
    "SELECT DNAME, COUNT(*) FROM DEPT WHERE DNO = 3 AND LOC = 'DENVER' "
    "GROUP BY DNAME",
    "SELECT COUNT(*) FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
    "AND LOC = 'DENVER'",
    "SELECT DISTINCT LOC FROM DEPT",
    "SELECT DISTINCT TITLE FROM EMP, JOB WHERE EMP.JOB = JOB.JOB "
    "AND SAL > 800",
    "SELECT NAME FROM EMP WHERE DNO IN "
    "(SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
    "SELECT NAME FROM EMP X WHERE SAL > "
    "(SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)",
    "SELECT NAME FROM EMP WHERE SAL > "
    "(SELECT AVG(SAL) FROM EMP)",
)

#: (use_heuristic, use_interesting_orders) configurations to cover.
ABLATIONS = ((True, True), (False, True), (True, False))


def verifying_optimizer(
    db: Database,
    use_heuristic: bool = True,
    use_interesting_orders: bool = True,
) -> Optimizer:
    """An optimizer over ``db``'s catalog with full verification enabled."""
    return Optimizer(
        db.catalog,
        w=db.w,
        buffer_pages=db.storage.buffer.capacity,
        use_heuristic=use_heuristic,
        use_interesting_orders=use_interesting_orders,
        verify_plans=True,
    )


def _verify_query(
    db: Database,
    sql: str,
    violations: list[Violation],
    use_heuristic: bool = True,
    use_interesting_orders: bool = True,
) -> None:
    """Plan one query with verification on, collecting any violations."""
    from ..sql import parse_statement

    optimizer = verifying_optimizer(db, use_heuristic, use_interesting_orders)
    try:
        optimizer.plan_query(parse_statement(sql))
    except PlanCheckError as error:
        for violation in error.violations:
            violations.append(
                Violation(
                    violation.rule,
                    violation.where,
                    f"{violation.message} [query: {sql}]",
                )
            )


# ---------------------------------------------------------------------------
# corpora
# ---------------------------------------------------------------------------


def empdept_databases() -> list[Database]:
    """The Figure 1 database, unclustered and clustered."""
    return [
        build_empdept(employees=400, departments=20, jobs=5, seed=11),
        build_empdept(
            employees=400,
            departments=20,
            jobs=5,
            seed=11,
            clustered_emp_dno=True,
        ),
    ]


def generated_batches(
    count: int, seed: int, batch_size: int = 20
) -> list[tuple[Database, list[str]]]:
    """``count`` generated queries in batches sharing one random schema.

    Alternates chain-join and star-join schemas; chain batches use
    :func:`random_select_query` (random equality filters), star batches
    random filters on dimension attributes.
    """
    rng = random.Random(seed)
    batches: list[tuple[Database, list[str]]] = []
    remaining = count
    star = False
    while remaining > 0:
        size = min(batch_size, remaining)
        remaining -= size
        if star:
            specs = random_star_spec(rng.randint(2, 4), rng, fact_rows=600)
            db = build_database(specs, seed=rng.randrange(1 << 30))
            queries = [_random_star_query(specs, rng) for __ in range(size)]
        else:
            specs = random_chain_spec(rng.randint(3, 5), rng, max_rows=400)
            db = build_database(specs, seed=rng.randrange(1 << 30))
            queries = [random_select_query(specs, rng) for __ in range(size)]
        batches.append((db, queries))
        star = not star
    return batches


def _random_star_query(
    specs: list[TableSpec], rng: random.Random, max_selections: int = 2
) -> str:
    selections: list[tuple[str, str, int]] = []
    for __ in range(rng.randint(0, max_selections)):
        spec = rng.choice(specs[1:])  # a dimension table
        column = spec.column("ATTR")
        selections.append(
            (spec.name, "ATTR", column.low + rng.randrange(column.distinct))
        )
    return star_join_query(specs, selections)


# ---------------------------------------------------------------------------
# the three checks
# ---------------------------------------------------------------------------


def check_plans(
    queries: int = 200, seed: int = 271828, echo: Callable[[str], None] = print
) -> list[Violation]:
    """Verify every corpus query's plan; returns all violations."""
    violations: list[Violation] = []
    planned = 0
    for db in empdept_databases():
        for use_heuristic, use_orders in ABLATIONS:
            for sql in EMPDEPT_QUERIES:
                _verify_query(db, sql, violations, use_heuristic, use_orders)
                planned += 1
    echo(f"  empdept: {planned} plans verified")
    generated = 0
    for db, batch in generated_batches(queries, seed):
        for sql in batch:
            _verify_query(db, sql, violations)
            generated += 1
    echo(f"  generated: {generated} plans verified")
    return violations


def _empty_relation_database() -> Database:
    """An empty, indexed relation with collected statistics.

    Degenerate statistics (zero pages, zero cardinality) historically
    produced out-of-range P(T) values; keep the case in the audit corpus.
    """
    db = Database()
    db.execute("CREATE TABLE EMPTY_REL (A INTEGER, B INTEGER)")
    db.execute("CREATE INDEX EMPTY_A ON EMPTY_REL (A)")
    db.execute("UPDATE STATISTICS")
    return db


def check_costs(echo: Callable[[str], None] = print) -> list[Violation]:
    """Audit the cost model against every corpus catalog."""
    violations: list[Violation] = []
    audited = 0
    for db in [*empdept_databases(), _empty_relation_database()]:
        violations.extend(
            audit_cost_model(
                db.catalog, db.w, db.storage.buffer.capacity
            )
        )
        audited += 1
    for db, __ in generated_batches(40, seed=314159):
        violations.extend(
            audit_cost_model(db.catalog, db.w, db.storage.buffer.capacity)
        )
        audited += 1
    echo(f"  cost model audited against {audited} catalogs")
    return violations


def check_lint(echo: Callable[[str], None] = print) -> list[Violation]:
    """Run the project lint over ``src/repro``."""
    violations = lint_repo()
    echo("  lint pass over src/repro complete")
    return violations


def _count_hash_joins(planned) -> int:
    """Hash-join nodes across a planned statement and its subquery plans."""
    from ..optimizer.plan import HashJoinNode, PlanNode

    def count(node: PlanNode) -> int:
        total = 1 if isinstance(node, HashJoinNode) else 0
        for child in node.children():
            total += count(child)
        return total

    total = count(planned.root)
    seen: set[int] = set()
    for sub in planned.subquery_plans.values():
        if id(sub) in seen:
            continue
        seen.add(id(sub))
        total += count(sub.root)
    return total


def _audit_fused_query(
    db: Database, sql: str, violations: list[Violation], workers: int = 2
) -> tuple[int, int]:
    """Execute ``sql`` in every engine mode; compare all four.

    Every execution starts from a cold buffer on the *same* database, so
    any divergence in page fetches, buffer hits, or RSI calls is the
    diverging engine's fault, not warm-cache luck.  The interpreted
    engine is the reference; compiled, fused, and parallel runs must
    reproduce its ordered row sequence, counter totals, and subquery
    evaluation cadence exactly.  Row lists are compared as ordered
    sequences: a fused chain that reorders rows — even for a query with
    no ORDER BY — is a bug, because fusion must be invisible.  The
    parallel run uses ``workers`` threads; its gather must reproduce the
    serial row order and counter totals exactly.  Returns the number of
    fused chains the plan compiled to and the number of hash joins in
    the plan.
    """
    from ..engine.executor import Executor
    from ..engine.fuse import describe_chains

    planned = db.plan(sql)
    runs = {}
    for mode in ("interp", "compiled", "fused", "parallel"):
        db.storage.cold_cache()
        executor = Executor(
            db.storage, db.catalog, exec_mode=mode, workers=workers
        )
        before = db.storage.counters.snapshot()
        result = executor.execute(planned)
        after = db.storage.counters.snapshot()
        runtime = executor.last_runtime
        runs[mode] = (
            result.rows,
            (
                after.page_fetches - before.page_fetches,
                after.rsi_calls - before.rsi_calls,
                after.buffer_hits - before.buffer_hits,
            ),
            dict(runtime.evaluation_counts) if runtime else {},
        )
    ref_rows, ref_counters, ref_evals = runs["interp"]
    for mode in ("compiled", "fused", "parallel"):
        rows, counters, evals = runs[mode]
        where = f"fusion [mode: {mode}] [query: {sql}]"
        if rows != ref_rows:
            violations.append(
                Violation(
                    "fusion-row-order",
                    where,
                    f"{mode} row sequence differs from the interpreted "
                    f"reference ({len(rows)} vs {len(ref_rows)} rows)",
                )
            )
        if counters != ref_counters:
            violations.append(
                Violation(
                    "fusion-counters",
                    where,
                    f"cost counters diverged: {mode} "
                    f"(fetches, rsi, hits)={counters} vs interp {ref_counters}",
                )
            )
        if evals != ref_evals:
            violations.append(
                Violation(
                    "fusion-subquery-cadence",
                    where,
                    f"subquery evaluation counts diverged: {mode} {evals} "
                    f"vs interp {ref_evals}",
                )
            )
    return len(describe_chains(planned.root)), _count_hash_joins(planned)


def hashjoin_corpus() -> list[tuple[Database, list[str]]]:
    """Databases whose cheapest plans include hash joins, per the DP search.

    Two shapes force the formula's crossover points: an unindexed large
    join with a filtered build side (in-memory table), and a padded join
    of two relations whose build side exceeds the buffer pool (grace
    partitioning).  Both degenerate to inner rescans or full sorts
    without a hash alternative.
    """
    memory = build_database(
        [
            TableSpec(
                "T1",
                1500,
                [ColumnSpec("A", 50), ColumnSpec("J1", 200)],
                [],
                pad_bytes=80,
            ),
            TableSpec(
                "T2",
                2500,
                [ColumnSpec("J1", 200), ColumnSpec("B", 10)],
                [],
                pad_bytes=80,
            ),
        ],
        seed=7,
        buffer_pages=24,
    )
    grace = build_database(
        [
            TableSpec(
                "G1",
                3000,
                [ColumnSpec("A", 50), ColumnSpec("J1", 400)],
                [],
                pad_bytes=160,
            ),
            TableSpec(
                "G2",
                3000,
                [ColumnSpec("J1", 400), ColumnSpec("B", 10)],
                [],
                pad_bytes=160,
            ),
        ],
        seed=7,
        buffer_pages=32,
    )
    return [
        (
            memory,
            [
                "SELECT T1.A, T2.J1 FROM T1, T2 "
                "WHERE T1.J1 = T2.J1 AND T2.B = 3",
                "SELECT T1.A, T2.B FROM T1, T2 "
                "WHERE T1.J1 = T2.J1 AND T2.B = 3 ORDER BY T1.A",
            ],
        ),
        (
            grace,
            [
                "SELECT G1.A, G2.B FROM G1, G2 WHERE G1.J1 = G2.J1",
                "SELECT COUNT(*) FROM G1, G2 WHERE G1.J1 = G2.J1",
            ],
        ),
    ]


def check_fusion(
    queries: int = 40, seed: int = 662607, echo: Callable[[str], None] = print
) -> list[Violation]:
    """Differential audit of every engine mode against the interpreted one.

    ``REPRO_WORKERS`` sets the parallel worker count (default 2), so CI
    can run the same audit at several counts.
    """
    import os

    workers = int(os.environ.get("REPRO_WORKERS", "2"))
    violations: list[Violation] = []
    executed = 0
    chains = 0
    hash_joins = 0
    for db in empdept_databases():
        for sql in EMPDEPT_QUERIES:
            audited, hashed = _audit_fused_query(
                db, sql, violations, workers=workers
            )
            chains += audited
            hash_joins += hashed
            executed += 1
    echo(f"  empdept: {executed} queries: interp vs compiled/fused/parallel({workers})")
    generated = 0
    for db, batch in generated_batches(queries, seed):
        for sql in batch:
            audited, hashed = _audit_fused_query(
                db, sql, violations, workers=workers
            )
            chains += audited
            hash_joins += hashed
            generated += 1
    echo(f"  generated: {generated} queries: interp vs compiled/fused/parallel({workers})")
    hashed_queries = 0
    for db, batch in hashjoin_corpus():
        for sql in batch:
            audited, hashed = _audit_fused_query(
                db, sql, violations, workers=workers
            )
            chains += audited
            hash_joins += hashed
            hashed_queries += 1
            if not hashed:
                violations.append(
                    Violation(
                        "hashjoin-corpus-miss",
                        f"fusion [query: {sql}]",
                        "a hash-join corpus query planned without a hash "
                        "join — the corpus no longer exercises the operator",
                    )
                )
    echo(
        f"  hashjoin: {hashed_queries} queries: interp vs "
        f"compiled/fused/parallel({workers})"
    )
    echo(
        f"  {chains} fused chains and {hash_joins} hash joins audited "
        "for order and counter fidelity"
    )
    return violations


# ---------------------------------------------------------------------------
# whole-program analysis checks (dataflow / effects / concurrency)
# ---------------------------------------------------------------------------

#: Module prefixes whose functions must not perform IO directly: planning
#: is deterministic and storage-free by construction.
_IO_FREE_PREFIXES = ("optimizer/", "sql/", "catalog/")

#: Modules allowed a direct module-global write (import-time registration).
_GLOBAL_WRITERS = frozenset({"rss/faults.py"})


def check_effects(
    echo: Callable[[str], None] = print,
    root: Path | None = None,
    report: dict | None = None,
) -> list[Violation]:
    """Infer effect signatures and enforce the project's effect rules."""
    graph = ProgramGraph.build(root)
    signatures = infer_effects(graph)
    summary = effects_summary(signatures)
    echo(
        f"  {summary['total']} functions: {summary['pure']} pure, "
        f"{summary['io']} io, {summary['writes-global']} write globals, "
        f"{summary['mutates-self']} mutate self (transitively)"
    )
    if report is not None:
        report["summary"] = summary
        report["signatures"] = {
            q: sorted(s.transitive) for q, s in sorted(signatures.items())
        }
    violations: list[Violation] = []
    for qualname, signature in sorted(signatures.items()):
        module = graph.functions[qualname].module
        if "io" in signature.direct and module.startswith(_IO_FREE_PREFIXES):
            sites = [d for e, d in signature.sites if e == "io"]
            violations.append(
                Violation(
                    "effect-planner-io",
                    qualname,
                    f"direct IO in a planning-layer module ({sites[0]}); "
                    "planning must stay deterministic and storage-free",
                )
            )
        if (
            "writes-global" in signature.direct
            and module not in _GLOBAL_WRITERS
        ):
            sites = [d for e, d in signature.sites if e == "writes-global"]
            violations.append(
                Violation(
                    "effect-global-write",
                    qualname,
                    f"writes module-level state ({sites[0]}); shared "
                    "globals defeat the parallelism ROADMAP — keep state "
                    "on per-statement objects",
                )
            )
    return violations


def check_concurrency(
    echo: Callable[[str], None] = print,
    root: Path | None = None,
    baseline: Path | None = None,
    report: dict | None = None,
) -> list[Violation]:
    """The shared-mutable-state report, gated by the committed baseline."""
    graph = ProgramGraph.build(root)
    result = analyze_concurrency(graph, baseline_path=baseline)
    for line in render_report(result):
        echo(f"  {line}")
    if report is not None:
        report["findings"] = [f.as_dict() for f in result.findings]
    return result.violations


def check_dead_code(
    echo: Callable[[str], None] = print,
    root: Path | None = None,
    consumers: list[Path] | None = None,
) -> list[Violation]:
    """Functions unreachable from the entry points and external consumers."""
    graph = ProgramGraph.build(root)
    if consumers is None:
        consumers = [
            path
            for path in (
                _repo_root() / "tests",
                _repo_root() / "benchmarks",
                _repo_root() / "examples",
            )
            if path.is_dir()
        ]
    violations = find_dead_code(graph, consumer_roots=consumers)
    echo(
        f"  {len(graph.functions)} functions checked for reachability "
        f"against {len(consumers)} consumer tree(s)"
    )
    return violations


def _repo_root() -> Path:
    """The repository root (three levels above this package module)."""
    return Path(__file__).resolve().parent.parent.parent.parent


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``repro check [--<section> ...] [--json]`` — exit 0 when clean."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="statically verify optimizer plans, costs, and code",
    )
    parser.add_argument(
        "--plans", action="store_true", help="plan-check the query corpora"
    )
    parser.add_argument(
        "--costs", action="store_true", help="audit the cost model"
    )
    parser.add_argument(
        "--lint", action="store_true", help="run the project lint"
    )
    parser.add_argument(
        "--storage",
        action="store_true",
        help="audit storage invariants, durability, and crash recovery",
    )
    parser.add_argument(
        "--fusion",
        action="store_true",
        help="differentially execute the corpus fused vs compiled",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="infer effect signatures and enforce the effect rules",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="shared-mutable-state report against the committed baseline",
    )
    parser.add_argument(
        "--dead-code",
        action="store_true",
        help="report functions unreachable from the entry points",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="alternate package root for the whole-program analyses "
        "(fixture trees in tests)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="alternate concurrency baseline file (default: the "
        "committed analysis/concurrency_baseline.toml)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=200,
        help="number of generated queries for --plans (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=271828, help="corpus random seed"
    )
    args = parser.parse_args(argv)
    run_all = not (
        args.plans
        or args.costs
        or args.lint
        or args.storage
        or args.fusion
        or args.effects
        or args.concurrency
        or args.dead_code
    )

    echo: Callable[[str], None] = (lambda line: None) if args.json else print
    reports: dict[str, dict] = {}

    def analysis_report(name: str) -> dict:
        return reports.setdefault(name, {})

    failures = 0
    sections: list[tuple[str, Callable[[], list[Violation]]]] = []
    if run_all or args.lint:
        sections.append(("lint", lambda: check_lint(echo=echo)))
    if run_all or args.effects:
        sections.append(
            (
                "effects",
                lambda: check_effects(
                    echo=echo,
                    root=args.root,
                    report=analysis_report("effects"),
                ),
            )
        )
    if run_all or args.concurrency:
        sections.append(
            (
                "concurrency",
                lambda: check_concurrency(
                    echo=echo,
                    root=args.root,
                    baseline=args.baseline,
                    report=analysis_report("concurrency"),
                ),
            )
        )
    if run_all or args.dead_code:
        sections.append(
            ("dead-code", lambda: check_dead_code(echo=echo, root=args.root))
        )
    if run_all or args.costs:
        sections.append(("costs", lambda: check_costs(echo=echo)))
    if run_all or args.storage:
        sections.append(("storage", lambda: check_storage(echo=echo)))
    if run_all or args.fusion:
        sections.append(
            ("fusion", lambda: check_fusion(seed=args.seed, echo=echo))
        )
    if run_all or args.plans:
        sections.append(
            ("plans", lambda: check_plans(args.queries, args.seed, echo=echo))
        )

    results: dict[str, list[Violation]] = {}
    for name, runner in sections:
        if not args.json:
            print(f"check --{name}:")
        violations = runner()
        results[name] = violations
        failures += len(violations)
        if not args.json:
            if violations:
                for violation in violations:
                    print(f"  FAIL {violation}")
            else:
                print("  ok")
    if args.json:
        document = {
            "ok": failures == 0,
            "failures": failures,
            "sections": {
                name: {
                    "ok": not violations,
                    "violations": [
                        {
                            "rule": v.rule,
                            "where": v.where,
                            "message": v.message,
                        }
                        for v in violations
                    ],
                    "report": reports.get(name, {}),
                }
                for name, violations in results.items()
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    if failures:
        print(f"repro check: {failures} violation(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("repro check: all checks passed")
    return 0
