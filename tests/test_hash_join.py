"""Hash join, end to end: DP choice, cross-mode fidelity, equivalence, faults.

The corpus mirrors the two crossover shapes of ``repro check --fusion``'s
hash-join audit: an unindexed large join whose filtered build side fits in
memory (``partitions == 1``) and a padded join whose build side exceeds the
buffer pool (grace partitioning).  Every query runs through all four
execution modes — interp, compiled, fused, parallel at several worker
counts — over physically identical databases and must produce identical
rows *and* identical cost counters.  A hypothesis sweep with NULL-laden
join keys pins three-valued logic (NULL keys never match) against a naive
Python reference join, and the full fault matrix replays mixed DML whose
statements plan hash joins under ``REPRO_EXEC=parallel``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.analysis.storage_check import logical_dump, verify_storage
from repro.errors import SimulatedCrash, StorageError
from repro.optimizer.explain import plan_summary
from repro.optimizer.plan import (
    HashJoinNode,
    SortNode,
    walk_plan,
)
from repro.rss.disk import DiskManager
from repro.rss.faults import FaultPlan, get_injector, registered_points
from repro.workloads.empdept import load_rows
from repro.workloads.generator import ColumnSpec, TableSpec, build_database

@pytest.fixture(autouse=True)
def _disarm():
    yield
    get_injector().disarm()


MODES = ("interp", "compiled", "fused", 1, 2, 4)

MEMORY_TABLES = [
    TableSpec(
        "T1", 1500, [ColumnSpec("A", 50), ColumnSpec("J1", 200)], [],
        pad_bytes=80,
    ),
    TableSpec(
        "T2", 2500, [ColumnSpec("J1", 200), ColumnSpec("B", 10)], [],
        pad_bytes=80,
    ),
]
GRACE_TABLES = [
    TableSpec(
        "G1", 3000, [ColumnSpec("A", 50), ColumnSpec("J1", 400)], [],
        pad_bytes=160,
    ),
    TableSpec(
        "G2", 3000, [ColumnSpec("J1", 400), ColumnSpec("B", 10)], [],
        pad_bytes=160,
    ),
]

MEMORY_QUERIES = [
    "SELECT T1.A, T2.J1 FROM T1, T2 WHERE T1.J1 = T2.J1 AND T2.B = 3",
    "SELECT T1.A, T2.B FROM T1, T2 "
    "WHERE T1.J1 = T2.J1 AND T2.B = 3 ORDER BY T1.A",
    "SELECT COUNT(*) FROM T1, T2 WHERE T1.J1 = T2.J1",
]
GRACE_QUERIES = [
    "SELECT G1.A, G2.B FROM G1, G2 WHERE G1.J1 = G2.J1",
    "SELECT COUNT(*) FROM G1, G2 WHERE G1.J1 = G2.J1",
]


def _build(tables, buffer_pages, mode):
    db = build_database(tables, seed=7, buffer_pages=buffer_pages)
    if isinstance(mode, int):
        db.exec_mode = "parallel"
        db.workers = mode
    else:
        db.exec_mode = mode
    return db


@pytest.fixture(scope="module")
def memory_matrix() -> dict:
    """Physically identical in-memory-crossover databases, one per mode."""
    return {mode: _build(MEMORY_TABLES, 24, mode) for mode in MODES}


@pytest.fixture(scope="module")
def grace_matrix() -> dict:
    """Physically identical grace-crossover databases, one per mode."""
    return {mode: _build(GRACE_TABLES, 32, mode) for mode in MODES}


def _run(db: Database, sql: str):
    """Execute from a cold cache; return (rows, counter delta)."""
    db.storage.cold_cache()
    before = db.storage.counters.snapshot()
    result = db.execute(sql)
    delta = before.delta(db.storage.counters)
    return result.rows, delta


def _hash_nodes(db: Database, sql: str) -> list[HashJoinNode]:
    planned = db.plan(sql)
    return [
        node
        for node in walk_plan(planned.root)
        if isinstance(node, HashJoinNode)
    ]


# ---------------------------------------------------------------------------
# the DP picks hash join exactly where the formula says it wins
# ---------------------------------------------------------------------------


class TestPlanChoice:
    @pytest.mark.parametrize("sql", MEMORY_QUERIES)
    def test_memory_corpus_picks_hash(self, memory_matrix, sql):
        nodes = _hash_nodes(memory_matrix["interp"], sql)
        assert nodes, f"expected a hash join for {sql!r}"

    def test_filtered_build_side_stays_in_memory(self, memory_matrix):
        # T2.B = 3 trims the build side to ~250 rows: it fits the pool.
        # The unfiltered COUNT query's 2500-row build side does not, and
        # the same formula sends it through grace partitioning instead.
        for sql in MEMORY_QUERIES[:2]:
            for node in _hash_nodes(memory_matrix["interp"], sql):
                assert node.partitions == 1
        for node in _hash_nodes(memory_matrix["interp"], MEMORY_QUERIES[2]):
            assert node.partitions > 1

    @pytest.mark.parametrize("sql", GRACE_QUERIES)
    def test_grace_corpus_partitions_build_side(self, grace_matrix, sql):
        nodes = _hash_nodes(grace_matrix["interp"], sql)
        assert nodes, f"expected a hash join for {sql!r}"
        for node in nodes:
            assert node.partitions > 1

    @pytest.mark.parametrize(
        "sql", MEMORY_QUERIES + GRACE_QUERIES,
        ids=range(len(MEMORY_QUERIES + GRACE_QUERIES)),
    )
    def test_build_side_is_the_smaller_input(
        self, memory_matrix, grace_matrix, sql
    ):
        db = memory_matrix["interp"] if "T1" in sql else grace_matrix["interp"]
        for node in _hash_nodes(db, sql):
            assert node.inner.rows <= node.outer.rows + 1e-9

    def test_hash_join_claims_no_order(self, memory_matrix):
        for sql in MEMORY_QUERIES:
            for node in _hash_nodes(memory_matrix["interp"], sql):
                assert node.order_columns == ()

    def test_order_by_adds_sort_enforcer_over_hash(self, memory_matrix):
        planned = memory_matrix["interp"].plan(MEMORY_QUERIES[1])
        sorts = [
            node
            for node in walk_plan(planned.root)
            if isinstance(node, SortNode)
            and any(
                isinstance(below, HashJoinNode) for below in walk_plan(node)
            )
        ]
        assert sorts, "ORDER BY over a hash join needs an explicit sort"

    def test_buffer_resident_inner_keeps_nested_loop(self, empdept):
        # DEPT fits in the buffer pool: repeated NL probes are nearly free
        # and the per-tuple hashing overhead cannot pay for itself.
        sql = "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
        assert _hash_nodes(empdept, sql) == []

    def test_env_gate_removes_hash_join(self, memory_matrix, monkeypatch):
        db = memory_matrix["interp"]
        reference = {sql: db.query(sql).rows for sql in MEMORY_QUERIES}
        monkeypatch.setenv("REPRO_HASHJOIN", "0")
        for sql in MEMORY_QUERIES:
            assert _hash_nodes(db, sql) == []
            assert sorted(db.query(sql).rows) == sorted(reference[sql])

    def test_explain_renders_hash_join(self, memory_matrix, grace_matrix):
        memory_explain = memory_matrix["interp"].explain(MEMORY_QUERIES[0])
        assert "hash join (build T2) on T1.J1 = T2.J1" in memory_explain
        grace_explain = grace_matrix["interp"].explain(GRACE_QUERIES[0])
        assert "hash join (build " in grace_explain
        assert ", grace x" in grace_explain

    def test_plan_summary_renders_hash_join(self, memory_matrix):
        planned = memory_matrix["interp"].plan(MEMORY_QUERIES[0])
        summary = plan_summary(planned.root)
        assert "HASH(" in summary
        assert "build" in summary


# ---------------------------------------------------------------------------
# rows and cost counters are bit-identical across every execution mode
# ---------------------------------------------------------------------------


class TestModeFidelity:
    @pytest.mark.parametrize("sql", MEMORY_QUERIES)
    def test_memory_modes_identical(self, memory_matrix, sql):
        reference = _run(memory_matrix["interp"], sql)
        for mode in MODES:
            if mode == "interp":
                continue
            assert _run(memory_matrix[mode], sql) == reference, mode

    @pytest.mark.parametrize("sql", GRACE_QUERIES)
    def test_grace_modes_identical(self, grace_matrix, sql):
        reference = _run(grace_matrix["interp"], sql)
        for mode in MODES:
            if mode == "interp":
                continue
            assert _run(grace_matrix[mode], sql) == reference, mode


# ---------------------------------------------------------------------------
# hash ≡ merge ≡ nested loop on rows (and on order where one is required)
# ---------------------------------------------------------------------------


class TestMethodEquivalence:
    def test_memory_corpus_hash_off_equivalence(
        self, memory_matrix, monkeypatch
    ):
        reference = {
            sql: memory_matrix["interp"].query(sql).rows
            for sql in MEMORY_QUERIES
        }
        monkeypatch.setenv("REPRO_HASHJOIN", "0")
        fallback = _build(MEMORY_TABLES, 24, "interp")
        for sql in MEMORY_QUERIES:
            assert _hash_nodes(fallback, sql) == []
            rows = fallback.query(sql).rows
            assert sorted(rows) == sorted(reference[sql])
        # The ORDER BY query must agree on the ordered column exactly.
        ordered = fallback.query(MEMORY_QUERIES[1]).rows
        assert [row[0] for row in ordered] == [
            row[0] for row in reference[MEMORY_QUERIES[1]]
        ]

    def test_grace_corpus_hash_off_equivalence(
        self, grace_matrix, monkeypatch
    ):
        reference = {
            sql: grace_matrix["interp"].query(sql).rows
            for sql in GRACE_QUERIES
        }
        monkeypatch.setenv("REPRO_HASHJOIN", "0")
        fallback = _build(GRACE_TABLES, 32, "interp")
        for sql in GRACE_QUERIES:
            assert _hash_nodes(fallback, sql) == []
            assert sorted(fallback.query(sql).rows) == sorted(reference[sql])


# ---------------------------------------------------------------------------
# NULL join keys never match (three-valued logic), vs a reference join
# ---------------------------------------------------------------------------


def _wide_pair_db(keys1, keys2) -> Database:
    """Two unindexed wide tables sized past a 4-page pool: hash wins."""
    db = Database(buffer_pages=4)
    db.execute("CREATE TABLE T1 (K INTEGER, V INTEGER, PAD VARCHAR(300))")
    db.execute("CREATE TABLE T2 (K INTEGER, W INTEGER, PAD VARCHAR(300))")
    load_rows(db, "T1", [(k, i, "x" * 280) for i, k in enumerate(keys1)])
    load_rows(db, "T2", [(k, i * 2, "y" * 280) for i, k in enumerate(keys2)])
    db.execute("UPDATE STATISTICS")
    return db


class TestNullKeys:
    KEYS = st.lists(
        st.one_of(st.none(), st.integers(0, 7)), min_size=100, max_size=140
    )

    @settings(max_examples=10, deadline=None)
    @given(keys1=KEYS, keys2=KEYS)
    def test_null_keys_excluded_and_methods_agree(self, keys1, keys2):
        db = _wide_pair_db(keys1, keys2)
        sql = "SELECT T1.V, T2.W FROM T1, T2 WHERE T1.K = T2.K"
        assert _hash_nodes(db, sql), "the sweep must exercise hash plans"
        expected = sorted(
            (i, j * 2)
            for i, k1 in enumerate(keys1)
            if k1 is not None
            for j, k2 in enumerate(keys2)
            if k1 == k2
        )
        assert sorted(db.query(sql).rows) == expected
        # Same rows from the sort/merge + nested-loop planner.  The
        # textually distinct (but equivalent) predicate keeps the two
        # plans from ever being confused in failure output.
        os.environ["REPRO_HASHJOIN"] = "0"
        try:
            off = "SELECT T1.V, T2.W FROM T1, T2 WHERE T2.K = T1.K"
            assert _hash_nodes(db, off) == []
            assert sorted(db.query(off).rows) == expected
        finally:
            del os.environ["REPRO_HASHJOIN"]


# ---------------------------------------------------------------------------
# DML through hash-join plans
# ---------------------------------------------------------------------------


class TestDML:
    @pytest.mark.parametrize("mode", ["interp", 2], ids=["interp", "parallel"])
    def test_insert_select_through_hash_join(self, mode):
        db = _build(MEMORY_TABLES, 24, mode)
        select = (
            "SELECT T1.A, T2.J1 FROM T1, T2 "
            "WHERE T1.J1 = T2.J1 AND T2.B = 3"
        )
        assert _hash_nodes(db, select)
        expected = sorted(db.query(select).rows)
        db.execute("CREATE TABLE TOUT (A INTEGER, J INTEGER)")
        result = db.execute(f"INSERT INTO TOUT {select}")
        assert result.affected_rows == len(expected)
        assert sorted(db.query("SELECT A, J FROM TOUT").rows) == expected
        # And the loaded rows are further mutable under the same mode.
        db.execute("DELETE FROM TOUT WHERE J <> 3")
        db.execute("UPDATE TOUT SET A = A + 1 WHERE J = 3")
        assert sorted(db.query("SELECT A, J FROM TOUT").rows) == sorted(
            (a + 1, j) for a, j in expected if j == 3
        )


# ---------------------------------------------------------------------------
# the fault matrix, under REPRO_EXEC=parallel, on hash-join statements
# ---------------------------------------------------------------------------


def _fault_db(path) -> Database:
    db = Database(path=str(path), buffer_pages=4)
    db.execute("CREATE TABLE T1 (K INTEGER, V INTEGER, PAD VARCHAR(300))")
    db.execute("CREATE TABLE T2 (K INTEGER, W INTEGER, PAD VARCHAR(300))")
    load_rows(
        db,
        "T1",
        [(None if i % 9 == 0 else i % 16, i, "x" * 280) for i in range(120)],
    )
    load_rows(
        db,
        "T2",
        [
            (None if i % 7 == 0 else i % 16, i * 2, "y" * 280)
            for i in range(150)
        ],
    )
    db.execute("UPDATE STATISTICS")
    db.execute("CREATE TABLE TOUT (V INTEGER, W INTEGER, P VARCHAR(500))")
    db.execute("CREATE INDEX TOUT_V ON TOUT (V)")
    db.execute("CREATE INDEX TOUT_P ON TOUT (P)")
    assert _hash_nodes(db, "SELECT T1.V, T2.W FROM T1, T2 WHERE T1.K = T2.K")
    return db


#: Mixed DML whose reading side always plans a hash join: segment and
#: B-tree inserts (wide TOUT_P keys force splits), updates, deletes, and
#: every commit-path point, exactly like the core fault matrix.
HASH_MUTATIONS = [
    "INSERT INTO TOUT "
    "SELECT T1.V, T2.W, T1.PAD FROM T1, T2 WHERE T1.K = T2.K",
    "UPDATE TOUT SET W = W + 1 WHERE V < 40",
    "DELETE FROM TOUT WHERE V >= 80",
    "INSERT INTO TOUT SELECT T1.V + 1000, T2.W, T2.PAD FROM T1, T2 "
    "WHERE T2.K = T1.K AND T2.W < 60",
    "DELETE FROM TOUT WHERE V >= 1000",
]

HASH_FAULT_MATRIX = [
    (point, "error" if position % 2 == 0 else "crash")
    for position, point in enumerate(sorted(registered_points()))
]


@pytest.mark.parametrize(
    "point,action", HASH_FAULT_MATRIX,
    ids=[f"{p}:{a}" for p, a in HASH_FAULT_MATRIX],
)
def test_parallel_hash_join_fault_matrix(tmp_path, monkeypatch, point, action):
    monkeypatch.setenv("REPRO_EXEC", "parallel")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    db = _fault_db(tmp_path / "db.pages")
    injector = get_injector()
    injector.arm(FaultPlan(point, hit=1, action=action))
    mirror = logical_dump(db)
    error = None
    failed_at = None
    try:
        for position, sql in enumerate(HASH_MUTATIONS):
            try:
                db.execute(sql)
            except StorageError as caught:
                error = caught
                failed_at = position
                break
            mirror = logical_dump(db)
    finally:
        fired = list(injector.fired)
        injector.disarm()

    assert fired, f"{point} never fired; the workload no longer reaches it"
    assert error is not None, f"{point} fired but no statement failed"

    if action == "error":
        assert not isinstance(error, SimulatedCrash)
        # full rollback: the live store is exactly the pre-statement store
        assert logical_dump(db) == mirror
        assert verify_storage(db) == []
        # still good for the rest of the workload, including a retry
        for sql in HASH_MUTATIONS[failed_at:]:
            db.execute(sql)
        assert verify_storage(db) == []
        db.close()
    else:
        assert isinstance(error, SimulatedCrash)
        assert error.snapshot is not None
        db.close()
        restored = DiskManager.restore(
            error.snapshot, tmp_path / "recovered.pages"
        )
        survivor = Database(path=str(restored))
        # recovery lands on the last committed (pre-statement) state
        assert logical_dump(survivor) == mirror
        assert verify_storage(survivor) == []
        survivor.close()
