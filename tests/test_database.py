"""End-to-end tests for the Database facade (DDL, DML, queries)."""

import pytest

from repro import Database, IntegrityError, SemanticError
from repro.errors import CatalogError, ExecutionError


@pytest.fixture
def people(db):
    db.execute(
        "CREATE TABLE P (ID INTEGER, NAME VARCHAR(20), AGE INTEGER, CITY VARCHAR(20))"
    )
    db.execute("CREATE UNIQUE INDEX P_ID ON P (ID)")
    rows = [
        (1, "ANN", 30, "DENVER"),
        (2, "BOB", 25, "NYC"),
        (3, "CAL", 35, "DENVER"),
        (4, "DEE", 25, "SAN JOSE"),
        (5, "ELI", 40, "NYC"),
    ]
    for row in rows:
        db.execute(
            f"INSERT INTO P VALUES ({row[0]}, '{row[1]}', {row[2]}, '{row[3]}')"
        )
    db.execute("UPDATE STATISTICS")
    return db


class TestDdl:
    def test_create_and_query_empty(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        assert db.execute("SELECT * FROM T").rows == []

    def test_duplicate_table(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE T (A INTEGER)")

    def test_drop_table(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        db.execute("DROP TABLE T")
        with pytest.raises(SemanticError):
            db.execute("SELECT * FROM T")

    def test_create_index_on_populated_table(self, people):
        people.execute("CREATE INDEX P_AGE ON P (AGE)")
        result = people.execute("SELECT NAME FROM P WHERE AGE = 25")
        assert sorted(result.rows) == [("BOB",), ("DEE",)]

    def test_drop_index(self, people):
        people.execute("CREATE INDEX P_AGE ON P (AGE)")
        people.execute("DROP INDEX P_AGE")
        result = people.execute("SELECT NAME FROM P WHERE AGE = 25")
        assert sorted(result.rows) == [("BOB",), ("DEE",)]

    def test_clustered_index_reorganizes(self, people):
        people.execute("CREATE INDEX P_AGE ON P (AGE) CLUSTER")
        ages = [row[0] for row in people.execute("SELECT AGE FROM P").rows]
        assert ages == sorted(ages)


class TestInsert:
    def test_affected_rows(self, db):
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(5))")
        result = db.execute("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert result.affected_rows == 2

    def test_column_list_reorders(self, db):
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(5))")
        db.execute("INSERT INTO T (B, A) VALUES ('x', 9)")
        assert db.execute("SELECT A, B FROM T").rows == [(9, "x")]

    def test_missing_columns_become_null(self, db):
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(5))")
        db.execute("INSERT INTO T (A) VALUES (1)")
        assert db.execute("SELECT B FROM T").rows == [(None,)]

    def test_type_validation(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        with pytest.raises(SemanticError):
            db.execute("INSERT INTO T VALUES ('nope')")

    def test_unique_violation(self, people):
        with pytest.raises(IntegrityError):
            people.execute("INSERT INTO P VALUES (1, 'DUP', 1, 'X')")

    def test_arity_check(self, db):
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
        with pytest.raises(SemanticError):
            db.execute("INSERT INTO T VALUES (1)")


class TestUpdateDelete:
    def test_update_with_where(self, people):
        result = people.execute("UPDATE P SET AGE = 26 WHERE NAME = 'BOB'")
        assert result.affected_rows == 1
        assert people.execute("SELECT AGE FROM P WHERE NAME = 'BOB'").rows == [(26,)]

    def test_update_expression(self, people):
        people.execute("UPDATE P SET AGE = AGE + 1 WHERE CITY = 'DENVER'")
        ages = dict(people.execute("SELECT NAME, AGE FROM P").rows)
        assert ages["ANN"] == 31 and ages["CAL"] == 36
        assert ages["BOB"] == 25

    def test_update_maintains_index(self, people):
        people.execute("UPDATE P SET ID = 10 WHERE NAME = 'ANN'")
        assert people.execute("SELECT NAME FROM P WHERE ID = 10").rows == [("ANN",)]
        assert people.execute("SELECT NAME FROM P WHERE ID = 1").rows == []

    def test_update_all_rows(self, people):
        result = people.execute("UPDATE P SET AGE = 0")
        assert result.affected_rows == 5

    def test_delete_with_where(self, people):
        result = people.execute("DELETE FROM P WHERE CITY = 'NYC'")
        assert result.affected_rows == 2
        assert len(people.execute("SELECT * FROM P").rows) == 3

    def test_delete_all(self, people):
        people.execute("DELETE FROM P")
        assert people.execute("SELECT * FROM P").rows == []

    def test_delete_via_subquery(self, people):
        people.execute(
            "DELETE FROM P WHERE AGE < (SELECT AVG(AGE) FROM P)"
        )
        names = sorted(row[0] for row in people.execute("SELECT NAME FROM P").rows)
        assert names == ["CAL", "ELI"]


class TestQueries:
    def test_projection_names(self, people):
        result = people.execute("SELECT NAME AS WHO, AGE FROM P WHERE ID = 1")
        assert result.columns == ["WHO", "AGE"]
        assert result.rows == [("ANN", 30)]

    def test_expressions_in_select(self, people):
        result = people.execute("SELECT AGE * 2 FROM P WHERE ID = 2")
        assert result.rows == [(50,)]

    def test_order_by_desc(self, people):
        result = people.execute("SELECT NAME FROM P ORDER BY AGE DESC, NAME")
        assert [row[0] for row in result.rows] == ["ELI", "CAL", "ANN", "BOB", "DEE"]

    def test_distinct(self, people):
        result = people.execute("SELECT DISTINCT CITY FROM P")
        assert sorted(row[0] for row in result.rows) == [
            "DENVER",
            "NYC",
            "SAN JOSE",
        ]

    def test_group_by_with_having(self, people):
        result = people.execute(
            "SELECT CITY, COUNT(*) FROM P GROUP BY CITY HAVING COUNT(*) > 1"
        )
        assert sorted(result.rows) == [("DENVER", 2), ("NYC", 2)]

    def test_aggregates(self, people):
        result = people.execute(
            "SELECT COUNT(*), MIN(AGE), MAX(AGE), SUM(AGE), AVG(AGE) FROM P"
        )
        assert result.rows == [(5, 25, 40, 155, 31.0)]

    def test_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        result = db.execute("SELECT COUNT(*), AVG(A) FROM T")
        assert result.rows == [(0, None)]

    def test_count_ignores_nulls(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        db.execute("INSERT INTO T VALUES (1), (NULL), (3)")
        result = db.execute("SELECT COUNT(A), COUNT(*) FROM T")
        assert result.rows == [(2, 3)]

    def test_count_distinct(self, people):
        result = people.execute("SELECT COUNT(DISTINCT AGE) FROM P")
        assert result.rows == [(4,)]

    def test_self_join(self, people):
        result = people.execute(
            "SELECT X.NAME, Y.NAME FROM P X, P Y "
            "WHERE X.AGE = Y.AGE AND X.ID < Y.ID"
        )
        assert result.rows == [("BOB", "DEE")]

    def test_null_comparisons_filtered(self, db):
        db.execute("CREATE TABLE T (A INTEGER)")
        db.execute("INSERT INTO T VALUES (1), (NULL)")
        assert db.execute("SELECT * FROM T WHERE A = 1").rows == [(1,)]
        assert db.execute("SELECT * FROM T WHERE A <> 1").rows == []
        assert db.execute("SELECT * FROM T WHERE A IS NULL").rows == [(None,)]

    def test_scalar_subquery_errors_on_many_rows(self, people):
        with pytest.raises(ExecutionError):
            people.execute(
                "SELECT NAME FROM P WHERE AGE = (SELECT AGE FROM P WHERE CITY='NYC')"
            )

    def test_scalar_subquery_empty_is_null(self, people):
        result = people.execute(
            "SELECT NAME FROM P WHERE AGE = (SELECT AGE FROM P WHERE ID = 99)"
        )
        assert result.rows == []

    def test_statement_result_len_and_iter(self, people):
        result = people.execute("SELECT ID FROM P")
        assert len(result) == 5
        assert sorted(result)[0] == (1,)

    def test_scalar_helper(self, people):
        assert people.execute("SELECT COUNT(*) FROM P").scalar() == 5
