"""Unit tests for single-relation access path enumeration."""

import pytest

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER, varchar
from repro.optimizer.access_paths import enumerate_paths, probe_factor
from repro.optimizer.binder import Binder
from repro.optimizer.cost import CostModel
from repro.optimizer.orders import InterestingOrders, UNORDERED
from repro.optimizer.plan import IndexAccess, SegmentAccess
from repro.optimizer.predicates import (
    join_factor_as_sarg,
    partition_factors,
    to_cnf_factors,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP",
        [("ENO", INTEGER), ("NAME", varchar(16)), ("DNO", INTEGER), ("SAL", INTEGER)],
    )
    catalog.create_table("DEPT", [("DNO", INTEGER), ("LOC", varchar(16))])
    catalog.create_index("EMP_ENO", "EMP", ["ENO"], unique=True)
    catalog.create_index("EMP_DNO", "EMP", ["DNO"])
    catalog.set_relation_stats("EMP", RelationStats(5000, 60, 1.0))
    catalog.set_relation_stats("DEPT", RelationStats(50, 2, 1.0))
    catalog.set_index_stats("EMP_ENO", IndexStats(5000, 15, 1, 5000))
    catalog.set_index_stats("EMP_DNO", IndexStats(50, 12, 1, 50))
    return catalog


def paths_for(catalog, where=None, tables="EMP"):
    sql = f"SELECT * FROM {tables}"
    if where:
        sql += f" WHERE {where}"
    block = Binder(catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    orders = InterestingOrders(block, factors)
    estimator = SelectivityEstimator(catalog)
    model = CostModel(catalog, w=0.05, buffer_pages=128)
    partition = partition_factors(factors, block.aliases)
    candidates = enumerate_paths(
        "EMP",
        block.alias_table("EMP"),
        partition.local["EMP"],
        catalog,
        estimator,
        model,
        orders,
    )
    return block, factors, candidates, model


class TestEnumeration:
    def test_segment_scan_plus_one_per_index(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog)
        assert len(candidates) == 3
        kinds = [type(candidate.node.access) for candidate in candidates]
        assert kinds.count(SegmentAccess) == 1
        assert kinds.count(IndexAccess) == 2

    def test_unique_equal_path_is_cheapest(self, catalog):
        __, ___, candidates, model = paths_for(catalog, "ENO = 17")
        best = min(candidates, key=lambda c: model.total(c.node.cost))
        assert isinstance(best.node.access, IndexAccess)
        assert best.node.access.index.name == "EMP_ENO"
        assert best.node.cost.pages == 2.0
        assert best.node.rows <= 1.0

    def test_matching_index_beats_segment_scan_when_selective(self, catalog):
        __, ___, candidates, model = paths_for(catalog, "DNO = 9")
        by_cost = sorted(candidates, key=lambda c: model.total(c.node.cost))
        assert isinstance(by_cost[0].node.access, IndexAccess)
        assert by_cost[0].node.access.index.name == "EMP_DNO"

    def test_index_bounds_from_equality(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "DNO = 9")
        access = next(
            c.node.access
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        assert len(access.low) == 1 and len(access.high) == 1
        assert access.low_inclusive and access.high_inclusive

    def test_index_bounds_from_range(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "DNO > 9")
        access = next(
            c.node.access
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        assert len(access.low) == 1
        assert not access.low_inclusive
        assert not access.high

    def test_segment_scan_is_unordered(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog)
        seg = next(
            c for c in candidates if isinstance(c.node.access, SegmentAccess)
        )
        assert seg.order_key == UNORDERED

    def test_non_sargable_becomes_residual(self, catalog):
        __, ___, candidates, ____ = paths_for(catalog, "NAME LIKE 'A%'")
        for candidate in candidates:
            assert len(candidate.node.residual) == 1
            assert not candidate.node.sargs

    def test_rsicard_excludes_non_sargable(self, catalog):
        # RSICARD uses only sargable factors; rows estimate uses all.
        __, ___, candidates, ____ = paths_for(
            catalog, "DNO = 9 AND NAME LIKE 'A%'"
        )
        seg = next(
            c for c in candidates if isinstance(c.node.access, SegmentAccess)
        )
        assert seg.node.cost.rsi == pytest.approx(5000 / 50)
        assert seg.node.rows == pytest.approx(5000 / 50 * 0.1)


class TestProbePaths:
    def test_join_probe_enables_index(self, catalog):
        block = Binder(catalog).bind(
            parse_statement(
                "SELECT * FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
            )
        )
        factors = to_cnf_factors(block.where, block)
        join_factor = factors[0]
        sarg = join_factor_as_sarg(join_factor, "EMP")
        probes = [probe_factor(join_factor, sarg)]
        orders = InterestingOrders(block, factors)
        estimator = SelectivityEstimator(catalog)
        model = CostModel(catalog, w=0.05, buffer_pages=128)
        candidates = enumerate_paths(
            "EMP",
            block.alias_table("EMP"),
            [],
            catalog,
            estimator,
            model,
            orders,
            probe_factors=probes,
        )
        probed = next(
            c
            for c in candidates
            if isinstance(c.node.access, IndexAccess)
            and c.node.access.index.name == "EMP_DNO"
        )
        # The probe bounds the index with the outer column's value.
        assert len(probed.node.access.low) == 1
        # Matching 1/50 of (NINDX + TCARD) pages.
        assert probed.node.cost.pages == pytest.approx((12 + 60) / 50)
