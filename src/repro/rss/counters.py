"""Cost-event counters shared across the storage system.

The paper's cost model is ``COST = PAGE_FETCHES + W * RSI_CALLS``.  The
buffer pool increments :attr:`CostCounters.page_fetches` on every miss, and
scans increment :attr:`CostCounters.rsi_calls` for every tuple returned
across the RSI.  Benchmarks snapshot the counters around an execution to get
the *measured* cost of a plan.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostCounters:
    """Mutable counters for the two cost events of the System R cost model."""

    page_fetches: int = 0
    rsi_calls: int = 0
    buffer_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.page_fetches = 0
        self.rsi_calls = 0
        self.buffer_hits = 0

    def count_rsi_call(self, calls: int = 1) -> None:
        """Record tuples crossing the RSI.

        The only sanctioned way to count RSI events from outside ``rss/``
        (temporary-list traffic, merge group re-reads); the project lint
        forbids mutating the counter fields directly elsewhere.
        """
        self.rsi_calls += calls

    def merge(self, other: "CostCounters") -> None:
        """Fold a worker's private counters in by summation.

        Parallel drivers give every worker its own ``CostCounters`` and
        the driving thread merges them at the gather point.  Summation is
        exact because every counter mutation outside this class is an
        increment (``repro check --concurrency`` proves it, rule
        ``counter-not-mergeable``), so per-worker partial sums recompose
        into the serial totals regardless of completion order.
        """
        self.page_fetches += other.page_fetches
        self.rsi_calls += other.rsi_calls
        self.buffer_hits += other.buffer_hits

    def snapshot(self) -> "CounterSnapshot":
        """An immutable copy of the current counter values."""
        return CounterSnapshot(self.page_fetches, self.rsi_calls, self.buffer_hits)

    def restore(self, saved: "CounterSnapshot") -> None:
        """Rewind the counters to a previously-taken snapshot.

        Lifecycle writes (reset/restore) live here, next to the fields:
        every mutation *outside* this class must be an increment so
        per-worker counter copies stay mergeable by summation
        (``repro check --concurrency``, rule ``counter-not-mergeable``).
        """
        self.page_fetches = saved.page_fetches
        self.rsi_calls = saved.rsi_calls
        self.buffer_hits = saved.buffer_hits


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable point-in-time copy of :class:`CostCounters`."""

    page_fetches: int
    rsi_calls: int
    buffer_hits: int

    def delta(self, counters: CostCounters) -> "CounterSnapshot":
        """Events since this snapshot was taken."""
        return CounterSnapshot(
            counters.page_fetches - self.page_fetches,
            counters.rsi_calls - self.rsi_calls,
            counters.buffer_hits - self.buffer_hits,
        )

    # repro: keep — the paper's COST = PAGE FETCHES + W * RSI CALLS formula
    def weighted_cost(self, w: float) -> float:
        """Measured cost under the paper's formula for a given W."""
        return self.page_fetches + w * self.rsi_calls
