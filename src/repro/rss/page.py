"""Slotted 4 KiB pages and tuple identifiers.

Layout of a data page (all integers big-endian):

- bytes 0..2:   ``u16`` number of slots ever allocated
- bytes 2..4:   ``u16`` free-space pointer (offset where the next record
  would be written)
- records grow upward from byte 4; the slot directory grows downward from
  the end of the page, four bytes per slot (``u16`` record offset, ``u16``
  record length).  A slot with length 0 is empty (deleted) and may be reused.

A :class:`TupleId` (TID) is the stable address of a record: (page id, slot).
As in System R, updating a tuple in place keeps its TID; an update that no
longer fits becomes a delete + insert with a new TID.
"""

from __future__ import annotations

import struct
from typing import Iterator, NamedTuple

from ..errors import PageFullError, RecordTooLargeError, StorageError

PAGE_SIZE = 4096
_HEADER = struct.Struct(">HH")
_SLOT = struct.Struct(">HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

#: Largest record an *empty* page can hold (header plus one slot removed).
#: Anything bigger can never be placed, no matter how many fresh pages a
#: caller retries on.
USABLE_PAGE_BYTES = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE


class TupleId(NamedTuple):
    """Stable physical address of a stored tuple."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"({self.page_id},{self.slot})"


class Page:
    """One slotted data page.

    The page owns a ``bytearray`` of exactly :data:`PAGE_SIZE` bytes; all
    record operations manipulate those bytes directly.
    """

    def __init__(self, page_id: int, data: bytearray | None = None):
        self.page_id = page_id
        if data is None:
            # Page bytes mutate only on the driving thread (DML drains all
            # workers before any write); scan workers only read them.
            self.data = bytearray(PAGE_SIZE)  # concurrency: driver-confined
            self._set_header(0, _HEADER_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(f"page must be {PAGE_SIZE} bytes")
            self.data = data
        self.dirty = False  # concurrency: driver-confined

    # -- header helpers ---------------------------------------------------

    def _header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _set_header(self, slot_count: int, free_ptr: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_ptr)

    @property
    def slot_count(self) -> int:
        """Slots ever allocated on this page (including empty ones)."""
        return self._header()[0]

    def _slot(self, slot: int) -> tuple[int, int]:
        position = PAGE_SIZE - _SLOT_SIZE * (slot + 1)
        return _SLOT.unpack_from(self.data, position)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        position = PAGE_SIZE - _SLOT_SIZE * (slot + 1)
        _SLOT.pack_into(self.data, position, offset, length)

    # -- space accounting -------------------------------------------------

    def free_space(self) -> int:
        """Contiguous bytes available for a new record plus its slot."""
        slot_count, free_ptr = self._header()
        directory_start = PAGE_SIZE - _SLOT_SIZE * slot_count
        return max(0, directory_start - free_ptr)

    def dead_space(self) -> int:
        """Bytes occupied by deleted records, reclaimable by compaction."""
        __, free_ptr = self._header()
        live = sum(length for ___, length in self._live_slots())
        return free_ptr - _HEADER_SIZE - live

    def _live_slots(self):
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if length:
                yield slot, length

    def compact(self) -> None:
        """Rewrite live records contiguously, reclaiming dead space."""
        records = [(slot, self.read(slot)) for slot, __ in self._live_slots()]
        write_ptr = _HEADER_SIZE
        for slot, record in records:
            self.data[write_ptr : write_ptr + len(record)] = record
            self._set_slot(slot, write_ptr, len(record))
            write_ptr += len(record)
        self._set_header(self.slot_count, write_ptr)
        self.dirty = True

    def can_fit(self, record_size: int) -> bool:
        """Whether a record of ``record_size`` bytes fits on this page.

        Counts reclaimable dead space — :meth:`insert` compacts on demand.
        Reusing an empty slot needs only the record bytes; otherwise a new
        slot directory entry is also required.
        """
        needed = record_size
        if self._find_empty_slot() is None:
            needed += _SLOT_SIZE
        return self.free_space() + self.dead_space() >= needed

    def _find_empty_slot(self) -> int | None:
        for slot in range(self.slot_count):
            if self._slot(slot)[1] == 0:
                return slot
        return None

    # -- record operations --------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store a record, returning the slot number it was placed in.

        Raises :class:`RecordTooLargeError` when the record could not fit
        even on an empty page (so retrying on a fresh page is futile) and
        :class:`PageFullError` when only *this* page lacks the space.
        """
        if len(record) > USABLE_PAGE_BYTES:
            raise RecordTooLargeError(len(record), USABLE_PAGE_BYTES)
        slot = self._find_empty_slot()
        needed = len(record) + (0 if slot is not None else _SLOT_SIZE)
        if self.free_space() < needed:
            if self.free_space() + self.dead_space() < needed:
                raise PageFullError(
                    f"page {self.page_id}: need {needed} bytes, "
                    f"have {self.free_space()}"
                )
            self.compact()
        slot_count, free_ptr = self._header()
        if slot is None:
            slot = slot_count
            slot_count += 1
        self.data[free_ptr : free_ptr + len(record)] = record
        self._set_slot(slot, free_ptr, len(record))
        self._set_header(slot_count, free_ptr + len(record))
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record bytes at ``slot``; raises on empty slots."""
        if slot >= self.slot_count:
            raise StorageError(f"page {self.page_id}: no slot {slot}")
        offset, length = self._slot(slot)
        if length == 0:
            raise StorageError(f"page {self.page_id}: slot {slot} is empty")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Free a slot.  Record bytes become dead space until compaction."""
        if slot >= self.slot_count or self._slot(slot)[1] == 0:
            raise StorageError(f"page {self.page_id}: slot {slot} is empty")
        self._set_slot(slot, 0, 0)
        self.dirty = True

    def update(self, slot: int, record: bytes) -> bool:
        """Overwrite a record in place if it fits; returns False otherwise."""
        offset, length = self._slot(slot)
        if length == 0:
            raise StorageError(f"page {self.page_id}: slot {slot} is empty")
        if len(record) <= length:
            self.data[offset : offset + len(record)] = record
            self._set_slot(slot, offset, len(record))
            self.dirty = True
            return True
        return False

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield (slot, record bytes) for every occupied slot, in slot order."""
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if length:
                yield slot, bytes(self.data[offset : offset + length])

    def occupied_slots(self) -> int:
        """Slots currently holding a record."""
        return sum(1 for __ in self.records())

    def is_empty(self) -> bool:
        """True when nothing is stored here."""
        return self.occupied_slots() == 0

    def clone(self) -> "Page":
        """An independent copy (shadow version for statement rollback)."""
        copy = Page(self.page_id, bytearray(self.data))
        copy.dirty = self.dirty
        return copy
