"""The execution engine: a Volcano-style interpreter over plan trees.

System R compiled plans to machine code; we interpret the same plan trees
(see DESIGN.md for why this substitution is behaviour-preserving).  The
operators pull rows tuple-at-a-time through the RSS scans the optimizer
chose, so every page fetch and RSI call the cost model predicts has a
measurable runtime counterpart.
"""

from .executor import Executor, QueryResult
from .rows import Row
from .evaluator import EvalEnv, evaluate

__all__ = ["EvalEnv", "Executor", "QueryResult", "Row", "evaluate"]
