"""E12 — Section 6: correlated subquery re-evaluation strategies.

A correlated subquery is re-evaluated per candidate tuple; the paper notes
the re-evaluation "can be made conditional ... if the current referenced
value is the same as the one in the previous candidate tuple", and that it
may even pay to *sort* the outer relation on the referenced column.  The
planner implements that decision; this bench measures evaluation counts and
weighted cost across the strategies, isolating the planner's contribution.
"""

import pytest

from conftest import weighted
from repro import Database
from repro.workloads import load_rows

EMPLOYEES = 600
MANAGERS = 12


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE E (ENO INTEGER, SALARY INTEGER, MANAGER INTEGER)"
    )
    rows = [(i, 50 + (i * 13) % 150, (i * 31) % MANAGERS) for i in range(EMPLOYEES)]
    load_rows(database, "E", rows)
    database.execute("CREATE INDEX E_MGR ON E (MANAGER)")
    database.execute("UPDATE STATISTICS")
    return database


QUERY = (
    "SELECT ENO FROM E X WHERE SALARY > "
    "(SELECT AVG(SALARY) FROM E WHERE MANAGER = X.MANAGER)"
)


def run(db, mode, planner_ordering):
    db.subquery_cache_mode = mode
    db.correlation_ordering = planner_ordering
    planned = db.plan(QUERY)
    executor = db.executor()
    db.cold_cache()
    result = executor.execute(planned)
    snapshot = db.counters.snapshot()
    evaluations = sum(executor.last_runtime.evaluation_counts.values())
    db.correlation_ordering = None
    return evaluations, weighted(snapshot, planned.w), len(result.rows), planned


def test_nested_query_strategies(db, report, benchmark):
    benchmark.pedantic(lambda: run(db, "prev", True), rounds=3, iterations=1)

    configurations = [
        ("no caching", "none", False),
        ("prev-value skip, unordered plan", "prev", False),
        ("prev-value skip + planner orders outer", "prev", True),
        ("full memoization", "memo", False),
    ]
    rows = []
    results = {}
    for label, mode, ordering in configurations:
        evaluations, cost, count, planned = run(db, mode, ordering)
        results[label] = (evaluations, cost, count)
        rows.append([label, evaluations, cost, count])

    report.line("E12 — correlated subquery evaluation (Section 6)")
    report.line(
        f"{EMPLOYEES} candidate tuples, {MANAGERS} distinct referenced values"
    )
    report.table(
        ["strategy", "evaluations", "weighted cost", "rows"],
        rows,
        widths=[40, 13, 15, 8],
    )
    report.line()
    report.line(
        '"the re-evaluation can be made conditional" — and "it might even'
    )
    report.line(
        'pay to sort the referenced relation on the referenced column":'
    )
    report.line(
        "the planner orders the outer on MANAGER, collapsing evaluations"
    )
    report.line("to one per distinct value.")

    # All strategies agree on the answer.
    counts = {value[2] for value in results.values()}
    assert len(counts) == 1
    # Without caching: one evaluation per candidate tuple.
    assert results["no caching"][0] == EMPLOYEES
    # The skip alone helps only as much as accidental ordering allows...
    unordered = results["prev-value skip, unordered plan"][0]
    # ...while the planner-ordered outer reaches one per distinct value.
    ordered = results["prev-value skip + planner orders outer"][0]
    assert ordered == MANAGERS
    assert ordered <= unordered
    # Memoization reaches the same bound without any ordering.
    assert results["full memoization"][0] == MANAGERS
    # And the measured cost improves accordingly.
    assert (
        results["prev-value skip + planner orders outer"][1]
        < results["no caching"][1]
    )
