"""A5 — extra ablation: the effective buffer size.

Table 2's alternative formulas hinge on "if this number fits in the System
R buffer", and the nested-loop residency reasoning depends on what the
buffer can hold.  Sweeping the pool size shows plan choices flipping (index
probes vs sort-merge vs resident rescans) and both predicted and measured
costs falling as the pool grows.
"""

from conftest import measure_cold, weighted
from repro import Database
from repro.optimizer.explain import plan_summary
from repro.workloads import load_rows

BUFFERS = [2, 4, 8, 16, 48, 128]
SQL = (
    "SELECT L.V, R.W FROM L, R "
    "WHERE L.K = R.K AND R.F = 3"
)


def build(buffer_pages: int) -> Database:
    db = Database(buffer_pages=buffer_pages)
    db.execute("CREATE TABLE L (K INTEGER, V INTEGER, PAD VARCHAR(52))")
    db.execute("CREATE TABLE R (K INTEGER, W INTEGER, F INTEGER, PAD VARCHAR(52))")
    load_rows(db, "L", [((i * 7) % 60, i, "x" * 44) for i in range(900)])
    load_rows(
        db,
        "R",
        [((i * 11) % 60, i, i % 9, "y" * 44) for i in range(700)],
    )
    db.execute("CREATE INDEX L_K ON L (K)")
    db.execute("CREATE INDEX R_F ON R (F)")
    db.execute("UPDATE STATISTICS")
    return db


def test_buffer_size_sweep(report, benchmark):
    rows = []
    measured_costs = []
    reference_rows = None
    for buffer_pages in BUFFERS:
        db = build(buffer_pages)
        planned = db.plan(SQL)
        if buffer_pages == BUFFERS[0]:
            benchmark.pedantic(lambda: db.plan(SQL), rounds=3, iterations=1)
        measured, result = measure_cold(db, planned)
        cost = weighted(measured, planned.w)
        measured_costs.append(cost)
        if reference_rows is None:
            reference_rows = sorted(result.rows)
        else:
            assert sorted(result.rows) == reference_rows
        rows.append(
            [
                buffer_pages,
                planned.estimated_total(),
                cost,
                measured.page_fetches,
                plan_summary(planned.root)[:58],
            ]
        )

    report.line("A5 — effective buffer size sweep (same data, same query)")
    report.table(
        ["buffer", "pred cost", "meas cost", "fetches", "plan"],
        rows,
        widths=[8, 12, 12, 9, 60],
    )
    report.line()
    report.line(
        "Bigger pools unlock the buffer-fit formulas and resident inners;"
    )
    report.line("the chosen plan and its measured cost both respond.")

    # Measured cost must never get *worse* as the buffer grows (within noise).
    for earlier, later in zip(measured_costs, measured_costs[1:]):
        assert later <= earlier * 1.25
    # And the largest pool beats the smallest clearly.
    assert measured_costs[-1] < measured_costs[0]
    # At least two distinct plan shapes appear across the sweep.
    assert len({row[4] for row in rows}) >= 2
