"""Direct tests of the nested-query runtime caches (Section 6 machinery)."""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture
def db_with_data(db):
    db.execute("CREATE TABLE OUTERT (K INTEGER, REF INTEGER)")
    db.execute("CREATE TABLE INNERT (REF INTEGER, V INTEGER)")
    # REF pattern 0,0,1,1,0,0,1,1... consecutive duplicates exist but the
    # value also recurs later — distinguishing "prev" from "memo".
    load_rows(db, "OUTERT", [(i, (i // 2) % 2) for i in range(12)])
    load_rows(db, "INNERT", [(r, r * 100) for r in range(2)])
    db.execute("UPDATE STATISTICS")
    return db


SQL = (
    "SELECT K FROM OUTERT X WHERE 0 < "
    "(SELECT COUNT(*) FROM INNERT WHERE REF = X.REF)"
)


def evaluations(db, mode):
    db.subquery_cache_mode = mode
    db.correlation_ordering = False  # isolate the runtime cache itself
    planned = db.plan(SQL)
    executor = db.executor()
    result = executor.execute(planned)
    db.correlation_ordering = None
    return sum(executor.last_runtime.evaluation_counts.values()), len(result.rows)


class TestCacheModes:
    def test_none_evaluates_per_candidate(self, db_with_data):
        count, rows = evaluations(db_with_data, "none")
        assert count == 12
        assert rows == 12

    def test_prev_skips_consecutive_duplicates_only(self, db_with_data):
        count, rows = evaluations(db_with_data, "prev")
        # Pattern 0,0,1,1,0,0,...: every second candidate repeats the
        # previous value, so half the evaluations are skipped — but earlier
        # values recur and must be re-evaluated (unlike memo).
        assert count == 6
        assert rows == 12

    def test_memo_evaluates_once_per_distinct(self, db_with_data):
        count, rows = evaluations(db_with_data, "memo")
        assert count == 2
        assert rows == 12

    def test_invalid_mode_rejected(self, db_with_data):
        from repro.engine.executor import Runtime

        planned = db_with_data.plan(SQL)
        with pytest.raises(ValueError):
            Runtime(
                db_with_data.storage,
                db_with_data.catalog,
                planned,
                "bogus",
            )

    def test_caches_do_not_leak_between_executions(self, db_with_data):
        db_with_data.subquery_cache_mode = "memo"
        first = db_with_data.execute(SQL)
        # Mutate the inner relation; a fresh execution must see the change.
        db_with_data.execute("DELETE FROM INNERT WHERE REF = 1")
        second = db_with_data.execute(SQL)
        assert len(second.rows) < len(first.rows)
