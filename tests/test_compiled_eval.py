"""Compiled execution ≡ reference interpreter, differentially.

The engine compiles bound expressions into closures (``engine/compile.py``)
while :func:`repro.engine.evaluator.evaluate` stays behind as the executable
specification.  These tests run the same queries through both modes —
``exec_mode="compiled"`` and ``exec_mode="interp"`` — over physically
identical databases and require identical rows, identical cost counters,
and identical subquery evaluation counts.  A hypothesis sweep generates
random predicates (with NULLs in the data, so three-valued logic is
exercised) on top of the hand-picked corpus.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import ExecutionError
from repro.workloads import FIG1_QUERY, build_empdept
from repro.workloads.empdept import load_rows

MODES = ("compiled", "interp")


def _company(exec_mode: str) -> Database:
    db = Database(exec_mode=exec_mode)
    db.execute(
        "CREATE TABLE EMPLOYEE (ENO INTEGER, NAME VARCHAR(20), SALARY INTEGER, "
        "BONUS FLOAT, MANAGER INTEGER, DNO INTEGER)"
    )
    db.execute("CREATE TABLE DEPARTMENT (DNO INTEGER, LOCATION VARCHAR(20))")
    load_rows(
        db,
        "EMPLOYEE",
        [
            (1, "ALICE", 100, 1.5, None, 10),
            (2, "BOB", 80, None, 1, 10),
            (3, "CAROL", 90, 0.0, 1, 20),
            (4, "DAN", 85, 2.25, 2, 10),
            (5, "EVE", None, 1.0, 2, 20),
            (6, "FRED", 95, None, 3, None),
            (7, "GINA", 60, 3.5, 3, 10),
            (8, None, 60, 0.5, 3, 20),
        ],
    )
    load_rows(db, "DEPARTMENT", [(10, "DENVER"), (20, "NYC"), (30, None)])
    db.execute("CREATE UNIQUE INDEX E_ENO ON EMPLOYEE (ENO)")
    db.execute("CREATE INDEX E_MGR ON EMPLOYEE (MANAGER)")
    db.execute("CREATE INDEX E_SAL ON EMPLOYEE (SALARY)")
    db.execute("CREATE INDEX D_DNO ON DEPARTMENT (DNO)")
    db.execute("UPDATE STATISTICS")
    return db


@pytest.fixture(scope="module")
def company_pair() -> dict[str, Database]:
    """Physically identical databases, one per execution mode."""
    return {mode: _company(mode) for mode in MODES}


@pytest.fixture(scope="module")
def empdept_pair() -> dict[str, Database]:
    return {
        mode: build_empdept(employees=300, departments=12, seed=3)
        for mode in MODES
    }


def _run(db: Database, sql: str):
    """Execute and return (rows, counter delta, evaluation counts)."""
    before = db.storage.counters.snapshot()
    result = db.execute(sql)
    delta = before.delta(db.storage.counters)
    return result.rows, delta


#: Every expression kind the compiler handles, including 3VL over NULLs.
QUERY_CORPUS = [
    # arithmetic, typed comparisons, projection expressions
    "SELECT ENO, SALARY * 2 + 1 FROM EMPLOYEE WHERE SALARY > 70",
    "SELECT ENO, BONUS / 2 FROM EMPLOYEE WHERE BONUS >= 1.0",
    "SELECT ENO FROM EMPLOYEE WHERE -SALARY < -80",
    "SELECT ENO FROM EMPLOYEE WHERE SALARY + DNO <> 95",
    # string comparison, LIKE
    "SELECT NAME FROM EMPLOYEE WHERE NAME >= 'C'",
    "SELECT NAME FROM EMPLOYEE WHERE NAME LIKE '%A%'",
    "SELECT NAME FROM EMPLOYEE WHERE NAME LIKE '_A%'",
    # BETWEEN / IN with NULLs in play
    "SELECT ENO FROM EMPLOYEE WHERE SALARY BETWEEN 60 AND 90",
    "SELECT ENO FROM EMPLOYEE WHERE DNO IN (10, 30)",
    "SELECT ENO FROM EMPLOYEE WHERE SALARY IN (60, 95, 100)",
    "SELECT ENO FROM EMPLOYEE WHERE SALARY NOT IN (60, 95)",
    # IS NULL and three-valued AND/OR/NOT
    "SELECT ENO FROM EMPLOYEE WHERE MANAGER IS NULL",
    "SELECT ENO FROM EMPLOYEE WHERE BONUS IS NOT NULL AND DNO IS NOT NULL",
    "SELECT ENO FROM EMPLOYEE WHERE NOT (SALARY > 80 OR BONUS > 1.0)",
    "SELECT ENO FROM EMPLOYEE WHERE SALARY > 80 OR BONUS IS NULL",
    "SELECT ENO FROM EMPLOYEE WHERE (DNO = 10 AND SALARY > 70) OR MANAGER = 3",
    # index-assisted access paths (sargs compiled into matchers)
    "SELECT NAME FROM EMPLOYEE WHERE ENO = 4",
    "SELECT NAME FROM EMPLOYEE WHERE MANAGER = 2 AND SALARY > 70",
    "SELECT NAME FROM EMPLOYEE WHERE SALARY BETWEEN 80 AND 95 AND DNO = 10",
    # joins (nested loop and sort/merge both reachable)
    "SELECT E.NAME, D.LOCATION FROM EMPLOYEE E, DEPARTMENT D "
    "WHERE E.DNO = D.DNO AND E.SALARY >= 80",
    "SELECT E.NAME, D.LOCATION FROM EMPLOYEE E, DEPARTMENT D "
    "WHERE E.DNO = D.DNO ORDER BY D.LOCATION, E.NAME",
    # aggregation, HAVING, DISTINCT, ORDER BY
    "SELECT DNO, COUNT(*), AVG(SALARY) FROM EMPLOYEE GROUP BY DNO",
    "SELECT DNO, MAX(SALARY), MIN(BONUS) FROM EMPLOYEE "
    "GROUP BY DNO HAVING COUNT(*) > 1",
    "SELECT DISTINCT DNO FROM EMPLOYEE",
    "SELECT NAME, SALARY FROM EMPLOYEE WHERE SALARY IS NOT NULL "
    "ORDER BY SALARY DESC, NAME",
    "SELECT COUNT(*) FROM EMPLOYEE WHERE BONUS IS NULL",
    # subqueries: scalar, IN, correlated
    "SELECT NAME FROM EMPLOYEE "
    "WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
    "SELECT NAME FROM EMPLOYEE WHERE DNO IN "
    "(SELECT DNO FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
    "SELECT E.NAME FROM EMPLOYEE E WHERE E.SALARY > "
    "(SELECT AVG(SALARY) FROM EMPLOYEE WHERE DNO = E.DNO)",
    "SELECT NAME FROM EMPLOYEE WHERE MANAGER NOT IN "
    "(SELECT ENO FROM EMPLOYEE WHERE DNO = 20)",
]


@pytest.mark.parametrize("sql", QUERY_CORPUS)
def test_modes_agree_on_corpus(company_pair, sql):
    rows_by_mode = {}
    deltas = {}
    for mode, db in company_pair.items():
        rows, delta = _run(db, sql)
        rows_by_mode[mode] = rows
        deltas[mode] = delta
    if "ORDER BY" in sql:
        assert rows_by_mode["compiled"] == rows_by_mode["interp"]
    else:
        assert sorted(map(repr, rows_by_mode["compiled"])) == sorted(
            map(repr, rows_by_mode["interp"])
        )
    assert deltas["compiled"] == deltas["interp"]


def test_fig1_query_agrees_with_counters(empdept_pair):
    rows = {}
    deltas = {}
    for mode, db in empdept_pair.items():
        db.storage.cold_cache()
        rows[mode], deltas[mode] = _run(db, FIG1_QUERY)
    assert sorted(rows["compiled"]) == sorted(rows["interp"])
    assert deltas["compiled"] == deltas["interp"]


def test_correlated_evaluation_counts_identical(company_pair):
    """The per-referenced-tuple subquery cadence must not change."""
    sql = (
        "SELECT E.NAME FROM EMPLOYEE E WHERE E.SALARY > "
        "(SELECT AVG(SALARY) FROM EMPLOYEE WHERE DNO = E.DNO)"
    )
    counts = {}
    for mode, db in company_pair.items():
        executor = db.executor()
        from repro.sql import parse_statement

        executor.execute(db.plan_query(parse_statement(sql)))
        counts[mode] = dict(executor.last_runtime.evaluation_counts.items())
    assert list(counts["compiled"].values()) == list(counts["interp"].values())


def test_division_by_zero_raises_in_both_modes(company_pair):
    for db in company_pair.values():
        with pytest.raises(ExecutionError, match="division by zero"):
            db.execute("SELECT SALARY / (ENO - ENO) FROM EMPLOYEE")


def test_constant_folding_does_not_hoist_errors(company_pair):
    """``1/0`` behind a false guard must not raise at compile time."""
    for db in company_pair.values():
        rows = db.execute(
            "SELECT ENO FROM EMPLOYEE WHERE ENO < 0 AND 1 / 0 > 1"
        ).rows
        assert rows == []


# ---------------------------------------------------------------------------
# hypothesis sweep: random predicates over NULL-laden data
# ---------------------------------------------------------------------------

_NUM_TERMS = ("A", "B", "A + B", "A - B", "B * 2", "3", "7", "-2")
_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _comparisons() -> st.SearchStrategy[str]:
    return st.builds(
        lambda left, op, right: f"{left} {op} {right}",
        st.sampled_from(_NUM_TERMS),
        st.sampled_from(_CMP_OPS),
        st.sampled_from(_NUM_TERMS),
    )


def _atoms() -> st.SearchStrategy[str]:
    return st.one_of(
        _comparisons(),
        st.builds(
            lambda col, lo, hi: f"{col} BETWEEN {lo} AND {hi}",
            st.sampled_from(("A", "B")),
            st.integers(-3, 5),
            st.integers(-3, 12),
        ),
        st.builds(
            lambda col, values: f"{col} IN ({', '.join(map(str, values))})",
            st.sampled_from(("A", "B")),
            st.lists(st.integers(-2, 9), min_size=1, max_size=4),
        ),
        st.builds(
            lambda col, negate: f"{col} IS {'NOT ' if negate else ''}NULL",
            st.sampled_from(("A", "B", "S")),
            st.booleans(),
        ),
        st.builds(
            lambda pattern: f"S LIKE '{pattern}'",
            st.sampled_from(("x%", "%y", "_x%", "%", "xy")),
        ),
    )


def _predicates() -> st.SearchStrategy[str]:
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            st.builds(lambda p: f"NOT ({p})", children),
            st.builds(
                lambda l, op, r: f"({l}) {op} ({r})",
                children,
                st.sampled_from(("AND", "OR")),
                children,
            ),
        ),
        max_leaves=4,
    )


@pytest.fixture(scope="module")
def sweep_pair() -> dict[str, Database]:
    pair = {}
    for mode in MODES:
        db = Database(exec_mode=mode)
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER, S VARCHAR(4))")
        rows = []
        for a in (None, -2, 0, 1, 3, 7):
            for b, s in ((None, "xy"), (2, None), (5, "yx"), (8, "xxxx")):
                rows.append((a, b, s))
        load_rows(db, "T", rows)
        db.execute("UPDATE STATISTICS")
        pair[mode] = db
    return pair


@settings(max_examples=60, deadline=None)
@given(predicate=_predicates())
def test_random_predicates_agree(sweep_pair, predicate):
    sql = f"SELECT A, B, S FROM T WHERE {predicate}"
    rows = {}
    deltas = {}
    for mode, db in sweep_pair.items():
        rows[mode], deltas[mode] = _run(db, sql)
    assert sorted(map(repr, rows["compiled"])) == sorted(
        map(repr, rows["interp"])
    )
    assert deltas["compiled"] == deltas["interp"]
