"""Tests for the §6 correlation-ordering optimization.

"If the referenced relation is ordered on the referenced column, the
re-evaluation can be made conditional ... In some cases, it might even pay
to sort the referenced relation on the referenced column in order to avoid
re-evaluating subqueries unnecessarily."
"""

import pytest

from repro import Database
from repro.optimizer.plan import SortNode, walk_plan
from repro.workloads import load_rows

EMPLOYEES = 800
MANAGERS = 8


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE E (ENO INTEGER, SALARY INTEGER, MANAGER INTEGER, "
        "PAD VARCHAR(40))"
    )
    load_rows(
        database,
        "E",
        [
            (i, 50 + (i * 13) % 150, (i * 31) % MANAGERS, "x" * 32)
            for i in range(EMPLOYEES)
        ],
    )
    database.execute("CREATE INDEX E_MGR ON E (MANAGER)")
    database.execute("UPDATE STATISTICS")
    return database


CORRELATED = (
    "SELECT ENO FROM E X WHERE SALARY > "
    "(SELECT AVG(SALARY) FROM E WHERE MANAGER = X.MANAGER)"
)


class TestPlannerDecision:
    def test_expensive_subquery_induces_order(self, db):
        """With prev-value caching on, the planner orders the outer on the
        referenced column (via the MANAGER index or a sort)."""
        db.subquery_cache_mode = "prev"
        planned = db.plan(CORRELATED)
        # The access below the projection must produce MANAGER order:
        # either an index path on MANAGER or an explicit sort.
        node = planned.root
        while node.children():
            produced = node.order_columns
            if produced[:1] == (("X", 2),):
                break
            node = node.children()[0]
        assert node.order_columns[:1] == (("X", 2),)

    def test_nested_eval_total_accounted(self, db):
        db.subquery_cache_mode = "prev"
        planned = db.plan(CORRELATED)
        assert planned.nested_eval_total > 0
        assert planned.estimated_total() > planned.root.cost.total(planned.w)

    def test_no_ordering_without_caching(self, db):
        """With caching off, ordering buys nothing and no sort is added."""
        db.subquery_cache_mode = "none"
        planned = db.plan(CORRELATED)
        sorts = [n for n in walk_plan(planned.root) if isinstance(n, SortNode)]
        assert not sorts

    def test_uncorrelated_subquery_costs_once(self, db):
        planned = db.plan(
            "SELECT ENO FROM E WHERE SALARY > (SELECT AVG(SALARY) FROM E)"
        )
        sub = next(iter(planned.subquery_plans.values()))
        assert planned.nested_eval_total == pytest.approx(
            sub.estimated_total()
        )


class TestRuntimeEffect:
    def test_ordered_plan_reduces_evaluations(self, db):
        db.subquery_cache_mode = "prev"
        planned = db.plan(CORRELATED)
        executor = db.executor()
        result = executor.execute(planned)
        evaluations = sum(executor.last_runtime.evaluation_counts.values())
        # One evaluation per distinct MANAGER value, not per employee.
        assert evaluations == MANAGERS
        assert len(result.rows) > 0

    def test_results_identical_across_modes(self, db):
        reference = None
        for mode in ("none", "prev", "memo"):
            db.subquery_cache_mode = mode
            rows = sorted(db.execute(CORRELATED).rows)
            if reference is None:
                reference = rows
            assert rows == reference

    def test_measured_cost_improves_with_ordering(self, db):
        costs = {}
        for mode in ("none", "prev"):
            db.subquery_cache_mode = mode
            planned = db.plan(CORRELATED)
            db.cold_cache()
            db.executor().execute(planned)
            counters = db.counters
            costs[mode] = counters.page_fetches + planned.w * counters.rsi_calls
        assert costs["prev"] < costs["none"]
