"""Frozen copy of the seed (pre-bitmask) join enumerator.

This is the reference implementation for the plan-equivalence gate: the
bitmask DP in :mod:`repro.optimizer.joins` must produce cost-identical
plans (same totals, same chosen order classes) as this enumerator on the
paper's Fig. 1-6 examples and on generated query sweeps.  Keep this file
frozen — it intentionally preserves the seed's ``frozenset[str]`` subset
keys and its uncached per-extension arithmetic.
"""


from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import PlannerError
from repro.sql import ast
from repro.optimizer.access_paths import (
    PathCandidate,
    enumerate_paths,
    inner_resident_cap,
    probe_factor,
)
from repro.optimizer.bound import BoundColumn, BoundQueryBlock
from repro.optimizer.cost import Cost, CostModel, ZERO_COST, tuple_byte_width
from repro.optimizer.orders import InterestingOrders, OrderKey, UNORDERED
from repro.optimizer.plan import MergeJoinNode, NestedLoopJoinNode, PlanNode, SortNode
from repro.optimizer.predicates import BooleanFactor, join_factor_as_sarg, partition_factors
from repro.optimizer.selectivity import SelectivityEstimator


@dataclass
class SeedJoinEntry:
    """The cheapest known solution for (relation subset, order class)."""

    plan: PlanNode
    order_key: OrderKey

    @property
    def cost(self) -> Cost:
        """The entry's predicted cost."""
        return self.plan.cost

    @property
    def rows(self) -> float:
        """The entry's estimated output cardinality."""
        return self.plan.rows


@dataclass(frozen=True)
class SeedPrunedCandidate:
    """A solution the DP discarded, kept for the prune audit.

    Recorded only under ``record_prunes`` (the ``REPRO_CHECK=1`` path):
    the cost auditor verifies that every pruned candidate really was no
    cheaper than the survivor of its (relation set, order class).
    """

    aliases: frozenset[str]
    order_key: OrderKey
    total: float


@dataclass
class SeedSearchStats:
    """Bookkeeping for the optimization-cost experiments (E10, A3)."""

    plans_considered: int = 0
    entries_stored: int = 0
    subsets_expanded: int = 0
    extensions_pruned_by_heuristic: int = 0
    #: Filled only when the search runs with ``record_prunes=True``.
    pruned: list[SeedPrunedCandidate] = field(default_factory=list)
    survivor_totals: dict[tuple[frozenset[str], OrderKey], float] = field(
        default_factory=dict
    )


class SeedJoinSearch:
    """One DP search over a bound query block's FROM list."""

    def __init__(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        catalog: Catalog,
        estimator: SelectivityEstimator,
        cost_model: CostModel,
        orders: InterestingOrders,
        use_heuristic: bool = True,
        use_interesting_orders: bool = True,
        record_prunes: bool = False,
    ):
        self._block = block
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self._orders = orders
        self._use_heuristic = use_heuristic
        self._use_orders = use_interesting_orders
        self._record_prunes = record_prunes
        self.stats = SeedSearchStats()

        self._aliases = block.aliases
        partition = partition_factors(factors, self._aliases)
        self._local = partition.local
        self._join_factors = partition.joins
        self._multi_factors = partition.multi
        self.constant_factors = partition.constant

        self._selectivity_cache: dict[int, float] = {}
        self._factors_by_id = {id(f): f for f in factors}
        self.best: dict[frozenset[str], dict[OrderKey, SeedJoinEntry]] = {}

    # -- public API -------------------------------------------------------------

    def search(self) -> dict[OrderKey, SeedJoinEntry]:
        """Run the DP; returns the solutions for the full FROM list."""
        for alias in self._aliases:
            self._seed_single(alias)
        full = frozenset(self._aliases)
        for size in range(2, len(self._aliases) + 1):
            subsets = [s for s in list(self.best) if len(s) == size - 1]
            for subset in subsets:
                self.stats.subsets_expanded += 1
                for alias in self._candidate_extensions(subset):
                    self._extend(subset, alias)
        if full not in self.best or not self.best[full]:
            raise PlannerError("join search produced no complete solution")
        if self._record_prunes:
            # Snapshot the survivors so the prune audit can replay every
            # discard decision against the entry that beat it.
            for aliases, entries in self.best.items():
                for key, entry in entries.items():
                    self.stats.survivor_totals[(aliases, key)] = (
                        self._cost.total(entry.cost)
                    )
        return self.best[full]

    def solutions_for(self, aliases: frozenset[str]) -> dict[OrderKey, SeedJoinEntry]:
        """Surviving entries for one relation subset."""
        return self.best.get(aliases, {})

    def cheapest(self, solutions: dict[OrderKey, SeedJoinEntry]) -> SeedJoinEntry:
        """The minimum-total entry of a solution set."""
        return min(solutions.values(), key=lambda e: self._cost.total(e.cost))

    def total_entries(self) -> int:
        """Entries stored across all subsets (the 2^n-bound metric)."""
        return sum(len(entries) for entries in self.best.values())

    # -- DP seeding and extension ---------------------------------------------------

    def _seed_single(self, alias: str) -> None:
        table = self._block.alias_table(alias)
        candidates = enumerate_paths(
            alias,
            table,
            self._local[alias],
            self._catalog,
            self._estimator,
            self._cost,
            self._orders,
        )
        for candidate in candidates:
            self._record(frozenset({alias}), candidate.node, candidate.order_key)

    def _candidate_extensions(self, subset: frozenset[str]) -> list[str]:
        remaining = [a for a in self._aliases if a not in subset]
        if not remaining:
            return []
        if not self._use_heuristic:
            return remaining
        connected = [a for a in remaining if self._connects(a, subset)]
        if connected:
            self.stats.extensions_pruned_by_heuristic += len(remaining) - len(
                connected
            )
            return connected
        return remaining  # Cartesian product cannot be deferred any further

    def _connects(self, alias: str, subset: frozenset[str]) -> bool:
        for factor in self._join_factors:
            if alias in factor.aliases and factor.aliases & subset:
                return True
        return False

    def _extend(self, subset: frozenset[str], alias: str) -> None:
        new_set = subset | {alias}
        rows_out = self._subset_rows(new_set)
        connecting = [
            f
            for f in self._join_factors
            if alias in f.aliases and f.aliases <= new_set
        ]
        newly_applicable = [
            f.expr
            for f in self._multi_factors
            if f.aliases <= new_set and not f.aliases <= subset
        ]
        self._extend_nested_loop(
            subset, alias, new_set, rows_out, connecting, newly_applicable
        )
        self._extend_merge(
            subset, alias, new_set, rows_out, connecting, newly_applicable
        )

    # -- nested loops ---------------------------------------------------------------

    def _extend_nested_loop(
        self,
        subset: frozenset[str],
        alias: str,
        new_set: frozenset[str],
        rows_out: float,
        connecting: list[BooleanFactor],
        extra_residual: list[ast.Expr],
    ) -> None:
        table = self._block.alias_table(alias)
        probes: list[BooleanFactor] = []
        join_residual: list[ast.Expr] = []
        for factor in connecting:
            sarg = join_factor_as_sarg(factor, alias)
            if sarg is not None:
                probes.append(probe_factor(factor, sarg))
            else:
                join_residual.append(factor.expr)
        for entry in list(self.best.get(subset, {}).values()):
            # Buffer pages left for the inner depend on how much of the
            # pool the outer pipeline (including prior resident inners)
            # already claims.
            available = self._cost.inner_available_buffer(
                entry.plan.buffer_claim
            )
            inner_candidates = enumerate_paths(
                alias,
                table,
                self._local[alias],
                self._catalog,
                self._estimator,
                self._cost,
                self._orders,
                probe_factors=probes,
                available_buffer=available,
            )
            inner = min(
                inner_candidates,
                key=lambda c: self._cost.total(
                    self._cost.nested_loop_cost(
                        ZERO_COST,
                        entry.rows,
                        c.node.cost,
                        inner_resident_cap(self._cost, c.node, available),
                    )
                ),
            )
            cap = inner_resident_cap(self._cost, inner.node, available)
            self.stats.plans_considered += 1
            cost = self._cost.nested_loop_cost(
                entry.cost, entry.rows, inner.node.cost, cap
            )
            node = NestedLoopJoinNode(
                outer=entry.plan,
                inner=inner.node,
                residual=join_residual + extra_residual,
                cost=cost,
                rows=rows_out,
                order_columns=entry.plan.order_columns,
                buffer_claim=entry.plan.buffer_claim
                + (cap if cap is not None else 2.0),
            )
            self._record(new_set, node, entry.order_key)

    # -- merging scans ----------------------------------------------------------------

    def _extend_merge(
        self,
        subset: frozenset[str],
        alias: str,
        new_set: frozenset[str],
        rows_out: float,
        connecting: list[BooleanFactor],
        extra_residual: list[ast.Expr],
    ) -> None:
        equijoins = [
            f for f in connecting if f.join is not None and f.join.is_equijoin
        ]
        if not equijoins:
            return
        table = self._block.alias_table(alias)
        inner_bytes = tuple_byte_width(table)
        inner_rows = self._inner_rows(alias)
        entries = self.best.get(subset, {})
        if not entries:
            return
        cheapest_outer = min(
            entries.values(), key=lambda e: self._cost.total(e.cost)
        )
        plain_paths = enumerate_paths(
            alias,
            table,
            self._local[alias],
            self._catalog,
            self._estimator,
            self._cost,
            self._orders,
        )
        for merge_factor in equijoins:
            join = merge_factor.join
            assert join is not None
            inner_column = join.column_for(alias)
            outer_column = join.other_column(alias)
            merge_class = self._orders.class_of_column(inner_column)
            matches = self._merge_matches(subset, alias, merge_factor)
            residual = [
                f.expr for f in equijoins if f is not merge_factor
            ] + [
                f.expr
                for f in connecting
                if f.join is not None and not f.join.is_equijoin
            ] + extra_residual

            inner_options = self._merge_inner_options(
                plain_paths, inner_column, merge_class, inner_rows, inner_bytes, matches
            )
            outer_options = self._merge_outer_options(
                subset, entries, cheapest_outer, outer_column, merge_class
            )
            for outer_plan, outer_key in outer_options:
                for inner_plan, inner_cost in inner_options:
                    self.stats.plans_considered += 1
                    cost = outer_plan.cost + inner_cost
                    order_columns = (
                        (outer_column.alias, outer_column.position),
                    )
                    node = MergeJoinNode(
                        outer=outer_plan,
                        inner=inner_plan,
                        outer_column=outer_column,
                        inner_column=inner_column,
                        residual=residual,
                        cost=cost,
                        rows=rows_out,
                        order_columns=order_columns,
                        buffer_claim=outer_plan.buffer_claim
                        + inner_plan.buffer_claim,
                    )
                    self._record(
                        new_set, node, self._canonical((merge_class,))
                    )

    def _merge_inner_options(
        self,
        plain_paths: list[PathCandidate],
        inner_column: BoundColumn,
        merge_class: int,
        inner_rows: float,
        inner_bytes: int,
        matches: float,
    ) -> list[tuple[PlanNode, Cost]]:
        """Ways to present the inner relation in join-column order.

        Either an index path already ordered on the merge class, or the
        cheapest path sorted into a temporary list.  The returned cost is
        the *total* inner-side contribution: one ordered pass plus the RSI
        traffic of emitting matches (group re-reads included).
        """
        options: list[tuple[PlanNode, Cost]] = []
        for candidate in plain_paths:
            if candidate.order_key[:1] == (merge_class,):
                inner_cost = Cost(
                    pages=candidate.node.cost.pages,
                    rsi=max(candidate.node.cost.rsi, matches),
                )
                options.append((candidate.node, inner_cost))
        cheapest = min(
            plain_paths, key=lambda c: self._cost.total(c.node.cost)
        )
        temp_pages = self._cost.temp_pages(inner_rows, inner_bytes)
        build = self._cost.sort_build_cost(
            cheapest.node.cost, inner_rows, inner_bytes
        )
        sort_total = build + Cost(pages=temp_pages, rsi=max(inner_rows, matches))
        sort_node = SortNode(
            child=cheapest.node,
            keys=[(inner_column, False)],
            cost=sort_total,
            rows=cheapest.node.rows,
            order_columns=((inner_column.alias, inner_column.position),),
        )
        options.append((sort_node, sort_total))
        # Keep at most the two cheapest inner options; more never win.
        options.sort(key=lambda pair: self._cost.total(pair[1]))
        return options[:2]

    def _merge_outer_options(
        self,
        subset: frozenset[str],
        entries: dict[OrderKey, SeedJoinEntry],
        cheapest: SeedJoinEntry,
        outer_column: BoundColumn,
        merge_class: int,
    ) -> list[tuple[PlanNode, OrderKey]]:
        """Outer sides ordered on the merge class: reuse an order or sort."""
        options: list[tuple[PlanNode, OrderKey]] = []
        for entry in entries.values():
            if entry.order_key[:1] == (merge_class,):
                options.append((entry.plan, entry.order_key))
        outer_bytes = self._composite_bytes(subset)
        build = self._cost.sort_build_cost(
            cheapest.cost, cheapest.rows, outer_bytes
        )
        read_back = self._cost.temp_scan_cost(cheapest.rows, outer_bytes)
        sort_node = SortNode(
            child=cheapest.plan,
            keys=[(outer_column, False)],
            cost=build + read_back,
            rows=cheapest.rows,
            order_columns=((outer_column.alias, outer_column.position),),
        )
        options.append((sort_node, self._canonical((merge_class,))))
        options.sort(key=lambda pair: self._cost.total(pair[0].cost))
        return options[:2]

    # -- estimates --------------------------------------------------------------------

    def _subset_rows(self, aliases: frozenset[str]) -> float:
        rows = 1.0
        for alias in aliases:
            rows *= self._cost.ncard(self._block.alias_table(alias))
        for factor in (
            self._join_factors
            + self._multi_factors
            + [f for a in aliases for f in self._local[a]]
        ):
            if factor.aliases and factor.aliases <= aliases:
                rows *= self._factor_selectivity(factor)
        return rows

    def _inner_rows(self, alias: str) -> float:
        rows = self._cost.ncard(self._block.alias_table(alias))
        for factor in self._local[alias]:
            rows *= self._factor_selectivity(factor)
        return rows

    def _merge_matches(
        self, subset: frozenset[str], alias: str, merge_factor: BooleanFactor
    ) -> float:
        """Expected tuples crossing the inner RSI during the merge."""
        return (
            self._subset_rows(subset)
            * self._inner_rows(alias)
            * self._factor_selectivity(merge_factor)
        )

    def _factor_selectivity(self, factor: BooleanFactor) -> float:
        key = id(factor)
        if key not in self._selectivity_cache:
            self._selectivity_cache[key] = self._estimator.factor_selectivity(
                factor
            )
        return self._selectivity_cache[key]

    def _composite_bytes(self, aliases: frozenset[str]) -> int:
        return sum(
            tuple_byte_width(self._block.alias_table(alias)) for alias in aliases
        )

    # -- solution table ----------------------------------------------------------------

    def _canonical(self, order: OrderKey) -> OrderKey:
        if not self._use_orders:
            return UNORDERED
        return self._orders.canonicalize(order)

    def _record(
        self, aliases: frozenset[str], plan: PlanNode, order_key: OrderKey
    ) -> None:
        key = self._canonical(order_key)
        table = self.best.setdefault(aliases, {})
        self.stats.plans_considered += 1
        existing = table.get(key)
        total = self._cost.total(plan.cost)
        if existing is None:
            self.stats.entries_stored += 1
            table[key] = SeedJoinEntry(plan=plan, order_key=key)
        elif total < self._cost.total(existing.cost):
            if self._record_prunes:
                self.stats.pruned.append(
                    SeedPrunedCandidate(
                        aliases, key, self._cost.total(existing.cost)
                    )
                )
            table[key] = SeedJoinEntry(plan=plan, order_key=key)
        elif self._record_prunes:
            self.stats.pruned.append(SeedPrunedCandidate(aliases, key, total))
