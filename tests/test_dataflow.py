"""The whole-program graph: symbols, call edges, mutations, dead code.

Fixture tests build miniature package trees under ``tmp_path`` (same idiom
as ``test_repo_lint.py``) and assert the graph resolves exactly the edges
and mutation records the analysis layers depend on; the real-tree tests
pin the properties the effect and concurrency passes assume about
``src/repro`` itself.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.dataflow import ProgramGraph, find_dead_code

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def build(tmp_path):
    return ProgramGraph.build(tmp_path)


# ---------------------------------------------------------------------------
# symbol table
# ---------------------------------------------------------------------------


def test_symbol_table_collects_globals_classes_functions(tmp_path):
    write(
        tmp_path,
        "mod.py",
        """
        CACHE = {}
        LIMIT = 10

        class Widget:
            size: int

            def grow(self):
                self._extra = 1

        def helper():
            return LIMIT
        """,
    )
    graph = build(tmp_path)
    module = graph.modules["mod.py"]
    assert module.globals["CACHE"].kind == "container"
    assert module.globals["LIMIT"].kind == "other"
    assert module.globals["CACHE"].key == "mod.py::CACHE"
    assert "mod.py::helper" in graph.functions
    assert "mod.py::Widget.grow" in graph.functions
    # both the annotated class-body attr and the self-assigned one register
    widget = module.classes["Widget"]
    assert "size" in widget.attrs
    assert "_extra" in widget.attrs


def test_call_edges_resolve_across_modules(tmp_path):
    write(
        tmp_path,
        "a.py",
        """
        from .b import target

        def caller():
            return target()
        """,
    )
    write(
        tmp_path,
        "b.py",
        """
        def target():
            return 1
        """,
    )
    graph = build(tmp_path)
    assert "b.py::target" in graph.calls["a.py::caller"]


def test_lazy_function_level_imports_resolve(tmp_path):
    # the lazy-import idiom (import inside the function body to break a
    # cycle) must still produce call edges, or whole subsystems go dark.
    write(
        tmp_path,
        "a.py",
        """
        def caller():
            from .b import target
            return target()
        """,
    )
    write(
        tmp_path,
        "b.py",
        """
        def target():
            return 1
        """,
    )
    graph = build(tmp_path)
    assert "b.py::target" in graph.calls["a.py::caller"]


def test_imports_resolve_through_package_init(tmp_path):
    write(tmp_path, "sub/__init__.py", "from .impl import target\n")
    write(
        tmp_path,
        "sub/impl.py",
        """
        def target():
            return 1
        """,
    )
    write(
        tmp_path,
        "a.py",
        """
        from .sub import target

        def caller():
            return target()
        """,
    )
    graph = build(tmp_path)
    assert "sub/impl.py::target" in graph.calls["a.py::caller"]


def test_attribute_calls_overapproximate_by_name(tmp_path):
    write(
        tmp_path,
        "a.py",
        """
        class One:
            def batches(self):
                return []

        class Two:
            def batches(self):
                return []

        def caller(x):
            return x.batches()
        """,
    )
    graph = build(tmp_path)
    assert {"a.py::One.batches", "a.py::Two.batches"} <= graph.calls[
        "a.py::caller"
    ]


def test_bare_name_reference_is_a_callback_edge(tmp_path):
    write(
        tmp_path,
        "a.py",
        """
        def callback():
            return 1

        def register(table):
            table["k"] = callback
        """,
    )
    graph = build(tmp_path)
    assert "a.py::callback" in graph.calls["a.py::register"]


# ---------------------------------------------------------------------------
# mutation records
# ---------------------------------------------------------------------------


def mutations_of(graph, qualname):
    return {(m.kind, m.target) for m in graph.mutations[qualname]}


def test_global_and_self_and_param_mutations_recorded(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        CACHE = {}
        COUNT = 0

        def memo(key, value):
            CACHE[key] = value

        def bump():
            global COUNT
            COUNT = COUNT + 1

        class Holder:
            def __init__(self):
                self.items = []

            def push(self, sink):
                self.items.append(1)
                sink.rows.append(2)
        """,
    )
    graph = build(tmp_path)
    assert ("global", "CACHE") in mutations_of(graph, "m.py::memo")
    assert ("global", "COUNT") in mutations_of(graph, "m.py::bump")
    push = mutations_of(graph, "m.py::Holder.push")
    assert ("self-attr", "items") in push
    assert ("param-attr", "rows") in push
    # __init__ writes are recorded too (the effects layer exempts them)
    assert ("self-attr", "items") in mutations_of(
        graph, "m.py::Holder.__init__"
    )


def test_locally_created_values_are_not_mutations(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def builder():
            rows = []
            for i in range(3):
                rows.append(i)
            return rows
        """,
    )
    graph = build(tmp_path)
    assert graph.mutations["m.py::builder"] == []


def test_alias_of_global_still_counts(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        REGISTRY = {}

        def sneaky(key):
            table = REGISTRY
            table[key] = 1
        """,
    )
    graph = build(tmp_path)
    assert ("global", "REGISTRY") in mutations_of(graph, "m.py::sneaky")


# ---------------------------------------------------------------------------
# reachability and dead code
# ---------------------------------------------------------------------------


def test_reachable_walks_transitively(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def a():
            return b()

        def b():
            return c()

        def c():
            return 1

        def orphan():
            return 2
        """,
    )
    graph = build(tmp_path)
    live = graph.reachable(["m.py::a"])
    assert {"m.py::a", "m.py::b", "m.py::c"} <= live
    assert "m.py::orphan" not in live


def test_dead_code_reports_unreachable_function(tmp_path):
    write(
        tmp_path,
        "cli.py",
        """
        def main():
            return used()
        """,
    )
    write(
        tmp_path,
        "m.py",
        """
        def used():
            return 1

        def zzz_orphan_helper():
            return 2
        """,
    )
    graph = build(tmp_path)
    violations = find_dead_code(graph)
    assert [v for v in violations if "zzz_orphan_helper" in v.message]
    assert not [v for v in violations if "used" in v.where]


def test_dead_code_keep_annotation_and_consumer_roots(tmp_path):
    write(
        tmp_path,
        "pkg/m.py",
        """
        # repro: keep — exercised by an external harness
        def kept():
            return 1

        def referenced_by_tests():
            return 2
        """,
    )
    consumers = tmp_path / "consumers"
    consumers.mkdir()
    (consumers / "test_x.py").write_text(
        "from pkg.m import referenced_by_tests\n\n"
        "def test_it():\n    assert referenced_by_tests() == 2\n",
        encoding="utf-8",
    )
    graph = ProgramGraph.build(tmp_path / "pkg")
    violations = find_dead_code(graph, consumer_roots=[consumers])
    assert violations == []


def test_dead_code_dunders_and_live_decorators_are_roots(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Thing:
            def __len__(self):
                return 0

            @property
            def size(self):
                return 0
        """,
    )
    graph = build(tmp_path)
    assert find_dead_code(graph) == []


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


def test_real_tree_builds_and_sees_the_fused_drivers():
    graph = ProgramGraph.build(PACKAGE_ROOT)
    assert len(graph.modules) > 50
    assert len(graph.functions) > 500
    # the lazy imports in executor.py must link the fused subsystem
    fused = [q for q in graph.functions if q.startswith("engine/fuse.py::")]
    assert fused
    live = graph.reachable(
        [q for q, f in graph.functions.items() if f.module == "cli.py"]
    )
    assert any(q in live for q in fused)


def test_real_tree_has_no_dead_code():
    graph = ProgramGraph.build(PACKAGE_ROOT)
    repo_root = PACKAGE_ROOT.parent.parent
    consumers = [
        path
        for path in (repo_root / "tests", repo_root / "benchmarks")
        if path.is_dir()
    ]
    assert find_dead_code(graph, consumer_roots=consumers) == []
