"""Direct tests of the RSI scan layer (segment and index scans)."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import INTEGER, varchar
from repro.rss import StorageEngine
from repro.rss.sargs import CompareOp, SargPredicate, Sargs


@pytest.fixture
def loaded():
    catalog = Catalog()
    table = catalog.create_table(
        "T", [("K", INTEGER), ("NAME", varchar(12)), ("G", INTEGER)]
    )
    engine = StorageEngine(buffer_pages=16)
    engine.ensure_segment(table.segment_name)
    index = catalog.create_index("T_K", "T", ["K"])
    engine.create_index(index, table)
    for i in range(200):
        engine.insert(table, [index], (i, f"n{i}", i % 8))
    return catalog, table, index, engine


class TestIndexScanBounds:
    def test_closed_range(self, loaded):
        __, table, index, engine = loaded
        rows = list(engine.index_scan(index, table, low=(10,), high=(14,)))
        assert [values[0] for __, values in rows] == [10, 11, 12, 13, 14]

    def test_exclusive_low(self, loaded):
        __, table, index, engine = loaded
        rows = list(
            engine.index_scan(
                index, table, low=(10,), high=(13,), low_inclusive=False
            )
        )
        assert [values[0] for __, values in rows] == [11, 12, 13]

    def test_exclusive_high(self, loaded):
        __, table, index, engine = loaded
        rows = list(
            engine.index_scan(
                index, table, low=(10,), high=(13,), high_inclusive=False
            )
        )
        assert [values[0] for __, values in rows] == [10, 11, 12]

    def test_unbounded_scan_in_key_order(self, loaded):
        __, table, index, engine = loaded
        keys = [values[0] for __, values in engine.index_scan(index, table)]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_sargs_filter_below_rsi(self, loaded):
        __, table, index, engine = loaded
        sargs = Sargs.conjunction([SargPredicate(2, CompareOp.EQ, 3)])
        engine.counters.reset()
        rows = list(
            engine.index_scan(index, table, low=(0,), high=(79,), sargs=sargs)
        )
        assert len(rows) == 10  # G == 3 within K 0..79
        assert engine.counters.rsi_calls == 10

    def test_dnf_sargs(self, loaded):
        __, table, ___, engine = loaded
        sargs = Sargs(
            [
                [SargPredicate(0, CompareOp.LT, 3)],
                [SargPredicate(0, CompareOp.GE, 197)],
            ]
        )
        rows = list(engine.segment_scan(table, sargs))
        assert sorted(values[0] for __, values in rows) == [0, 1, 2, 197, 198, 199]

    def test_sarg_with_null_value_matches_nothing(self, loaded):
        __, table, ___, engine = loaded
        sargs = Sargs.conjunction([SargPredicate(0, CompareOp.EQ, None)])
        assert list(engine.segment_scan(table, sargs)) == []

    def test_index_scan_counts_index_and_data_pages(self, loaded):
        __, table, index, engine = loaded
        engine.counters.reset()
        engine.cold_cache()
        list(engine.index_scan(index, table, low=(100,), high=(100,)))
        # Descent + leaf + one data page: a handful, not a scan.
        assert 1 <= engine.counters.page_fetches <= 5

    def test_segment_scan_counts_every_page_once(self, loaded):
        __, table, ___, engine = loaded
        engine.counters.reset()
        engine.cold_cache()
        list(engine.segment_scan(table))
        segment = engine.segment(table.segment_name)
        assert engine.counters.page_fetches == segment.page_count()

    def test_scan_skips_other_relations_tuples(self, loaded):
        catalog, table, __, engine = loaded
        other = catalog.create_table(
            "U", [("X", INTEGER)], segment_name=table.segment_name
        )
        engine.insert(other, [], (999,))
        names = [values[1] for __, values in engine.segment_scan(table)]
        assert len(names) == 200  # U's tuple invisible to T's scan
        xs = [values[0] for __, values in engine.segment_scan(other)]
        assert xs == [999]
