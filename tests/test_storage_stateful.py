"""Stateful property test: the storage engine against a model dictionary.

Hypothesis drives random INSERT / UPDATE / DELETE sequences; after every
step the stored relation, scanned via segment scan *and* via each index,
must agree with a plain in-memory model.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.catalog import Catalog
from repro.datatypes import INTEGER, varchar
from repro.rss import StorageEngine


class StorageMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.catalog = Catalog()
        self.table = self.catalog.create_table(
            "T", [("K", INTEGER), ("V", varchar(12)), ("G", INTEGER)]
        )
        self.engine = StorageEngine(buffer_pages=8)
        self.engine.ensure_segment(self.table.segment_name)
        self.index = self.catalog.create_index("T_G", "T", ["G"])
        self.engine.create_index(self.index, self.table)
        self.model: dict = {}  # tid -> values

    tids = Bundle("tids")

    @rule(
        target=tids,
        key=st.integers(-100, 100),
        value=st.one_of(st.none(), st.text(max_size=8)),
        group=st.one_of(st.none(), st.integers(0, 10)),
    )
    def insert(self, key, value, group):
        tid = self.engine.insert(self.table, [self.index], (key, value, group))
        self.model[tid] = (key, value, group)
        return tid

    @rule(tid=tids, new_group=st.one_of(st.none(), st.integers(0, 10)))
    def update_group(self, tid, new_group):
        if tid not in self.model:
            return
        old = self.model[tid]
        new = (old[0], old[1], new_group)
        new_tid = self.engine.update(self.table, [self.index], tid, old, new)
        del self.model[tid]
        self.model[new_tid] = new

    @rule(tid=tids, pad=st.text(min_size=9, max_size=12))
    def update_growing(self, tid, pad):
        """Growing updates may relocate the tuple (new TID)."""
        if tid not in self.model:
            return
        old = self.model[tid]
        new = (old[0], pad, old[2])
        new_tid = self.engine.update(self.table, [self.index], tid, old, new)
        del self.model[tid]
        self.model[new_tid] = new

    @rule(tid=tids)
    def delete(self, tid):
        if tid not in self.model:
            return
        self.engine.delete(self.table, [self.index], tid, self.model[tid])
        del self.model[tid]

    @invariant()
    def segment_scan_matches_model(self):
        scanned = {tid: values for tid, values in self.engine.segment_scan(self.table)}
        assert scanned == self.model

    @invariant()
    def index_agrees_with_model(self):
        btree = self.engine.btree("T_G")
        index_entries = sorted(
            (tid, key) for key, tid in btree.scan_all()
        )
        model_entries = sorted(
            (tid, (values[2],)) for tid, values in self.model.items()
        )
        assert index_entries == model_entries

    @invariant()
    def index_lookup_finds_every_group(self):
        groups = {values[2] for values in self.model.values() if values[2] is not None}
        for group in groups:
            via_index = {
                tid
                for tid, __ in self.engine.index_scan(
                    self.index, self.table, low=(group,), high=(group,)
                )
            }
            via_model = {
                tid
                for tid, values in self.model.items()
                if values[2] == group
            }
            assert via_index == via_model


TestStorageMachine = StorageMachine.TestCase
TestStorageMachine.settings = __import__("hypothesis").settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
