"""Tests for plan and search-tree rendering (the Figures 2-6 machinery)."""

import pytest

from repro.optimizer.binder import Binder
from repro.optimizer.explain import (
    format_order,
    plan_summary,
    render_search_tree,
    render_single_relation_paths,
    solutions_table,
)
from repro.optimizer.plan import render_plan
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


@pytest.fixture(scope="module")
def searched(empdept):
    optimizer = empdept.optimizer()
    block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
    search, orders, factors = optimizer.run_join_search(block)
    return empdept, optimizer, block, search, orders, factors


class TestPlanSummary:
    def test_scan_kinds(self, empdept):
        seg = empdept.plan("SELECT SAL FROM EMP WHERE SAL > 0.0")
        assert "seg(EMP)" in plan_summary(seg.root)
        idx = empdept.plan("SELECT NAME FROM EMP WHERE DNO = 1")
        assert "idx(EMP.EMP_DNO)" in plan_summary(idx.root)

    def test_join_nesting(self, empdept):
        planned = empdept.plan(FIG1_QUERY)
        summary = plan_summary(planned.root)
        assert summary.count("(") >= 3
        for alias in ("EMP", "DEPT", "JOB"):
            assert alias in summary

    def test_sort_rendering(self, empdept):
        planned = empdept.plan("SELECT SAL FROM EMP ORDER BY SAL")
        assert "SORT(" in plan_summary(planned.root)


class TestFormatOrder:
    def test_unordered(self):
        assert format_order(()) == "unordered"

    def test_classes(self):
        assert format_order((3, 1)) == "order<3,1>"


class TestRenderers:
    def test_single_relation_paths(self, searched):
        db, optimizer, block, search, orders, factors = searched
        text = render_single_relation_paths(
            block, factors, db.catalog, optimizer.estimator,
            optimizer.cost_model, orders,
        )
        for alias in ("EMP", "DEPT", "JOB"):
            assert alias in text
        assert "segment scan" in text
        assert "[kept]" in text

    def test_search_tree_sections(self, searched):
        *__, search, ___, ____ = searched
        optimizer = searched[1]
        text = render_search_tree(search, optimizer.cost_model)
        assert "-- 1 relation(s) --" in text
        assert "-- 2 relation(s) --" in text
        assert "-- 3 relation(s) --" in text
        assert "{DEPT, EMP, JOB}" in text

    def test_solutions_table_shape(self, searched):
        __, optimizer, ___, search, ____, _____ = searched
        rows = solutions_table(search, optimizer.cost_model, size=1)
        assert all(len(row["relations"]) == 1 for row in rows)
        assert all(row["cost"] > 0 for row in rows)
        triples = solutions_table(search, optimizer.cost_model, size=3)
        assert all(row["relations"] == ("DEPT", "EMP", "JOB") for row in triples)

    def test_render_plan_includes_details(self, empdept):
        planned = empdept.plan("SELECT NAME FROM EMP WHERE DNO = 1 AND NAME LIKE 'E%'")
        text = render_plan(planned.root, w=planned.w)
        assert "sarg:" in text
        assert "filter:" in text
        assert "rows~" in text
        assert "cost~" in text
