"""E10 — §7 claims about the cost of optimization itself.

"For a two-way join, the cost of optimization is approximately equivalent
to between 5 and 20 database retrievals"; "joins of 8 tables have been
optimized in a few seconds"; storage is "at most 2^n times the number of
interesting result orders".

We time the DP for chains of 2..8 tables, convert optimization time into
equivalent database retrievals by measuring this interpreter's own
per-retrieval cost, and check the stored-solutions bound.
"""

import random
import time

from repro.optimizer.binder import Binder
from repro.sql import parse_statement
from repro.workloads import build_database, chain_join_query, random_chain_spec

MAX_TABLES = 8


def per_retrieval_seconds(db) -> float:
    """Average wall time of one RSI retrieval in this interpreter."""
    planned = db.plan("SELECT * FROM T1")
    db.cold_cache()
    start = time.perf_counter()
    result = db.executor().execute(planned)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, len(result.rows))


def test_optimization_cost(report, benchmark):
    rng = random.Random(13)
    specs = random_chain_spec(
        MAX_TABLES, rng, min_rows=100, max_rows=300, index_probability=0.8
    )
    db = build_database(specs, seed=13)
    retrieval_seconds = per_retrieval_seconds(db)

    rows = []
    eight_way_seconds = None
    for count in range(2, MAX_TABLES + 1):
        tables = specs[:count]
        sql = chain_join_query(tables)
        optimizer = db.optimizer()
        # This experiment times the DP search itself; keep the REPRO_CHECK
        # instrumentation (prune recording) out of the measurement.
        optimizer.verify_plans = False
        block = Binder(db.catalog).bind(parse_statement(sql))

        def run(block=block):
            return optimizer.run_join_search(block)[0]

        start = time.perf_counter()
        search = run()
        elapsed = time.perf_counter() - start
        if count == 2:
            benchmark.pedantic(run, rounds=5, iterations=1)
        if count == MAX_TABLES:
            eight_way_seconds = elapsed
        entries = search.total_entries()
        # Bound: 2^n subsets x interesting orders (n-1 join classes + 1).
        bound = (2**count) * count
        rows.append(
            [
                count,
                f"{elapsed * 1000:.1f}",
                f"{elapsed / retrieval_seconds:.0f}",
                search.stats.plans_considered,
                entries,
                bound,
                search.stats.extensions_pruned_by_heuristic,
            ]
        )

    report.line("E10 — cost of optimization vs number of joined relations")
    report.line(
        f"(one database retrieval == {retrieval_seconds * 1e6:.1f} us in this "
        "interpreter)"
    )
    report.table(
        [
            "tables",
            "opt ms",
            "retrievals",
            "plans",
            "stored",
            "2^n*orders",
            "pruned",
        ],
        rows,
        widths=[8, 10, 12, 10, 8, 12, 8],
    )
    report.line()
    report.line(
        'paper: 2-way join optimization ~ "5 to 20 database retrievals"; '
        '8-table joins "in a few seconds".'
    )

    # Stored solutions respect the paper's bound.
    for row in rows:
        assert row[4] <= row[5]
    # 8-table optimization completes in a few seconds at most.
    assert eight_way_seconds is not None and eight_way_seconds < 5.0
    # 2-way optimization costs on the order of tens of retrievals.
    assert float(rows[0][2]) < 500
