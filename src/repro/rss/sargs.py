"""Search arguments (SARGs) evaluated below the RSI.

A *sargable* predicate has the form ``column comparison-operator value``.
SARGs are a boolean expression of such predicates in disjunctive normal
form: an OR of AND-groups (Section 3).  Scans apply SARGs to a tuple before
returning it, so tuples rejected by a SARG cost a page visit but **not** an
RSI call — that asymmetry is why the optimizer's RSICARD counts only tuples
surviving the sargable boolean factors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..datatypes import compare_values


class CompareOp(enum.Enum):
    """Comparison operators usable in a simple predicate."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: object, right: object) -> bool:
        """Apply this operator; NULL on either side yields False (unknown)."""
        ordering = compare_values(left, right)
        if ordering is None:
            return False
        if self is CompareOp.EQ:
            return ordering == 0
        if self is CompareOp.NE:
            return ordering != 0
        if self is CompareOp.LT:
            return ordering < 0
        if self is CompareOp.LE:
            return ordering <= 0
        if self is CompareOp.GT:
            return ordering > 0
        return ordering >= 0

    def flipped(self) -> "CompareOp":
        """The operator with operands swapped (``5 < x`` becomes ``x > 5``)."""
        return _FLIPPED[self]

    def negated(self) -> "CompareOp":
        """The complementary operator (NOT (a < b) is a >= b)."""
        return _NEGATED[self]


_FLIPPED = {
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
}

_NEGATED = {
    CompareOp.EQ: CompareOp.NE,
    CompareOp.NE: CompareOp.EQ,
    CompareOp.LT: CompareOp.GE,
    CompareOp.LE: CompareOp.GT,
    CompareOp.GT: CompareOp.LE,
    CompareOp.GE: CompareOp.LT,
}


@dataclass(frozen=True)
class SargPredicate:
    """One simple predicate: ``values[column_position] op value``."""

    column_position: int
    op: CompareOp
    value: object

    def matches(self, values: tuple) -> bool:
        """Whether a tuple's values satisfy this expression."""
        return self.op.evaluate(values[self.column_position], self.value)

    def __str__(self) -> str:
        return f"col{self.column_position} {self.op.value} {self.value!r}"


class Sargs:
    """A DNF search-argument expression: OR of AND-groups of simple predicates.

    An empty expression (no groups) matches everything, so scans can always
    carry a ``Sargs`` instance.
    """

    def __init__(self, groups: list[list[SargPredicate]] | None = None):
        self.groups = groups or []

    @classmethod
    def conjunction(cls, predicates: list[SargPredicate]) -> "Sargs":
        """A single AND-group (the common case: conjunctive boolean factors)."""
        return cls([list(predicates)]) if predicates else cls()

    def matches(self, values: tuple) -> bool:
        """Whether a tuple's values satisfy this expression."""
        if not self.groups:
            return True
        return any(
            all(predicate.matches(values) for predicate in group)
            for group in self.groups
        )

    def is_empty(self) -> bool:
        """True when nothing is stored here."""
        return not self.groups

    def __str__(self) -> str:
        if not self.groups:
            return "<always>"
        rendered = [
            " AND ".join(str(predicate) for predicate in group)
            for group in self.groups
        ]
        return " OR ".join(f"({clause})" for clause in rendered)
