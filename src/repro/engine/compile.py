"""One-time compilation of bound expressions into closure chains.

The reference interpreter (:func:`repro.engine.evaluator.evaluate`) re-walks
the bound AST with ``isinstance`` dispatch for every candidate tuple — the
RSI_CALLS CPU cost the paper's ``W`` term models.  This module hoists all
per-query-constant work out of the per-row loop: each plan node's
expressions are compiled **once** into a chain of plain Python closures
that the operators then call per row.

What the compiler pre-resolves:

- **Column access.**  A :class:`~repro.optimizer.bound.BoundColumn` whose
  alias belongs to the executing block compiles to a direct
  ``env.row.values[alias][position]`` probe; only genuinely correlated
  references (outer-block aliases, Section 6) walk the enclosing
  environment chain.  Uncorrelated queries therefore never pay the
  O(depth) ``EvalEnv.lookup`` walk.
- **Comparison operators.**  Pre-bound at compile time.  When both
  operand types are statically known (column datatypes, literal types)
  the comparison lowers to raw ``<`` orderings with a NULL guard —
  semantically identical to :func:`~repro.datatypes.compare_values`
  three-way comparison, including its treatment of NaN; otherwise the
  reference three-way compare is kept.
- **Constant folding.**  Subtrees built purely from literals evaluate at
  compile time (``10000 / 12`` is one closure returning a constant).
- **CNF factor ordering.**  Conjunctions of *effect-free* boolean factors
  are reordered cheapest-first so a cheap comparison can reject a row
  before an expensive LIKE runs.  Factors containing subqueries are never
  reordered or folded across: a subquery evaluation does real page
  fetches, so its per-row evaluation pattern (and hence the cost
  counters) must match the reference interpreter exactly.

Three-valued logic, NULL handling, and error behaviour on well-typed
queries are preserved exactly; ``tests/test_compiled_eval.py`` gates the
equivalence differentially against ``evaluate()``.  Passing
``interpret=True`` makes every compiled program a thin wrapper over the
reference interpreter, which is how the differential tests and
``REPRO_EXEC=interp`` runs drive both paths through identical operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..datatypes import DataType, TypeKind, compare_values
from ..errors import ExecutionError
from ..rss.sargs import CompareOp
from ..sql import ast
from ..optimizer.bound import AggregateRef, BoundColumn, BoundSubquery
from .evaluator import EvalEnv, evaluate, like_regex
from .rows import AGGREGATE_ALIAS

#: A compiled expression: evaluates one row's environment to a value
#: (predicates return True / False / None for unknown).
EvalFn = Callable[[EvalEnv], object]

#: Rank assigned to any factor containing a subquery; such factors are
#: never reordered (their evaluations move the cost counters).
_SUBQUERY_RANK = 1_000_000

_NUMERIC_TYPES = (int, float)


@dataclass
class Compiled:
    """A compiled expression plus the metadata folding/ordering needs."""

    fn: EvalFn
    const: bool = False
    value: object = None
    rank: int = 1
    #: "num" / "str" when the value's scalar family is statically known.
    static_type: str | None = None



def _const(value: object) -> Compiled:
    def fn(env: EvalEnv, _v: object = value) -> object:
        return _v

    return Compiled(fn=fn, const=True, value=value, rank=0, static_type=_value_type(value))


def _value_type(value: object) -> str | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, _NUMERIC_TYPES):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _datatype_family(datatype: DataType) -> str:
    return "num" if datatype.kind in (TypeKind.INTEGER, TypeKind.FLOAT) else "str"


class ExprCompiler:
    """Compiles bound expressions for one query block's execution.

    ``local_aliases`` are the aliases whose tuples live in the executing
    block's own rows; everything else resolves through the outer
    environment chain.  With ``interpret=True`` every compiled program
    defers to the reference interpreter (differential/ablation mode).
    """

    def __init__(self, local_aliases, interpret: bool = False):
        self._local = frozenset(local_aliases)
        self.interpret = interpret

    # -- public API -------------------------------------------------------------

    def expr_fn(self, expr: ast.Expr) -> EvalFn:
        """A closure evaluating ``expr`` against an environment."""
        if self.interpret:
            def fn(env: EvalEnv, _e: ast.Expr = expr) -> object:
                return evaluate(_e, env)

            return fn
        return self._compile(expr).fn

    def truth_fn(self, expr: ast.Expr) -> EvalFn:
        """Like :meth:`expr_fn`; the result is read as a truth value."""
        return self.expr_fn(expr)

    def conjunction(self, predicates) -> Callable[[EvalEnv], bool] | None:
        """One closure deciding whether every predicate holds (is TRUE).

        Returns ``None`` when the conjunction is vacuously true.  Pure
        factors are ordered cheapest-first; conjunctions containing a
        subquery keep the plan's factor order so the per-row subquery
        evaluation pattern (and its cost-counter footprint) is unchanged.
        """
        predicates = list(predicates)
        if not predicates:
            return None
        if self.interpret:
            exprs = tuple(predicates)

            def interp(env: EvalEnv, _exprs=exprs) -> bool:
                for expr in _exprs:
                    if evaluate(expr, env) is not True:
                        return False
                return True

            return interp
        compiled = [self._compile(expr) for expr in predicates]
        if any(c.rank >= _SUBQUERY_RANK for c in compiled):
            fns = tuple(c.fn for c in compiled)
        else:
            compiled.sort(key=lambda c: c.rank)
            if any(c.const and c.value is not True for c in compiled):
                return lambda env: False
            fns = tuple(c.fn for c in compiled if not c.const)
            if not fns:
                return None
        if len(fns) == 1:
            single = fns[0]

            def one(env: EvalEnv, _f: EvalFn = single) -> bool:
                return _f(env) is True

            return one

        def conj(env: EvalEnv, _fns=fns) -> bool:
            for f in _fns:
                if f(env) is not True:
                    return False
            return True

        return conj

    def column_getter(self, column: BoundColumn) -> Callable:
        """A row-level getter for one column of a composite row."""

        def get(row, _a: str = column.alias, _p: int = column.position):
            return row.values[_a][_p]

        return get

    # -- dispatch ---------------------------------------------------------------

    def _compile(self, expr: ast.Expr) -> Compiled:
        if isinstance(expr, ast.Literal):
            return _const(expr.value)
        if isinstance(expr, BoundColumn):
            return self._column(expr)
        if isinstance(expr, AggregateRef):
            return self._aggregate_ref(expr)
        if isinstance(expr, BoundSubquery):
            return self._scalar_subquery(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._arithmetic(expr)
        if isinstance(expr, ast.Negate):
            return self._negate(expr)
        if isinstance(expr, ast.Comparison):
            return self._comparison(expr)
        if isinstance(expr, ast.Between):
            return self._between(expr)
        if isinstance(expr, ast.InList):
            return self._in_list(expr)
        if isinstance(expr, ast.InSubquery):
            return self._in_subquery(expr)
        if isinstance(expr, ast.IsNull):
            return self._is_null(expr)
        if isinstance(expr, ast.Like):
            return self._like(expr)
        if isinstance(expr, ast.And):
            return self._kleene(expr.operands, is_and=True)
        if isinstance(expr, ast.Or):
            return self._kleene(expr.operands, is_and=False)
        if isinstance(expr, ast.Not):
            return self._not(expr)
        raise ExecutionError(f"cannot compile expression {expr!r}")

    # -- leaves -----------------------------------------------------------------

    def _column(self, expr: BoundColumn) -> Compiled:
        family = _datatype_family(expr.datatype)
        if expr.alias in self._local:
            def local(env: EvalEnv, _a: str = expr.alias, _p: int = expr.position):
                try:
                    return env.row.values[_a][_p]
                except KeyError:
                    raise ExecutionError(f"no row bound for alias {_a!r}") from None

            return Compiled(fn=local, rank=1, static_type=family)

        def outer(env: EvalEnv, _a: str = expr.alias, _p: int = expr.position):
            e: EvalEnv | None = env
            while e is not None:
                values = e.row.values.get(_a)
                if values is not None:
                    return values[_p]
                e = e.outer
            raise ExecutionError(f"no row bound for alias {_a!r}")

        return Compiled(fn=outer, rank=3, static_type=family)

    def _aggregate_ref(self, expr: AggregateRef) -> Compiled:
        def fn(env: EvalEnv, _i: int = expr.index):
            e: EvalEnv | None = env
            while e is not None:
                aggregates = e.row.values.get(AGGREGATE_ALIAS)
                if aggregates is not None:
                    return aggregates[_i]
                e = e.outer
            raise ExecutionError("aggregate referenced outside aggregation")

        return Compiled(fn=fn, rank=1)

    def _scalar_subquery(self, expr: BoundSubquery) -> Compiled:
        def fn(env: EvalEnv, _sub: BoundSubquery = expr):
            return env.runtime.scalar_subquery_value(_sub, env)  # type: ignore[attr-defined]

        return Compiled(fn=fn, rank=_SUBQUERY_RANK)

    # -- arithmetic -------------------------------------------------------------

    def _arithmetic(self, expr: ast.BinaryOp) -> Compiled:
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        typed = left.static_type == "num" and right.static_type == "num"
        lf, rf, op = left.fn, right.fn, expr.op

        if op == "+":
            def fn(env: EvalEnv) -> object:
                l = lf(env)
                r = rf(env)
                if l is None or r is None:
                    return None
                if not typed:
                    _require_numeric(l, r)
                return l + r
        elif op == "-":
            def fn(env: EvalEnv) -> object:
                l = lf(env)
                r = rf(env)
                if l is None or r is None:
                    return None
                if not typed:
                    _require_numeric(l, r)
                return l - r
        elif op == "*":
            def fn(env: EvalEnv) -> object:
                l = lf(env)
                r = rf(env)
                if l is None or r is None:
                    return None
                if not typed:
                    _require_numeric(l, r)
                return l * r
        else:
            def fn(env: EvalEnv) -> object:
                l = lf(env)
                r = rf(env)
                if l is None or r is None:
                    return None
                if not typed:
                    _require_numeric(l, r)
                if r == 0:
                    raise ExecutionError("division by zero")
                return l / r

        rank = 2 + left.rank + right.rank
        return self._fold(fn, (left, right), rank, static_type="num")

    def _negate(self, expr: ast.Negate) -> Compiled:
        operand = self._compile(expr.operand)
        of = operand.fn
        typed = operand.static_type == "num"

        def fn(env: EvalEnv) -> object:
            value = of(env)
            if value is None:
                return None
            if not typed and (type(value) not in _NUMERIC_TYPES):
                raise ExecutionError(f"cannot negate {value!r}")
            return -value

        return self._fold(fn, (operand,), 1 + operand.rank, static_type="num")

    # -- comparisons ------------------------------------------------------------

    def _comparison(self, expr: ast.Comparison) -> Compiled:
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        rank = 2 + left.rank + right.rank
        lf, rf = left.fn, right.fn
        if (
            left.static_type is not None
            and left.static_type == right.static_type
        ):
            fn = _ordered_comparison(expr.op, lf, rf)
        else:
            test = _ORDERING_TEST[expr.op]

            def fn(env: EvalEnv, _t=test) -> object:
                ordering = compare_values(lf(env), rf(env))
                if ordering is None:
                    return None
                return _t(ordering)

        return self._fold(fn, (left, right), rank)

    def _between(self, expr: ast.Between) -> Compiled:
        operand = self._compile(expr.operand)
        low = self._compile(expr.low)
        high = self._compile(expr.high)
        rank = 3 + operand.rank + low.rank + high.rank
        of, lf, hf = operand.fn, low.fn, high.fn
        types = {operand.static_type, low.static_type, high.static_type}
        if len(types) == 1 and None not in types:
            def fn(env: EvalEnv) -> object:
                o = of(env)
                lo = lf(env)
                hi = hf(env)
                if o is None or lo is None or hi is None:
                    return None
                return (not (o < lo)) and (not (hi < o))
        else:
            def fn(env: EvalEnv) -> object:
                o = of(env)
                lower = compare_values(o, lf(env))
                upper = compare_values(o, hf(env))
                if lower is None or upper is None:
                    return None
                return lower >= 0 and upper <= 0

        return self._fold(fn, (operand, low, high), rank)

    def _in_list(self, expr: ast.InList) -> Compiled:
        operand = self._compile(expr.operand)
        values = tuple(literal.value for literal in expr.values)
        rank = 2 + operand.rank + len(values)
        of = operand.fn
        value_types = {_value_type(v) for v in values if v is not None}
        if (
            operand.static_type is not None
            and value_types <= {operand.static_type}
        ):
            non_null = tuple(v for v in values if v is not None)
            saw_null = any(v is None for v in values)

            def fn(env: EvalEnv) -> object:
                o = of(env)
                if o is None:
                    return None
                for v in non_null:
                    if not (o < v or v < o):
                        return True
                return None if saw_null else False
        else:
            def fn(env: EvalEnv) -> object:
                o = of(env)
                if o is None:
                    return None
                unknown = False
                for v in values:
                    ordering = compare_values(o, v)
                    if ordering is None:
                        unknown = True
                    elif ordering == 0:
                        return True
                return None if unknown else False

        return self._fold(fn, (operand,), rank)

    def _in_subquery(self, expr: ast.InSubquery) -> Compiled:
        subquery = expr.subquery
        assert isinstance(subquery, BoundSubquery)
        operand = self._compile(expr.operand)
        of = operand.fn

        def fn(env: EvalEnv, _sub: BoundSubquery = subquery) -> object:
            o = of(env)
            if o is None:
                return None
            values, saw_null = env.runtime.in_subquery_set(_sub, env)  # type: ignore[attr-defined]
            if o in values:
                return True
            return None if saw_null else False

        return Compiled(fn=fn, rank=_SUBQUERY_RANK)

    def _is_null(self, expr: ast.IsNull) -> Compiled:
        operand = self._compile(expr.operand)
        of = operand.fn
        if expr.negated:
            def fn(env: EvalEnv) -> object:
                return of(env) is not None
        else:
            def fn(env: EvalEnv) -> object:
                return of(env) is None

        return self._fold(fn, (operand,), 1 + operand.rank)

    def _like(self, expr: ast.Like) -> Compiled:
        operand = self._compile(expr.operand)
        pattern = like_regex(expr.pattern)
        negated = expr.negated
        of = operand.fn

        def fn(env: EvalEnv) -> object:
            o = of(env)
            if o is None:
                return None
            if type(o) is not str:
                raise ExecutionError("LIKE requires a string operand")
            matched = pattern.match(o) is not None
            return (not matched) if negated else matched

        return self._fold(fn, (operand,), 8 + operand.rank)

    # -- boolean connectives ----------------------------------------------------

    def _kleene(self, operands, is_and: bool) -> Compiled:
        compiled = [self._compile(op) for op in operands]
        rank = 1 + sum(c.rank for c in compiled)
        effectful = any(c.rank >= _SUBQUERY_RANK for c in compiled)
        absorbing = False if is_and else True
        if not effectful:
            # Reordering and folding are observationally safe: no operand
            # moves the cost counters, and AND/OR are commutative in 3VL.
            compiled.sort(key=lambda c: c.rank)
            if any(c.const and c.value is absorbing for c in compiled):
                return _const(absorbing)
            forced_unknown = any(c.const and c.value is None for c in compiled)
            runtime = [c for c in compiled if not c.const]
            if not runtime:
                return _const(None if forced_unknown else (not absorbing))
        else:
            forced_unknown = False
            runtime = compiled
        fns = tuple(c.fn for c in runtime)
        if is_and:
            def fn(env: EvalEnv, _fns=fns, _unknown=forced_unknown) -> object:
                saw_unknown = _unknown
                for f in _fns:
                    value = f(env)
                    if value is False:
                        return False
                    if value is None:
                        saw_unknown = True
                return None if saw_unknown else True
        else:
            def fn(env: EvalEnv, _fns=fns, _unknown=forced_unknown) -> object:
                saw_unknown = _unknown
                for f in _fns:
                    value = f(env)
                    if value is True:
                        return True
                    if value is None:
                        saw_unknown = True
                return None if saw_unknown else False

        return Compiled(fn=fn, rank=rank)

    def _not(self, expr: ast.Not) -> Compiled:
        operand = self._compile(expr.operand)
        of = operand.fn

        def fn(env: EvalEnv) -> object:
            value = of(env)
            if value is None:
                return None
            return not value

        return self._fold(fn, (operand,), 1 + operand.rank)

    # -- folding ----------------------------------------------------------------

    def _fold(
        self,
        fn: EvalFn,
        children,
        rank: int,
        static_type: str | None = None,
    ) -> Compiled:
        """Fold to a constant when every input is one (errors defer to runtime)."""
        if all(child.const for child in children):
            try:
                value = fn(None)  # type: ignore[arg-type]
            except Exception:
                return Compiled(fn=fn, rank=rank, static_type=static_type)
            folded = _const(value)
            if static_type is not None and folded.static_type is None:
                folded.static_type = static_type
            return folded
        return Compiled(fn=fn, rank=rank, static_type=static_type)


def _require_numeric(left: object, right: object) -> None:
    for operand in (left, right):
        if type(operand) not in _NUMERIC_TYPES:
            raise ExecutionError(f"arithmetic on non-numeric value {operand!r}")


#: Ordering-sign tests per comparison operator (reference three-way path).
_ORDERING_TEST = {
    CompareOp.EQ: lambda o: o == 0,
    CompareOp.NE: lambda o: o != 0,
    CompareOp.LT: lambda o: o < 0,
    CompareOp.LE: lambda o: o <= 0,
    CompareOp.GT: lambda o: o > 0,
    CompareOp.GE: lambda o: o >= 0,
}


def _ordered_comparison(op: CompareOp, lf: EvalFn, rf: EvalFn) -> EvalFn:
    """A typed comparison lowered to raw ``<`` orderings with a NULL guard.

    Written as combinations of ``<`` so the result matches the reference
    three-way :func:`~repro.datatypes.compare_values` exactly (including
    NaN, which compares "equal" under three-way ordering).
    """
    if op is CompareOp.EQ:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return not (l < r or r < l)
    elif op is CompareOp.NE:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return bool(l < r or r < l)
    elif op is CompareOp.LT:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return l < r
    elif op is CompareOp.LE:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return not (r < l)
    elif op is CompareOp.GT:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return r < l
    else:
        def fn(env: EvalEnv) -> object:
            l = lf(env)
            r = rf(env)
            if l is None or r is None:
                return None
            return not (l < r)

    return fn


# ---------------------------------------------------------------------------
# three-way comparators for join/sort keys
# ---------------------------------------------------------------------------


def ordering_fns(
    left: DataType, right: DataType, interpret: bool = False
) -> tuple[Callable, Callable]:
    """``(eq, ge)`` comparators for two non-NULL join key values.

    Typed key pairs lower to raw ``<``; mixed families (or ``interpret``
    mode) keep the reference three-way compare (which raises on genuinely
    incomparable values).
    """
    if not interpret and _datatype_family(left) == _datatype_family(right):
        def eq(a, b) -> bool:
            return not (a < b or b < a)

        def ge(a, b) -> bool:
            return not (a < b)

        return eq, ge

    def eq_generic(a, b) -> bool:
        return compare_values(a, b) == 0

    def ge_generic(a, b) -> bool:
        return compare_values(a, b) >= 0

    return eq_generic, ge_generic
