"""Plan trees — the reproduction's Access Specification Language.

The optimizer emits a tree of these nodes; the execution engine interprets
them (our substitute for System R's machine-code generation).  Every node
carries its predicted :class:`~repro.optimizer.cost.Cost`, its estimated
output cardinality, and the physical order of the rows it produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..catalog.schema import IndexDef, TableDef
from ..sql import ast
from .bound import BoundColumn
from .cost import Cost
from .orders import ColumnKey
from .predicates import SargExpression


@dataclass
class PlanNode:
    """Base plan node."""

    cost: Cost = field(default_factory=Cost, kw_only=True)
    rows: float = field(default=0.0, kw_only=True)
    order_columns: tuple[ColumnKey, ...] = field(default=(), kw_only=True)
    #: Buffer pages this plan's pipeline keeps hot while producing rows: a
    #: couple per open scan, plus the whole footprint of any nested-loop
    #: inner assumed buffer-resident.  Join costing subtracts the outer's
    #: claim before granting residency to a new inner.
    buffer_claim: float = field(default=2.0, kw_only=True)
    #: Per-execution-mode compiled artifacts (closure programs) attached by
    #: the engine on first execution; never part of plan identity.
    compiled: dict = field(
        default_factory=dict, kw_only=True, compare=False, repr=False
    )

    def children(self) -> list["PlanNode"]:
        """Child plan nodes, outer before inner."""
        return []

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return type(self).__name__


# ---------------------------------------------------------------------------
# access paths
# ---------------------------------------------------------------------------


@dataclass
class SegmentAccess:
    """Full segment scan; unordered for the optimizer's purposes."""

    def describe(self) -> str:
        """Human-readable description of this access path."""
        return "segment scan"


@dataclass
class IndexAccess:
    """B-tree access with optional key bounds.

    Bounds are *expressions* (literals, outer-block columns, outer join
    columns, or uncorrelated subqueries) evaluated when the scan opens, so
    one description covers constants, correlation probes, and nested-loop
    join lookups alike.
    """

    index: IndexDef
    low: tuple[ast.Expr, ...] = ()
    high: tuple[ast.Expr, ...] = ()
    low_inclusive: bool = True
    high_inclusive: bool = True

    def describe(self) -> str:
        """Human-readable description of this access path."""
        parts = [f"index {self.index.name}"]
        width = len(self.index.column_names)
        bound = max(len(self.low), len(self.high))
        if 0 < bound < width:
            parts.append(f"[prefix {bound}/{width}]")
        if self.low:
            op = ">=" if self.low_inclusive else ">"
            parts.append(f"{op} ({', '.join(map(str, self.low))})")
        if self.high:
            op = "<=" if self.high_inclusive else "<"
            parts.append(f"{op} ({', '.join(map(str, self.high))})")
        return " ".join(parts)


@dataclass
class ScanNode(PlanNode):
    """One relation accessed via a segment scan or an index scan.

    ``sargs`` are applied below the RSI; ``residual`` predicates are
    evaluated on returned tuples (each of which has already cost an RSI
    call).
    """

    alias: str
    table: TableDef
    access: SegmentAccess | IndexAccess
    sargs: list[SargExpression] = field(default_factory=list)
    residual: list[ast.Expr] = field(default_factory=list)

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return f"scan {self.alias} via {self.access.describe()}"


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


@dataclass
class NestedLoopJoinNode(PlanNode):
    """Nested loops: for each outer row, re-open the inner scan.

    The inner :class:`ScanNode` typically carries join predicates as probe
    SARGs/index bounds referencing outer columns.  ``residual`` holds join
    predicates not enforceable by the inner access path.
    """

    outer: PlanNode
    inner: ScanNode
    residual: list[ast.Expr] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.outer, self.inner]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return f"nested-loop join (inner {self.inner.alias})"


@dataclass
class MergeJoinNode(PlanNode):
    """Merging scans over two inputs ordered on the join column."""

    outer: PlanNode
    inner: PlanNode
    outer_column: BoundColumn
    inner_column: BoundColumn
    residual: list[ast.Expr] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.outer, self.inner]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return f"merge join on {self.outer_column} = {self.inner_column}"


@dataclass
class HashJoinNode(PlanNode):
    """Build/probe hash join on one or more equijoin key pairs.

    The inner :class:`ScanNode` — the smaller input, by the build-side
    rule — is scanned once into an in-memory hash table keyed on its join
    columns; outer rows then probe it.  Produces no tuple order.  ``keys``
    pairs each outer key column with its inner counterpart.  ``matches``
    keeps the optimizer's probe-match estimate (the RSI consumption term)
    so the cost auditor can re-derive the formula exactly.  ``partitions``
    records the plan-time grace decision: above 1, both inputs are
    hash-partitioned through temporary pages and joined partition by
    partition.
    """

    outer: PlanNode
    inner: ScanNode
    keys: list[tuple[BoundColumn, BoundColumn]] = field(default_factory=list)
    residual: list[ast.Expr] = field(default_factory=list)
    matches: float = field(default=0.0, kw_only=True)
    partitions: int = field(default=1, kw_only=True)

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.outer, self.inner]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        keys = ", ".join(f"{o} = {i}" for o, i in self.keys)
        grace = f", grace x{self.partitions}" if self.partitions > 1 else ""
        # getattr: the plan checker renders labels of corrupted trees
        # whose build side may not be a ScanNode at all.
        build = getattr(self.inner, "alias", "<non-scan>")
        return f"hash join (build {build}{grace}) on {keys}"


# ---------------------------------------------------------------------------
# sorting / aggregation / projection
# ---------------------------------------------------------------------------


@dataclass
class FilterNode(PlanNode):
    """Residual predicate evaluation above a child (e.g. constant factors,
    predicates referencing only outer-block values)."""

    child: PlanNode
    predicates: list[ast.Expr] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.child]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return "filter " + " AND ".join(str(p) for p in self.predicates)


@dataclass
class SortNode(PlanNode):
    """Sort rows into a temporary list on the given key columns."""

    child: PlanNode
    keys: list[tuple[BoundColumn, bool]]  # (column, descending)

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.child]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        keys = ", ".join(
            f"{column}{' DESC' if descending else ''}"
            for column, descending in self.keys
        )
        return f"sort by {keys}"


@dataclass
class AggregateNode(PlanNode):
    """Grouping and aggregate evaluation over group-ordered input."""

    child: PlanNode
    group_by: list[BoundColumn]
    aggregates: list[ast.FuncCall]
    having: ast.Expr | None = None

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.child]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        if self.group_by:
            keys = ", ".join(str(column) for column in self.group_by)
            return f"group by {keys}"
        return "aggregate (whole input)"


@dataclass
class ProjectNode(PlanNode):
    """Evaluate the SELECT list."""

    child: PlanNode
    exprs: list[ast.Expr]
    names: list[str]

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.child]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return "project " + ", ".join(self.names)


@dataclass
class DistinctNode(PlanNode):
    """Duplicate elimination on fully-projected rows."""

    child: PlanNode

    def children(self) -> list[PlanNode]:
        """Child plan nodes, outer before inner."""
        return [self.child]

    def label(self) -> str:
        """One-line description used by plan rendering."""
        return "distinct"


def walk_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Yield every node of a plan tree, pre-order."""
    yield node
    for child in node.children():
        yield from walk_plan(child)


def render_plan(node: PlanNode, indent: int = 0, w: float | None = None) -> str:
    """Multi-line, indented plan rendering (used by EXPLAIN)."""
    pad = "  " * indent
    suffix = f"  [rows~{node.rows:.1f}"
    if w is not None:
        suffix += f", cost~{node.cost.total(w):.2f}"
    suffix += "]"
    lines = [f"{pad}{node.label()}{suffix}"]
    extras: list[str] = []
    if isinstance(node, ScanNode):
        for sarg in node.sargs:
            extras.append(f"{pad}  sarg: {sarg}")
        for residual in node.residual:
            extras.append(f"{pad}  filter: {residual}")
    elif isinstance(node, (NestedLoopJoinNode, MergeJoinNode, HashJoinNode)):
        for residual in node.residual:
            extras.append(f"{pad}  filter: {residual}")
    lines.extend(extras)
    for child in node.children():
        lines.append(render_plan(child, indent + 1, w))
    return "\n".join(lines)
