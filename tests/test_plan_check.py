"""The structural plan checker: accepts every real plan, rejects corrupted ones.

Each corruption test plans a real query, mutates the plan tree the way a
specific optimizer bug would (dangling index reference, dropped predicate,
phantom order claim, ...), and asserts the checker reports the matching
rule.  A hypothesis sweep over the workload generator closes the loop:
whatever the planner produces must verify cleanly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.check import EMPDEPT_QUERIES, verifying_optimizer
from repro.analysis.plan_check import (
    PlanCheckError,
    check_plan,
    check_statement,
)
from repro.catalog.schema import IndexDef
from repro.optimizer.plan import (
    FilterNode,
    HashJoinNode,
    IndexAccess,
    ScanNode,
    SegmentAccess,
    walk_plan,
)
from repro.optimizer.planner import check_enabled
from repro.sql import parse_statement
from repro.workloads.generator import (
    build_database,
    random_chain_spec,
    random_select_query,
    random_star_spec,
    star_join_query,
)


def plan(db, sql):
    """Plan without verification so tests can corrupt the result."""
    return db.optimizer().plan_query(parse_statement(sql))


def rules(violations):
    return {violation.rule for violation in violations}


# ---------------------------------------------------------------------------
# clean plans are accepted
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql", EMPDEPT_QUERIES)
def test_accepts_every_empdept_plan(empdept, sql):
    verifying_optimizer(empdept).plan_query(parse_statement(sql))


def test_clean_statement_has_no_violations(empdept):
    planned = plan(
        empdept, "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
    )
    assert check_statement(planned, empdept.catalog) == []


# ---------------------------------------------------------------------------
# corrupted plans are rejected
# ---------------------------------------------------------------------------


def test_rejects_dangling_index(empdept):
    planned = plan(empdept, "SELECT * FROM EMP WHERE DNO = 5")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    assert isinstance(scan.access, IndexAccess)
    phantom = IndexDef(
        name="EMP_PHANTOM",
        table_name=scan.table.name,
        column_names=list(scan.access.index.column_names),
        key_positions=list(scan.access.index.key_positions),
    )
    scan.access = IndexAccess(
        index=phantom, low=scan.access.low, high=scan.access.high
    )
    assert "dangling-index" in rules(check_statement(planned, empdept.catalog))


def test_rejects_dropped_predicate(empdept):
    planned = plan(empdept, "SELECT NAME FROM EMP WHERE SAL > 500")
    for node in walk_plan(planned.root):
        if isinstance(node, ScanNode):
            node.sargs.clear()
            node.residual.clear()
        elif isinstance(node, FilterNode):
            node.predicates.clear()
    assert "dropped-predicate" in rules(
        check_statement(planned, empdept.catalog)
    )


def test_rejects_double_applied_predicate(empdept):
    planned = plan(empdept, "SELECT NAME FROM EMP WHERE SAL > 500")
    scan = next(
        n for n in walk_plan(planned.root) if isinstance(n, ScanNode) and n.sargs
    )
    scan.sargs.append(scan.sargs[0])
    assert "double-applied-predicate" in rules(
        check_statement(planned, empdept.catalog)
    )


def test_rejects_phantom_order(empdept):
    planned = plan(empdept, "SELECT * FROM EMP")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    scan.access = SegmentAccess()
    scan.order_columns = ((scan.alias, 0),)
    assert "phantom-order" in rules(check_statement(planned, empdept.catalog))


def test_rejects_missing_relation(empdept):
    planned = plan(
        empdept, "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
    )
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    violations = check_plan(
        scan, empdept.catalog, planned.block, planned.factors
    )
    assert "missing-relation" in rules(violations)


def test_rejects_stale_table_definition(empdept):
    import copy

    planned = plan(empdept, "SELECT * FROM EMP")
    scan = next(n for n in walk_plan(planned.root) if isinstance(n, ScanNode))
    scan.table = copy.deepcopy(scan.table)
    assert "stale-table" in rules(check_statement(planned, empdept.catalog))


def test_verifying_optimizer_raises_on_corruption(empdept, monkeypatch):
    """The REPRO_CHECK path surfaces violations as PlanCheckError."""
    from repro.analysis import plan_check

    original = plan_check.check_statement

    def corrupting_check(planned, catalog):
        for node in walk_plan(planned.root):
            if isinstance(node, ScanNode):
                node.sargs.clear()
                node.residual.clear()
        return original(planned, catalog)

    monkeypatch.setattr(plan_check, "check_statement", corrupting_check)
    with pytest.raises(PlanCheckError) as excinfo:
        verifying_optimizer(empdept).plan_query(
            parse_statement("SELECT NAME FROM EMP WHERE SAL > 500")
        )
    assert "dropped-predicate" in rules(excinfo.value.violations)


# ---------------------------------------------------------------------------
# corrupted hash joins are rejected
# ---------------------------------------------------------------------------


@pytest.fixture
def hash_planned():
    from tests.test_hash_join import _wide_pair_db

    keys1 = [None if i % 9 == 0 else i % 8 for i in range(120)]
    keys2 = [None if i % 7 == 0 else i % 8 for i in range(150)]
    db = _wide_pair_db(keys1, keys2)
    planned = plan(db, "SELECT T1.V, T2.W FROM T1, T2 WHERE T1.K = T2.K")
    node = next(
        n for n in walk_plan(planned.root) if isinstance(n, HashJoinNode)
    )
    return db, planned, node


def test_accepts_clean_hash_plan(hash_planned):
    db, planned, __ = hash_planned
    assert check_statement(planned, db.catalog) == []


def test_rejects_hash_phantom_order(hash_planned):
    db, planned, node = hash_planned
    node.order_columns = ((node.outer.alias, 0),)
    assert "phantom-order" in rules(check_statement(planned, db.catalog))


def test_rejects_hash_without_keys(hash_planned):
    db, planned, node = hash_planned
    node.keys.clear()
    assert "hash-no-keys" in rules(check_statement(planned, db.catalog))


def test_rejects_swapped_hash_key_sides(hash_planned):
    db, planned, node = hash_planned
    outer_column, inner_column = node.keys[0]
    node.keys[0] = (inner_column, outer_column)
    assert "unbound-join-column" in rules(
        check_statement(planned, db.catalog)
    )


def test_rejects_bad_partition_count(hash_planned):
    db, planned, node = hash_planned
    node.partitions = 0
    assert "bad-partitions" in rules(check_statement(planned, db.catalog))


def test_rejects_composite_build_side(hash_planned):
    db, planned, node = hash_planned
    node.inner = FilterNode(child=node.inner, predicates=[])
    assert "bad-inner" in rules(check_statement(planned, db.catalog))


# ---------------------------------------------------------------------------
# the REPRO_CHECK environment flag
# ---------------------------------------------------------------------------


def test_env_flag_gates_verification(empdept, monkeypatch):
    calls = []
    monkeypatch.setattr(
        "repro.analysis.plan_check.verify_planned",
        lambda planned, catalog: calls.append(planned),
    )
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert check_enabled()
    empdept.optimizer().plan_query(parse_statement("SELECT * FROM EMP"))
    assert calls
    calls.clear()
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not check_enabled()
    empdept.optimizer().plan_query(parse_statement("SELECT * FROM EMP"))
    assert not calls


# ---------------------------------------------------------------------------
# randomized sweep: generated queries must always verify
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def chain_db():
    rng = random.Random(99)
    specs = random_chain_spec(4, rng, max_rows=300)
    return build_database(specs, seed=7), specs


@pytest.fixture(scope="module")
def star_db():
    rng = random.Random(17)
    specs = random_star_spec(3, rng, fact_rows=500)
    return build_database(specs, seed=23), specs


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_chain_queries_verify(chain_db, seed):
    db, specs = chain_db
    sql = random_select_query(specs, random.Random(seed))
    verifying_optimizer(db).plan_query(parse_statement(sql))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_star_queries_verify(star_db, seed):
    db, specs = star_db
    rng = random.Random(seed)
    selections = []
    for __ in range(rng.randint(0, 2)):
        spec = rng.choice(specs[1:])
        column = spec.column("ATTR")
        selections.append(
            (spec.name, "ATTR", column.low + rng.randrange(column.distinct))
        )
    sql = star_join_query(specs, selections)
    verifying_optimizer(db).plan_query(parse_statement(sql))
