"""Invalidation of the optimizer's statistics memos.

The estimator and cost model cache catalog-derived values (selectivity
factors, NCARD/TCARD/P, NINDX) keyed on :attr:`Catalog.version`.  These
tests prove the caches are *coherent*: any ``UPDATE STATISTICS`` or DDL
bumps the version and the very next estimate sees the new numbers, even
on long-lived estimator/cost-model instances.
"""

from __future__ import annotations

from repro import Database
from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER
from repro.optimizer.binder import Binder
from repro.optimizer.cost import CostModel
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table("T", [("A", INTEGER), ("B", INTEGER)])
    catalog.set_relation_stats("T", RelationStats(1000, 50, 1.0))
    catalog.create_index("T_A", "T", ["A"])
    catalog.set_index_stats("T_A", IndexStats(100, 5, 1, 100))
    return catalog


def factor_for(catalog: Catalog, sql: str):
    block = Binder(catalog).bind(parse_statement(sql))
    return block, to_cnf_factors(block.where, block)


# ---------------------------------------------------------------------------
# the version counter itself
# ---------------------------------------------------------------------------


def test_version_bumps_on_every_mutation():
    catalog = Catalog()
    seen = [catalog.version]

    def bumped():
        seen.append(catalog.version)
        assert seen[-1] > seen[-2]

    catalog.create_table("T", [("A", INTEGER)])
    bumped()
    catalog.set_relation_stats("T", RelationStats(10, 1, 1.0))
    bumped()
    catalog.create_index("T_A", "T", ["A"])
    bumped()
    catalog.set_index_stats("T_A", IndexStats(5, 1, 1, 5))
    bumped()
    catalog.drop_index("T_A")
    bumped()
    catalog.clear_statistics()
    bumped()
    catalog.drop_table("T")
    bumped()


def test_version_stable_under_reads():
    catalog = make_catalog()
    before = catalog.version
    catalog.table("T")
    catalog.indexes_on("T")
    catalog.index_on_column("T", "A")
    catalog.relation_stats("T")
    catalog.index_stats("T_A")
    assert catalog.version == before


# ---------------------------------------------------------------------------
# estimator caches
# ---------------------------------------------------------------------------


def test_factor_selectivity_cache_sees_new_index_stats():
    catalog = make_catalog()
    estimator = SelectivityEstimator(catalog)
    __, factors = factor_for(catalog, "SELECT * FROM T WHERE A = 5")
    factor = factors[0]
    assert estimator.factor_selectivity(factor) == 1.0 / 100.0
    # Cached: a second call returns the same value.
    assert estimator.factor_selectivity(factor) == 1.0 / 100.0
    catalog.set_index_stats("T_A", IndexStats(400, 5, 1, 400))
    assert estimator.factor_selectivity(factor) == 1.0 / 400.0


def test_block_qcard_cache_sees_new_relation_stats():
    catalog = make_catalog()
    estimator = SelectivityEstimator(catalog)
    block, factors = factor_for(catalog, "SELECT * FROM T")
    assert estimator.block_qcard(block, factors) == 1000.0
    catalog.set_relation_stats("T", RelationStats(2000, 100, 1.0))
    assert estimator.block_qcard(block, factors) == 2000.0


def test_key_range_cache_sees_cleared_statistics():
    catalog = make_catalog()
    catalog.set_index_stats(
        "T_A", IndexStats(100, 5, low_key=0, high_key=100)
    )
    estimator = SelectivityEstimator(catalog)
    __, factors = factor_for(catalog, "SELECT * FROM T WHERE A > 75")
    first = estimator.factor_selectivity(factors[0])
    assert abs(first - 0.25) < 1e-9  # interpolated from the key range
    catalog.clear_statistics()
    __, fresh = factor_for(catalog, "SELECT * FROM T WHERE A > 75")
    from repro.optimizer.selectivity import DEFAULT_RANGE

    assert estimator.factor_selectivity(fresh[0]) == DEFAULT_RANGE


# ---------------------------------------------------------------------------
# cost model caches
# ---------------------------------------------------------------------------


def test_cost_model_stats_cache_invalidated():
    catalog = make_catalog()
    model = CostModel(catalog)
    table = catalog.table("T")
    index = catalog.index("T_A")
    assert model.ncard(table) == 1000.0
    assert model.tcard(table) == 50.0
    assert model.nindx(index) == 5.0
    catalog.set_relation_stats("T", RelationStats(4000, 200, 0.5))
    catalog.set_index_stats("T_A", IndexStats(100, 9, 1, 100))
    assert model.ncard(table) == 4000.0
    assert model.tcard(table) == 200.0
    assert model.fraction(table) == 0.5
    assert model.nindx(index) == 9.0


# ---------------------------------------------------------------------------
# end to end: UPDATE STATISTICS changes the next plan's estimates
# ---------------------------------------------------------------------------


def test_update_statistics_changes_plan_estimates():
    db = Database()
    db.execute("CREATE TABLE R (ID INTEGER, V INTEGER)")
    for value in range(40):
        db.execute(f"INSERT INTO R VALUES ({value}, {value % 4})")
    planned_before = db.plan("SELECT * FROM R")
    # Statistics were never collected: the small-relation default applies.
    assert planned_before.qcard == 10.0
    db.execute("UPDATE STATISTICS")
    planned_after = db.plan("SELECT * FROM R")
    assert planned_after.qcard == 40.0
