"""``repro bench --exec`` — time end-to-end query execution, not planning.

The planning benchmark (:mod:`repro.perf.bench`) times access path
selection; this harness times what the chosen plan then *does*: scans,
SARG evaluation, tuple decoding, joins, predicates, aggregation, and
projection — the CPU path the paper's ``W``·RSICARD term models.

Each query is planned once, then executed repeatedly prepared-statement
style with a fresh executor and a cold buffer pool per run, so the
stopwatch sees steady-state execution over identical physical I/O.  In
addition to wall-clock, every query records its result checksum and the
exact :class:`~repro.rss.counters.CostCounters` deltas (page fetches, RSI
calls, buffer hits) of one cold execution; ``--compare old.json`` reports
per-query speedups and **fails** if any counter or checksum moved — an
execution-engine optimization must change how fast the work happens, not
how much work the cost model sees.

The module is deliberately self-contained over the stable public API
(``Database``, ``parse_statement``, the workload generators), so the same
file can be pointed at an older checkout via ``PYTHONPATH`` to produce
the "before" report:

    git worktree add /tmp/seed <base-commit>
    PYTHONPATH=/tmp/seed/src python src/repro/perf/bench_exec.py \
        --output BENCH_executor_seed.json
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import math
import pstats
import random
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.database import Database
from repro.sql import ast, parse_statement
from repro.workloads.empdept import FIG1_QUERY, build_empdept
from repro.workloads.generator import (
    build_database,
    chain_join_query,
    random_chain_spec,
    random_star_spec,
    star_join_query,
)

#: Bump when the JSON schema changes shape.
REPORT_VERSION = 1

DEFAULT_OUTPUT = "BENCH_executor.json"

#: Counter fields that must be bit-identical between compared runs.
COUNTER_FIELDS = ("page_fetches", "rsi_calls", "buffer_hits")


@dataclass(frozen=True)
class ExecCase:
    """One named benchmark point: a database builder plus a query."""

    name: str
    build: Callable[[], Database]
    sql: str
    quick: bool = False  # part of the CI smoke subset


def _empdept_cases(employees: int) -> list[ExecCase]:
    def build() -> Database:
        return build_empdept(employees=employees, departments=24, seed=7)

    return [
        ExecCase("fig1-join", build, FIG1_QUERY, quick=True),
        ExecCase(
            "emp-filter",
            build,
            "SELECT NAME, SAL FROM EMP WHERE SAL > 400 AND JOB = 2",
            quick=True,
        ),
        ExecCase(
            "emp-arith",
            build,
            "SELECT ENO, SAL * 12 + 500 FROM EMP WHERE SAL / 2 > 150",
        ),
        ExecCase(
            "emp-between-in",
            build,
            "SELECT ENO, SAL FROM EMP "
            "WHERE SAL BETWEEN 200 AND 800 AND DNO IN (1, 2, 3, 4, 5)",
        ),
        ExecCase(
            "emp-like",
            build,
            "SELECT NAME FROM EMP WHERE NAME LIKE 'EMP1%' AND SAL > 300",
        ),
        ExecCase(
            "emp-agg",
            build,
            "SELECT DNO, COUNT(*), AVG(SAL), MAX(SAL) FROM EMP "
            "GROUP BY DNO HAVING COUNT(*) > 2",
            quick=True,
        ),
        ExecCase(
            "emp-order",
            build,
            "SELECT NAME, SAL FROM EMP WHERE DNO <= 12 ORDER BY SAL DESC",
        ),
    ]


def _chain_case(relations: int, max_rows: int, quick: bool = False) -> ExecCase:
    """A chain join at one NCARD scale (``max_rows`` ≈ the largest NCARD)."""

    def build() -> Database:
        rng = random.Random(1000 + relations * 10 + max_rows)
        tables = random_chain_spec(
            relations, rng, min_rows=max_rows // 4, max_rows=max_rows
        )
        return build_database(tables, seed=relations)

    rng = random.Random(1000 + relations * 10 + max_rows)
    tables = random_chain_spec(
        relations, rng, min_rows=max_rows // 4, max_rows=max_rows
    )
    sql = chain_join_query(tables)
    return ExecCase(f"chain{relations}-n{max_rows}", build, sql, quick=quick)


def _star_case(dimensions: int, fact_rows: int, quick: bool = False) -> ExecCase:
    """A star join at one fact-table NCARD scale."""

    def build() -> Database:
        rng = random.Random(2000 + dimensions * 10 + fact_rows)
        tables = random_star_spec(dimensions, rng, fact_rows=fact_rows)
        return build_database(tables, seed=dimensions)

    rng = random.Random(2000 + dimensions * 10 + fact_rows)
    tables = random_star_spec(dimensions, rng, fact_rows=fact_rows)
    sql = star_join_query(tables)
    return ExecCase(f"star{dimensions}-n{fact_rows}", build, sql, quick=quick)


def default_cases(quick: bool = False) -> list[ExecCase]:
    """The benchmark matrix: empdept corpus + chain/star at several NCARDs."""
    cases = _empdept_cases(employees=600 if quick else 1500)
    cases += [
        _chain_case(3, 400, quick=True),
        _chain_case(3, 1600),
        _chain_case(5, 800),
        _star_case(3, 1000, quick=True),
        _star_case(3, 4000),
        _star_case(5, 2000),
    ]
    if quick:
        return [case for case in cases if case.quick]
    return cases


# ---------------------------------------------------------------------------
# the unsorted-large-join section (``--hashjoin``)
# ---------------------------------------------------------------------------

#: Execution modes the hash-join gate audits for counter fidelity.
HASHJOIN_MODES = ("interp", "compiled", "fused", "parallel")


def _unsorted_join_case(
    name: str, tables: list, sql: str, buffer_pages: int
) -> ExecCase:
    def build() -> Database:
        return build_database(tables, seed=7, buffer_pages=buffer_pages)

    return ExecCase(name, build, sql, quick=True)


def hashjoin_cases(quick: bool = False) -> list[ExecCase]:
    """Large joins over unindexed, unsorted inputs: the hash sweet spot.

    Every shape keeps at least one relation out of buffer residency so
    nested loops cannot coast on a cached inner, and none carries an
    index that would hand merge join a free order.  The DP must pick a
    hash join on each of these when ``REPRO_HASHJOIN`` allows it (the
    bench asserts it does).
    """
    from repro.workloads.generator import ColumnSpec, TableSpec

    scale = 2 if quick else 1

    def spec(name, rows, columns, pad):
        return TableSpec(name, rows // scale, columns, [], pad_bytes=pad)

    cases = [
        _unsorted_join_case(
            "hj-filtered",
            [
                spec("T1", 8000, [ColumnSpec("A", 50), ColumnSpec("J1", 500)], 80),
                spec("T2", 12000, [ColumnSpec("J1", 500), ColumnSpec("B", 10)], 80),
            ],
            "SELECT T1.A, T2.J1 FROM T1, T2 "
            "WHERE T1.J1 = T2.J1 AND T2.B = 3",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-grace",
            [
                spec("T1", 8000, [ColumnSpec("A", 50), ColumnSpec("J1", 500)], 80),
                spec("T2", 12000, [ColumnSpec("J1", 500), ColumnSpec("B", 10)], 80),
            ],
            "SELECT COUNT(*) FROM T1, T2 WHERE T1.J1 = T2.J1",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-chain3",
            [
                spec("C1", 4000, [ColumnSpec("A", 50), ColumnSpec("J1", 400)], 80),
                spec("C2", 6000, [ColumnSpec("J1", 400), ColumnSpec("J2", 400)], 80),
                spec("C3", 5000, [ColumnSpec("J2", 400), ColumnSpec("B", 10)], 80),
            ],
            "SELECT C1.A, C3.B FROM C1, C2, C3 "
            "WHERE C1.J1 = C2.J1 AND C2.J2 = C3.J2 AND C3.B = 3",
            buffer_pages=48 // scale,
        ),
        _unsorted_join_case(
            "hj-star2",
            [
                spec(
                    "FACT",
                    10000,
                    [
                        ColumnSpec("D1", 300),
                        ColumnSpec("D2", 300),
                        ColumnSpec("M", 50),
                    ],
                    80,
                ),
                spec("DIM1", 3000, [ColumnSpec("D1", 300), ColumnSpec("A", 10)], 80),
                spec("DIM2", 3000, [ColumnSpec("D2", 300), ColumnSpec("B", 10)], 80),
            ],
            "SELECT FACT.M, DIM1.A, DIM2.B FROM FACT, DIM1, DIM2 "
            "WHERE FACT.D1 = DIM1.D1 AND FACT.D2 = DIM2.D2 "
            "AND DIM1.A = 3 AND DIM2.B = 5",
            buffer_pages=48 // scale,
        ),
    ]
    return cases


def _count_hash_joins(db: Database, sql: str) -> int:
    from repro.optimizer.plan import HashJoinNode, walk_plan

    statement = parse_statement(sql)
    assert isinstance(statement, ast.SelectQuery)
    planned = db.plan_query(statement)
    return sum(
        isinstance(node, HashJoinNode) for node in walk_plan(planned.root)
    )


def run_hashjoin_bench(
    repeats: int | None = None,
    quick: bool = False,
    echo: Callable[[str], None] = print,
) -> dict:
    """The hash-join gate: baseline vs hash across every execution mode.

    The baseline leg re-runs the section with ``REPRO_HASHJOIN=0`` in
    fused mode — the best nested-loop/merge plan the DP can find without
    the hash alternative.  The hash leg runs all four execution modes and
    requires bit-identical counters, row counts, and checksums across
    them; the headline ``geomean_speedup`` is fused-over-baseline on the
    same runner.  Unlike ``--compare``, counters are *expected* to differ
    between the two legs: they execute different plans.
    """
    import os

    cases = hashjoin_cases(quick=quick)
    effective_repeats = repeats or (3 if quick else 5)

    # The section is vacuous unless the DP picks hash joins on it.
    for case in cases:
        db = case.build()
        hash_joins = _count_hash_joins(db, case.sql)
        if hash_joins == 0:
            raise RuntimeError(
                f"{case.name}: the DP picked no hash join; the section no "
                "longer measures what it claims to"
            )

    echo("  -- baseline (REPRO_HASHJOIN=0, fused)")
    saved = os.environ.get("REPRO_HASHJOIN")
    os.environ["REPRO_HASHJOIN"] = "0"
    try:
        baseline = [
            run_case(case, repeats=effective_repeats, mode="fused")
            for case in cases
        ]
    finally:
        if saved is None:
            del os.environ["REPRO_HASHJOIN"]
        else:
            os.environ["REPRO_HASHJOIN"] = saved
    for entry in baseline:
        echo(
            f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
            f"rows {entry['rows']:>6d}"
        )

    mode_sections: dict[str, list[dict]] = {}
    for mode in HASHJOIN_MODES:
        echo(f"  -- hash joins, {mode} mode")
        workers = 2 if mode == "parallel" else None
        mode_sections[mode] = [
            run_case(case, repeats=effective_repeats, mode=mode, workers=workers)
            for case in cases
        ]
        for entry in mode_sections[mode]:
            echo(
                f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
                f"rows {entry['rows']:>6d}  rsi {entry['rsi_calls']:>8d}"
            )

    # Counter fidelity: every mode must agree with interp exactly.
    mismatches: list[str] = []
    reference = {entry["name"]: entry for entry in mode_sections["interp"]}
    for mode in HASHJOIN_MODES[1:]:
        for entry in mode_sections[mode]:
            ref = reference[entry["name"]]
            identical = all(
                ref[fieldname] == entry[fieldname]
                for fieldname in (*COUNTER_FIELDS, "rows", "checksum")
            )
            if not identical:
                mismatches.append(f"{entry['name']}@{mode}")

    # Same-runner speedup: fused hash leg over the no-hash baseline.
    baseline_by_name = {entry["name"]: entry for entry in baseline}
    rows: list[dict] = []
    for entry in mode_sections["fused"]:
        before = baseline_by_name[entry["name"]]
        if before["checksum"] != entry["checksum"]:
            mismatches.append(f"{entry['name']}@baseline-rows")
        rows.append(
            {
                "name": entry["name"],
                "baseline_mean_ms": before["mean_ms"],
                "hash_mean_ms": entry["mean_ms"],
                "speedup": round(before["mean_ms"] / entry["mean_ms"], 3),
            }
        )
        echo(
            f"  {entry['name']:<16s} {before['mean_ms']:9.2f} ms -> "
            f"{entry['mean_ms']:9.2f} ms  {rows[-1]['speedup']:6.2f}x"
        )
    geo = math.exp(statistics.fmean(math.log(row["speedup"]) for row in rows))
    echo(f"  geomean speedup over the no-hash baseline: {geo:.2f}x")
    if mismatches:
        echo(f"  COUNTER MISMATCHES: {', '.join(mismatches)}")
    else:
        echo("  counters identical across every execution mode")

    return {
        "version": REPORT_VERSION,
        "kind": "executor-hashjoin",
        "quick": quick,
        "baseline": {"mode": "fused", "hashjoin": "off", "queries": baseline},
        "modes": mode_sections,
        "queries": mode_sections["fused"],
        "comparison": {
            "queries": rows,
            "geomean_speedup": round(geo, 3),
            "counter_mismatches": mismatches,
        },
    }


# ---------------------------------------------------------------------------
# the skew / morsel-scheduling section (``--morsel``)
# ---------------------------------------------------------------------------

#: Worker count the morsel section models and measures at.
MORSEL_WORKERS = 4


@dataclass(frozen=True)
class SkewCase:
    """A skew-section case plus its page-cost model inputs.

    ``table`` names the partitioned scan's relation and ``predicate``
    tests one decoded values tuple for a match, so the bench can measure
    per-page matched-row counts (the paper's RSICARD currency) straight
    from the built database instead of asserting a skew shape.
    """

    case: ExecCase
    table: str
    predicate: Callable[[tuple], bool]


@dataclass(frozen=True)
class ScanHeavyCase:
    """A process-section case plus the spec of its worker payload.

    ``sarg`` is ``(position, op, value)`` over ``table``'s columns and
    ``out_positions`` the projected columns — enough to rebuild the exact
    ``ScanMorsel`` payload the process backend ships, so the payload can
    be timed serially in-process.
    """

    case: ExecCase
    table: str
    sarg: tuple | None
    out_positions: tuple


def morsel_cases(quick: bool = False) -> tuple[list[SkewCase], list[ScanHeavyCase]]:
    """The morsel-section matrix: skewed scans + scan-heavy direct queries.

    Skew tables draw their lead column from a Zipf and are clustered on
    it, so the hot value's rows sit on one contiguous run of pages — the
    shape that leaves most static ranges idle while one range carries
    nearly all matched rows.  Scan-heavy tables are wide unindexed
    single-table filters where decode+SARG+project dominate: the payload
    the process backend moves off the driving thread.
    """
    from repro.workloads.generator import ColumnSpec, IndexSpec, TableSpec

    scale = 2 if quick else 1

    ska = TableSpec(
        "SKA",
        12000 // scale,
        [ColumnSpec("HOT", distinct=40, zipf=1.2), ColumnSpec("VAL", distinct=1000)],
        pad_bytes=80,
        cluster_by="HOT",
    )
    skb = TableSpec(
        "SKB",
        12000 // scale,
        [ColumnSpec("HOT", distinct=60, zipf=1.0), ColumnSpec("VAL", distinct=1000)],
        pad_bytes=80,
        cluster_by="HOT",
    )
    dimh = TableSpec(
        "DIMH",
        40,
        [ColumnSpec("K", distinct=40, sequential=True), ColumnSpec("B", distinct=10)],
        indexes=[IndexSpec("IX_DIMH_K", ["K"], unique=True)],
    )

    def build(specs):
        def factory() -> Database:
            return build_database(specs, seed=11)

        return factory

    skew = [
        SkewCase(
            ExecCase(
                "skew-scan",
                build([ska]),
                "SELECT HOT, VAL FROM SKA WHERE HOT = 0",
                quick=True,
            ),
            "SKA",
            lambda values: values[0] == 0,
        ),
        SkewCase(
            ExecCase(
                "skew-filter",
                build([skb]),
                "SELECT VAL FROM SKB WHERE HOT = 0 AND VAL > 100",
                quick=True,
            ),
            "SKB",
            lambda values: values[0] == 0 and values[1] > 100,
        ),
        SkewCase(
            ExecCase(
                "skew-join",
                build([ska, dimh]),
                "SELECT SKA.VAL, DIMH.B FROM SKA, DIMH "
                "WHERE SKA.HOT = DIMH.K AND SKA.HOT = 0",
                quick=True,
            ),
            "SKA",
            lambda values: values[0] == 0,
        ),
    ]

    ts = TableSpec(
        "TS",
        16000 // scale,
        [ColumnSpec("A", distinct=50), ColumnSpec("B", distinct=1000)],
        pad_bytes=80,
    )
    tw = TableSpec(
        "TW",
        12000 // scale,
        [
            ColumnSpec("A", distinct=50),
            ColumnSpec("B", distinct=1000),
            ColumnSpec("C", distinct=12),
        ],
        pad_bytes=120,
    )
    tp = TableSpec(
        "TP",
        20000 // scale,
        [ColumnSpec("A", distinct=400), ColumnSpec("B", distinct=1000)],
        pad_bytes=60,
    )

    from repro.rss.sargs import CompareOp

    scanheavy = [
        ScanHeavyCase(
            ExecCase(
                "scanheavy-filter",
                build([ts]),
                "SELECT A, B FROM TS WHERE A < 25",
                quick=True,
            ),
            "TS",
            (0, CompareOp.LT, 25),
            (0, 1),
        ),
        ScanHeavyCase(
            ExecCase(
                "scanheavy-wide",
                build([tw]),
                "SELECT A, B, C FROM TW WHERE C >= 3",
                quick=True,
            ),
            "TW",
            (2, CompareOp.GE, 3),
            (0, 1, 2),
        ),
        ScanHeavyCase(
            ExecCase(
                "scanheavy-point",
                build([tp]),
                "SELECT B FROM TP WHERE A = 7",
                quick=True,
            ),
            "TP",
            (0, CompareOp.EQ, 7),
            (1,),
        ),
    ]
    return skew, scanheavy


def _page_match_counts(
    db: Database, table_name: str, predicate: Callable[[tuple], bool]
) -> list[int]:
    """Matched rows per page, decoded straight off the page-store snapshot."""
    from repro.rss.scan import decode_page_rows
    from repro.rss.tuples import DecodePlan

    table = db.catalog.table(table_name)
    snapshot = db.storage.scan_snapshot(table)
    decode = DecodePlan([column.datatype for column in table.columns]).decode
    counts = []
    for page_id in snapshot.page_ids:
        rows = decode_page_rows(
            page_id, snapshot.get_page(page_id), snapshot.relation_id, decode
        )
        counts.append(sum(1 for __, values in rows if predicate(values)))
    return counts


def _greedy_makespan(tasks: list[int], workers: int) -> int:
    """Max worker load when tasks go, in order, to the least-loaded worker.

    Models an idle worker pulling the next queued range — exact for the
    morsel queue, generous to static scheduling (a real static split has
    no load information at all).
    """
    loads = [0] * workers
    for cost in tasks:
        index = min(range(workers), key=loads.__getitem__)
        loads[index] += cost
    return max(loads)


def _range_costs(counts: list[int], ranges) -> list[int]:
    return [sum(counts[lo:hi]) for lo, hi in ranges]


def _worker_payload_ms(db: Database, spec: ScanHeavyCase) -> float:
    """Serial wall time of the exact payload the process backend ships.

    Freezes every morsel of the table and runs ``run_scan_morsel`` over
    them in one thread — decode, SARG matching, projection — which is
    the parallelizable fraction of the fused pipeline under the process
    backend (best of three runs).
    """
    from repro.engine.scheduler import (
        DEFAULT_MORSEL_PAGES,
        ScanMorsel,
        morsel_ranges,
        run_scan_morsel,
    )
    from repro.rss.sargs import ConjunctiveSargs, SargPredicate, Sargs

    table = db.catalog.table(spec.table)
    snapshot = db.storage.scan_snapshot(table)
    datatypes = tuple(column.datatype for column in table.columns)
    sargs = None
    if spec.sarg is not None:
        position, op, value = spec.sarg
        sargs = ConjunctiveSargs([Sargs([[SargPredicate(position, op, value)]])])
    morsels = [
        ScanMorsel(
            pages=snapshot.freeze_range(lo, hi),
            relation_id=snapshot.relation_id,
            datatypes=datatypes,
            sargs=sargs,
            out_positions=spec.out_positions,
        )
        for lo, hi in morsel_ranges(len(snapshot.page_ids), DEFAULT_MORSEL_PAGES)
    ]
    best = math.inf
    for __ in range(3):
        started = time.perf_counter()
        for morsel in morsels:
            run_scan_morsel(morsel)
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def _run_leg(
    cases: list[ExecCase],
    repeats: int,
    env: dict | None = None,
    **kwargs,
) -> list[dict]:
    """Run every case under temporary environment overrides."""
    import os

    saved: dict[str, str | None] = {}
    for key, value in (env or {}).items():
        saved[key] = os.environ.get(key)
        os.environ[key] = value
    try:
        return [run_case(case, repeats=repeats, **kwargs) for case in cases]
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _geomean(values: list[float]) -> float:
    return math.exp(statistics.fmean(math.log(value) for value in values))


def run_morsel_bench(
    repeats: int | None = None,
    quick: bool = False,
    echo: Callable[[str], None] = print,
) -> dict:
    """The morsel gate: four scheduling legs plus skew/process models.

    Every case runs fused, static-range parallel (``REPRO_SCHEDULE=
    static``), morsel-thread, and morsel-process at 4 workers; counters,
    row counts, and checksums must be bit-identical across all four legs
    — that part is the hard gate and holds on any host.

    Wall-clock speedups from thread/process pools depend on the host's
    core count (CI runners are often single-core), so the headline skew
    and process numbers are *models over measured inputs*, labelled as
    such in the report: the skew speedup compares greedy makespans of
    per-range matched-row counts measured from the real database, and
    the process speedup is an Amdahl projection from the serially-timed
    worker payload.  Measured wall times for every leg are reported
    alongside, with the host's CPU count.
    """
    import os

    skew_specs, scanheavy_specs = morsel_cases(quick=quick)
    cases = [spec.case for spec in skew_specs] + [
        spec.case for spec in scanheavy_specs
    ]
    effective_repeats = repeats or (3 if quick else 5)

    legs: dict[str, list[dict]] = {}
    leg_plans = [
        ("fused", {}, {"mode": "fused"}),
        (
            "static",
            {"REPRO_SCHEDULE": "static"},
            {"mode": "parallel", "workers": MORSEL_WORKERS},
        ),
        ("morsel", {}, {"mode": "parallel", "workers": MORSEL_WORKERS}),
        (
            "process",
            {"REPRO_BACKEND": "process"},
            {"mode": "parallel", "workers": MORSEL_WORKERS},
        ),
    ]
    for leg_name, env, kwargs in leg_plans:
        echo(f"  -- {leg_name} leg")
        legs[leg_name] = _run_leg(
            cases, repeats=effective_repeats, env=env, **kwargs
        )
        for entry in legs[leg_name]:
            echo(
                f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
                f"rows {entry['rows']:>6d}  rsi {entry['rsi_calls']:>8d}"
            )

    # The hard gate: all four legs agree on every counter, row count,
    # and checksum — scheduling must never change what the cost model sees.
    mismatches: list[str] = []
    reference = {entry["name"]: entry for entry in legs["fused"]}
    for leg_name in ("static", "morsel", "process"):
        for entry in legs[leg_name]:
            ref = reference[entry["name"]]
            identical = all(
                ref[fieldname] == entry[fieldname]
                for fieldname in (*COUNTER_FIELDS, "rows", "checksum")
            )
            if not identical:
                mismatches.append(f"{entry['name']}@{leg_name}")

    # Skew model: measured per-range matched-row counts -> greedy makespans.
    from repro.engine.scheduler import (
        DEFAULT_MORSEL_PAGES,
        STATIC_PARTITIONS_PER_WORKER,
        morsel_ranges,
        partition_ranges,
    )

    static_by_name = {entry["name"]: entry for entry in legs["static"]}
    morsel_by_name = {entry["name"]: entry for entry in legs["morsel"]}
    skew_rows: list[dict] = []
    echo("  -- skew model (matched rows per range, greedy makespan)")
    for spec in skew_specs:
        db = spec.case.build()
        counts = _page_match_counts(db, spec.table, spec.predicate)
        pages = len(counts)
        matched = sum(counts)
        static_tasks = _range_costs(
            counts,
            partition_ranges(
                pages, MORSEL_WORKERS * STATIC_PARTITIONS_PER_WORKER
            ),
        )
        morsel_tasks = _range_costs(
            counts, morsel_ranges(pages, DEFAULT_MORSEL_PAGES)
        )
        static_makespan = _greedy_makespan(static_tasks, MORSEL_WORKERS)
        morsel_makespan = _greedy_makespan(morsel_tasks, MORSEL_WORKERS)
        projected = static_makespan / max(morsel_makespan, 1)
        skew_rows.append(
            {
                "name": spec.case.name,
                "pages": pages,
                "matched_rows": matched,
                "static_makespan": static_makespan,
                "morsel_makespan": morsel_makespan,
                "projected_speedup": round(projected, 3),
                "measured_static_ms": static_by_name[spec.case.name]["mean_ms"],
                "measured_morsel_ms": morsel_by_name[spec.case.name]["mean_ms"],
            }
        )
        echo(
            f"  {spec.case.name:<16s} makespan {static_makespan:>6d} -> "
            f"{morsel_makespan:>6d}  projected {projected:6.2f}x"
        )
    skew_geomean = _geomean([row["projected_speedup"] for row in skew_rows])
    echo(f"  skew section projected geomean: {skew_geomean:.2f}x")

    # Process model: serially-timed worker payload -> Amdahl projection.
    fused_by_name = {entry["name"]: entry for entry in legs["fused"]}
    process_by_name = {entry["name"]: entry for entry in legs["process"]}
    process_rows: list[dict] = []
    echo("  -- process model (worker payload share, Amdahl)")
    for spec in scanheavy_specs:
        db = spec.case.build()
        payload_ms = _worker_payload_ms(db, spec)
        fused_ms = fused_by_name[spec.case.name]["mean_ms"]
        share = min(payload_ms / fused_ms, 0.95)
        projected = 1.0 / ((1.0 - share) + share / MORSEL_WORKERS)
        process_rows.append(
            {
                "name": spec.case.name,
                "fused_mean_ms": fused_ms,
                "worker_payload_ms": round(payload_ms, 4),
                "parallel_share": round(share, 4),
                "projected_speedup": round(projected, 3),
                "measured_process_ms": process_by_name[spec.case.name][
                    "mean_ms"
                ],
            }
        )
        echo(
            f"  {spec.case.name:<16s} payload {payload_ms:9.2f} ms / "
            f"{fused_ms:9.2f} ms  share {share:5.2f}  "
            f"projected {projected:6.2f}x"
        )
    process_geomean = _geomean(
        [row["projected_speedup"] for row in process_rows]
    )
    echo(f"  process section projected geomean: {process_geomean:.2f}x")
    if mismatches:
        echo(f"  COUNTER MISMATCHES: {', '.join(mismatches)}")
    else:
        echo("  counters identical across all four scheduling legs")

    return {
        "version": REPORT_VERSION,
        "kind": "executor-morsel",
        "quick": quick,
        "workers": MORSEL_WORKERS,
        "host": {"cpu_count": os.cpu_count()},
        "legs": legs,
        "queries": legs["morsel"],
        "skew": {
            "queries": skew_rows,
            "projected_geomean_speedup": round(skew_geomean, 3),
            "method": (
                "per-page matched-row counts (RSICARD units) measured from "
                "the built database; ranges assigned greedily to the "
                f"least-loaded of {MORSEL_WORKERS} workers; projected "
                "speedup = static-range makespan / morsel makespan. "
                "Wall-clock only tracks this on hosts with enough cores."
            ),
        },
        "process": {
            "queries": process_rows,
            "projected_geomean_speedup": round(process_geomean, 3),
            "method": (
                "worker payload (run_scan_morsel over every frozen morsel) "
                "timed serially against the fused mean; projected = "
                f"1/((1-share)+share/{MORSEL_WORKERS}) (Amdahl). Ignores "
                "IPC serialization; wall-clock governs on multi-core hosts."
            ),
        },
        "comparison": {
            "counter_mismatches": mismatches,
            "skew_projected_geomean": round(skew_geomean, 3),
            "process_projected_geomean": round(process_geomean, 3),
        },
    }


def _checksum(rows: list[tuple]) -> str:
    digest = hashlib.sha256()
    for row in sorted(repr(row) for row in rows):
        digest.update(row.encode("utf-8"))
    return digest.hexdigest()[:16]


#: Pipeline stages profiled executions are attributed to, by module path
#: fragment (first match wins).
PROFILE_STAGES = (
    ("engine/fuse.py", "fused drivers"),
    ("engine/operators.py", "operators"),
    ("engine/compile.py", "compiled exprs"),
    ("engine/evaluator.py", "interpreter"),
    ("engine/external_sort.py", "sort"),
    ("engine/temp.py", "temp lists"),
    ("rss/scan.py", "rss scan"),
    ("rss/sargs.py", "sargs"),
    ("rss/tuples.py", "decode"),
    ("rss/btree.py", "btree"),
    ("rss/", "storage"),
    ("engine/", "engine other"),
)


def _profile_stages(execute: Callable[[], object]) -> dict[str, float]:
    """Per-pipeline-stage self-time (ms) of one profiled execution."""
    profiler = cProfile.Profile()
    profiler.enable()
    execute()
    profiler.disable()
    stages: dict[str, float] = {}
    for (filename, __, ___), (____, _____, tottime, ______, _______) in (
        pstats.Stats(profiler).stats.items()  # type: ignore[attr-defined]
    ):
        normalized = filename.replace("\\", "/")
        if "/repro/" not in normalized:
            continue
        fragment = normalized.split("/repro/", 1)[1]
        for prefix, stage in PROFILE_STAGES:
            if fragment.startswith(prefix):
                break
        else:
            stage = "other"
        stages[stage] = stages.get(stage, 0.0) + tottime * 1000.0
    return {
        stage: round(ms, 3)
        for stage, ms in sorted(stages.items(), key=lambda kv: -kv[1])
    }


def run_case(
    case: ExecCase,
    repeats: int,
    mode: str | None = None,
    profile: bool = False,
    workers: int | None = None,
) -> dict:
    """Benchmark one case: build and plan once, execute ``repeats`` times."""
    db = case.build()
    if mode is not None:
        db.exec_mode = mode
    if workers is not None:
        db.workers = workers
    statement = parse_statement(case.sql)
    assert isinstance(statement, ast.SelectQuery)
    planned = db.plan_query(statement)
    storage = db.storage

    # One cold, measured execution for the result fingerprint and the cost
    # counters (which --compare later requires to be bit-identical).
    storage.cold_cache()
    before = storage.counters.snapshot()
    result = db.executor().execute(planned)
    after = storage.counters.snapshot()
    counters = {
        "page_fetches": after.page_fetches - before.page_fetches,
        "rsi_calls": after.rsi_calls - before.rsi_calls,
        "buffer_hits": after.buffer_hits - before.buffer_hits,
    }

    times: list[float] = []
    for __ in range(repeats):
        executor = db.executor()
        storage.cold_cache()
        started = time.perf_counter()
        executor.execute(planned)
        times.append(time.perf_counter() - started)

    entry = {
        "name": case.name,
        "repeats": repeats,
        "mean_ms": round(statistics.fmean(times) * 1000.0, 4),
        "min_ms": round(min(times) * 1000.0, 4),
        "rows": len(result.rows),
        "checksum": _checksum(result.rows),
        **counters,
    }
    if profile:
        storage.cold_cache()
        entry["stages"] = _profile_stages(
            lambda: db.executor().execute(planned)
        )
    return entry


def run_bench(
    cases: list[ExecCase],
    repeats: int | None = None,
    quick: bool = False,
    mode: str | None = None,
    profile: bool = False,
    workers: list[int] | None = None,
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the matrix and return the JSON-ready report.

    ``workers`` sweeps the matrix once per worker count (parallel mode);
    the report's top-level ``queries`` — the section ``--compare`` and CI
    gates read — reflects the *highest* count, and every swept count
    keeps its full per-query section under ``worker_sweep``.
    """
    from repro.engine.executor import resolve_exec_settings

    resolved_mode, resolved_workers = resolve_exec_settings(mode)
    sweep = sorted(workers) if workers else [resolved_workers]
    sweep_sections: list[dict] = []
    queries: list[dict] = []
    for count in sweep:
        if len(sweep) > 1:
            echo(f"  -- {resolved_mode} mode, {count} worker(s)")
        queries = []
        for case in cases:
            entry = run_case(
                case,
                repeats=repeats or (3 if quick else 7),
                mode=mode,
                profile=profile,
                workers=count if workers else None,
            )
            queries.append(entry)
            echo(
                f"  {entry['name']:<16s} mean {entry['mean_ms']:9.2f} ms  "
                f"min {entry['min_ms']:9.2f} ms  rows {entry['rows']:>6d}  "
                f"fetches {entry['page_fetches']:>6d}  "
                f"rsi {entry['rsi_calls']:>8d}"
            )
            if profile:
                for stage, ms in list(entry.get("stages", {}).items())[:6]:
                    echo(f"      {stage:<16s} {ms:9.2f} ms")
        sweep_sections.append(
            {
                "workers": count,
                "queries": queries,
                "total_mean_ms": round(sum(q["mean_ms"] for q in queries), 4),
            }
        )
    report = {
        "version": REPORT_VERSION,
        "kind": "executor",
        "quick": quick,
        "mode": resolved_mode,
        "workers": sweep[-1],
        "queries": queries,
        "summary": {
            "total_mean_ms": round(sum(q["mean_ms"] for q in queries), 4),
        },
    }
    if len(sweep) > 1:
        report["worker_sweep"] = sweep_sections
    return report


def load_report(path: str | Path) -> dict:
    """Load a previously written ``BENCH_executor.json``."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "queries" not in report:
        raise ValueError(f"{path}: not a repro bench --exec report")
    return report


def compare_reports(
    old: dict, new: dict, echo: Callable[[str], None] = print
) -> dict:
    """Per-query speedups of ``new`` over ``old`` plus counter fidelity.

    ``speedup`` > 1 means the new run executes faster.  Any difference in
    page fetches, RSI calls, buffer hits, row counts, or result checksums
    is reported as a counter mismatch — the optimization contract is that
    the physical work is unchanged.
    """
    old_by_name = {q["name"]: q for q in old["queries"]}
    rows: list[dict] = []
    mismatches: list[str] = []
    for query in new["queries"]:
        before = old_by_name.get(query["name"])
        if before is None or before["mean_ms"] <= 0.0:
            continue
        speedup = before["mean_ms"] / query["mean_ms"]
        identical = all(
            before.get(fieldname) == query.get(fieldname)
            for fieldname in (*COUNTER_FIELDS, "rows", "checksum")
        )
        if not identical:
            mismatches.append(query["name"])
        rows.append(
            {
                "name": query["name"],
                "old_mean_ms": before["mean_ms"],
                "new_mean_ms": query["mean_ms"],
                "speedup": round(speedup, 3),
                "counters_identical": identical,
            }
        )
        marker = "" if speedup >= 1.0 else "  REGRESSION"
        if not identical:
            marker += "  COUNTER MISMATCH"
        echo(
            f"  {query['name']:<16s} {before['mean_ms']:9.2f} ms -> "
            f"{query['mean_ms']:9.2f} ms  {speedup:6.2f}x{marker}"
        )
    if not rows:
        raise ValueError("no matching queries between the two reports")
    geo = math.exp(statistics.fmean(math.log(row["speedup"]) for row in rows))
    comparison = {
        "queries": rows,
        "geomean_speedup": round(geo, 3),
        "regressions": [row["name"] for row in rows if row["speedup"] < 1.0],
        "counter_mismatches": mismatches,
    }
    echo(f"  geomean speedup: {comparison['geomean_speedup']:.2f}x")
    if comparison["regressions"]:
        echo(f"  regressions: {', '.join(comparison['regressions'])}")
    if mismatches:
        echo(f"  COUNTER MISMATCHES: {', '.join(mismatches)}")
    else:
        echo("  cost counters identical on every query")
    return comparison


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``repro bench --exec [--quick] [--mode M] [--compare OLD] [--gate X]
    [--profile] [--output PATH]``."""
    parser = argparse.ArgumentParser(
        prog="repro bench --exec",
        description="benchmark end-to-end query execution",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix for CI smoke runs",
    )
    parser.add_argument(
        "--mode",
        choices=("fused", "parallel", "compiled", "interp"),
        default=None,
        help="execution mode to benchmark (default: REPRO_EXEC or fused)",
    )
    parser.add_argument(
        "--workers",
        metavar="N[,N...]",
        default=None,
        help="comma-separated worker counts to sweep (parallel mode); the "
        "report's headline queries come from the highest count",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report path (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD_JSON",
        help="report speedups/counter fidelity against an earlier report",
    )
    parser.add_argument(
        "--gate",
        type=float,
        metavar="MIN_GEOMEAN",
        default=None,
        help="with --compare: fail unless the geomean speedup over the old "
        "report reaches this value (e.g. 0.9 = tolerate 10%% slowdown)",
    )
    parser.add_argument(
        "--hashjoin",
        action="store_true",
        help="run the unsorted-large-join section instead: hash joins in "
        "all four modes vs a REPRO_HASHJOIN=0 fused baseline; --gate "
        "bounds the geomean speedup over that baseline",
    )
    parser.add_argument(
        "--morsel",
        action="store_true",
        help="run the skew/morsel-scheduling section instead: fused, "
        "static-range, morsel-thread, and morsel-process legs at 4 "
        "workers with a hard counter-identity gate; --gate bounds the "
        "skew section's projected geomean over static ranges",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute one cProfile'd execution per query to pipeline "
        "stages (scan/decode/fused drivers/sort/...)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the per-query repeat count",
    )
    args = parser.parse_args(argv)

    workers: list[int] | None = None
    if args.workers is not None:
        try:
            workers = [int(part) for part in args.workers.split(",") if part]
        except ValueError:
            workers = []
        if not workers or any(count < 1 for count in workers):
            print(
                f"error: --workers {args.workers!r}: expected a "
                "comma-separated list of positive integers",
                file=sys.stderr,
            )
            return 2

    if args.hashjoin:
        cases = hashjoin_cases(quick=args.quick)
        print(f"repro bench --exec --hashjoin: {len(cases)} queries")
        report = run_hashjoin_bench(repeats=args.repeats, quick=args.quick)
        output = Path(args.output)
        if args.output == DEFAULT_OUTPUT:
            output = Path("BENCH_executor_hashjoin.json")
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {output}")
        comparison = report["comparison"]
        if comparison["counter_mismatches"]:
            print(
                "HASHJOIN GATE FAILED: counter mismatches on "
                + ", ".join(comparison["counter_mismatches"]),
                file=sys.stderr,
            )
            return 1
        if args.gate is not None and comparison["geomean_speedup"] < args.gate:
            print(
                f"HASHJOIN GATE FAILED: geomean speedup "
                f"{comparison['geomean_speedup']:.3f}x < {args.gate:.3f}x",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.morsel:
        skew_specs, scanheavy_specs = morsel_cases(quick=args.quick)
        count = len(skew_specs) + len(scanheavy_specs)
        print(f"repro bench --exec --morsel: {count} queries x 4 legs")
        report = run_morsel_bench(repeats=args.repeats, quick=args.quick)
        output = Path(args.output)
        if args.output == DEFAULT_OUTPUT:
            output = Path("BENCH_executor_morsel.json")
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {output}")
        comparison = report["comparison"]
        if comparison["counter_mismatches"]:
            print(
                "MORSEL GATE FAILED: counter mismatches on "
                + ", ".join(comparison["counter_mismatches"]),
                file=sys.stderr,
            )
            return 1
        if (
            args.gate is not None
            and comparison["skew_projected_geomean"] < args.gate
        ):
            print(
                f"MORSEL GATE FAILED: skew projected geomean "
                f"{comparison['skew_projected_geomean']:.3f}x "
                f"< {args.gate:.3f}x",
                file=sys.stderr,
            )
            return 1
        return 0

    cases = default_cases(quick=args.quick)
    print(f"repro bench --exec: {len(cases)} quer{'y' if len(cases) == 1 else 'ies'}")
    report = run_bench(
        cases,
        repeats=args.repeats,
        quick=args.quick,
        mode=args.mode,
        profile=args.profile,
        workers=workers,
    )
    output = Path(args.output)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    if args.compare:
        old = load_report(args.compare)
        if old.get("quick", False) != args.quick:
            print(
                f"error: {args.compare} is a "
                f"{'quick' if old.get('quick') else 'full'}-matrix report; "
                "compare like against like (database sizes differ)",
                file=sys.stderr,
            )
            return 2
        print(f"compare against {args.compare}:")
        comparison = compare_reports(old, report)
        report["comparison"] = comparison
        output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if comparison["counter_mismatches"]:
            return 1
        if args.gate is not None and comparison["geomean_speedup"] < args.gate:
            print(
                f"PERF GATE FAILED: geomean speedup "
                f"{comparison['geomean_speedup']:.3f}x < {args.gate:.3f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
