"""The fault matrix: every registered point, at several hits, both actions.

For each registered fault point this drives a mixed DML workload against a
durable database and fails at the Nth hit of the point.  Whatever the layer
and instant of the failure, the contract is the same:

- ``error`` — the statement rolls back completely: the live store equals the
  last pre-statement state, the invariant checker finds nothing, and the
  remaining workload (including a retry of the failed statement) runs clean.
- ``crash`` — the raised :class:`SimulatedCrash` carries a snapshot of the
  backing files at the instant of failure; restoring and re-opening it
  recovers exactly the last committed state.

Either way: a statement commits in full or leaves no trace — never a
partial effect.
"""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.errors import SimulatedCrash, StorageError
from repro.rss.disk import DiskManager
from repro.rss.faults import FaultPlan, get_injector, registered_points


@pytest.fixture(autouse=True)
def _disarm():
    yield
    get_injector().disarm()


def wide(tag: str, number: int) -> str:
    """A ~420-byte VARCHAR value: forces page allocation and B-tree splits."""
    return f"{tag * 410}{number:04d}"


SETUP = (
    ["CREATE TABLE T (A INTEGER, B VARCHAR(500))"]
    + ["CREATE UNIQUE INDEX TA ON T (A)", "CREATE INDEX TB ON T (B)"]
    + [f"INSERT INTO T VALUES ({i}, '{wide('S', i)}')" for i in range(8)]
)

#: The workload the matrix runs under fault.  Mixed DML touching every
#: layer: segment inserts/updates/deletes, both indexes, page allocation,
#: splits (wide TB keys, leaf capacity ~7) and every commit-path point.
MUTATIONS = [
    "INSERT INTO T VALUES "
    + ", ".join(f"({i}, '{wide('N', i)}')" for i in range(100, 105)),
    f"UPDATE T SET B = '{wide('U', 1)}' WHERE A < 4",
    "DELETE FROM T WHERE A >= 5 AND A <= 6",
    "INSERT INTO T VALUES "
    + ", ".join(f"({i}, '{wide('M', i)}')" for i in range(105, 110)),
    f"UPDATE T SET B = '{wide('V', 2)}' WHERE A > 101",
    "DELETE FROM T WHERE A >= 100",
]


def build_db(path) -> Database:
    db = Database(path=str(path))
    for sql in SETUP:
        db.execute(sql)
    return db


def run_workload_under_fault(db, plan):
    """Run MUTATIONS with ``plan`` armed.

    Returns ``(mirror, error, failed_at, fired)`` where ``mirror`` is the
    logical dump after the last *successful* statement (== last committed
    state: every statement is its own micro-transaction).
    """
    injector = get_injector()
    injector.arm(plan)
    mirror = logical_dump(db)
    error = None
    failed_at = None
    try:
        for position, sql in enumerate(MUTATIONS):
            try:
                db.execute(sql)
            except StorageError as caught:
                error = caught
                failed_at = position
                break
            mirror = logical_dump(db)
    finally:
        fired = list(injector.fired)
        injector.disarm()
    return mirror, error, failed_at, fired


MATRIX = [
    (point, hit, action)
    for point in sorted(registered_points())
    for hit in (1, 3)
    for action in ("error", "crash")
]


@pytest.mark.parametrize(
    "point,hit,action", MATRIX, ids=[f"{p}@{h}:{a}" for p, h, a in MATRIX]
)
def test_fault_matrix(tmp_path, point, hit, action):
    db = build_db(tmp_path / "db.pages")
    plan = FaultPlan(point, hit=hit, action=action)
    mirror, error, failed_at, fired = run_workload_under_fault(db, plan)

    # the workload is sized so every (point, hit) cell actually fires —
    # a cell that stops firing means the matrix has silently gone vacuous
    assert fired, f"{plan!r} never fired; the workload no longer reaches it"
    assert error is not None, f"{plan!r} fired but no statement failed"

    if action == "error":
        assert not isinstance(error, SimulatedCrash)
        # full rollback: the live store is exactly the pre-statement store
        assert logical_dump(db) == mirror
        assert verify_storage(db) == []
        # and the engine is still good for the rest of the workload,
        # including a retry of the statement that failed
        for sql in MUTATIONS[failed_at:]:
            db.execute(sql)
        assert verify_storage(db) == []
        final = logical_dump(db)
        db.close()
        # the completed workload is durable
        survivor = Database(path=str(tmp_path / "db.pages"))
        assert logical_dump(survivor) == final
        assert verify_storage(survivor) == []
        survivor.close()
    else:
        assert isinstance(error, SimulatedCrash)
        assert error.snapshot is not None
        db.close()
        restored = DiskManager.restore(
            error.snapshot, tmp_path / "recovered.pages"
        )
        survivor = Database(path=str(restored))
        # recovery lands on the last committed (pre-statement) state —
        # the in-flight statement left no trace
        assert logical_dump(survivor) == mirror
        assert verify_storage(survivor) == []
        survivor.close()


class TestRandomizedWorkloads:
    """Hypothesis drives random DML sequences under random fault plans."""

    @staticmethod
    def _operations():
        insert = st.tuples(
            st.just("insert"), st.integers(0, 999), st.integers(0, 9)
        )
        update = st.tuples(
            st.just("update"), st.integers(0, 999), st.integers(0, 9)
        )
        delete = st.tuples(
            st.just("delete"), st.integers(0, 999), st.just(0)
        )
        return st.lists(
            st.one_of(insert, update, delete), min_size=3, max_size=9
        )

    @staticmethod
    def _to_sql(operation, used_keys):
        kind, key, salt = operation
        if kind == "insert":
            while key in used_keys:
                key += 1
            used_keys.add(key)
            return f"INSERT INTO T VALUES ({key}, '{wide('R', salt)}')"
        if kind == "update":
            return f"UPDATE T SET B = '{wide('W', salt)}' WHERE A <= {key}"
        return f"DELETE FROM T WHERE A = {key}"

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_workload_random_fault(self, data):
        operations = data.draw(self._operations())
        point = data.draw(st.sampled_from(sorted(registered_points())))
        hit = data.draw(st.integers(min_value=1, max_value=6))
        action = data.draw(st.sampled_from(["error", "crash"]))

        injector = get_injector()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "db.pages")
            db = build_db(path)
            used_keys = set(range(8))
            statements = [
                self._to_sql(operation, used_keys)
                for operation in operations
            ]
            injector.arm(FaultPlan(point, hit=hit, action=action))
            mirror = logical_dump(db)
            error = None
            try:
                for sql in statements:
                    try:
                        db.execute(sql)
                    except StorageError as caught:
                        error = caught
                        break
                    mirror = logical_dump(db)
            finally:
                fired = list(injector.fired)
                injector.disarm()

            if not fired:
                assert error is None
                assert verify_storage(db) == []
                db.close()
                return

            if isinstance(error, SimulatedCrash):
                db.close()
                restored = DiskManager.restore(
                    error.snapshot, os.path.join(tmp, "recovered.pages")
                )
                survivor = Database(path=str(restored))
                assert logical_dump(survivor) == mirror
                assert verify_storage(survivor) == []
                survivor.close()
            else:
                assert logical_dump(db) == mirror
                assert verify_storage(db) == []
                db.close()
