"""Unit tests for TABLE 1 selectivity factors — exact numeric checks."""

import pytest

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import FLOAT, INTEGER, varchar
from repro.optimizer.binder import Binder
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import (
    DEFAULT_BETWEEN,
    DEFAULT_EQ,
    DEFAULT_RANGE,
    SelectivityEstimator,
)
from repro.sql import parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP",
        [
            ("ENO", INTEGER),
            ("NAME", varchar(20)),
            ("DNO", INTEGER),
            ("SAL", FLOAT),
        ],
    )
    catalog.create_table("DEPT", [("DNO", INTEGER), ("LOC", varchar(20))])
    catalog.create_index("EMP_DNO", "EMP", ["DNO"])
    catalog.create_index("EMP_SAL", "EMP", ["SAL"])
    catalog.create_index("DEPT_DNO", "DEPT", ["DNO"])
    catalog.set_relation_stats("EMP", RelationStats(10000, 100, 1.0))
    catalog.set_relation_stats("DEPT", RelationStats(50, 2, 1.0))
    catalog.set_index_stats("EMP_DNO", IndexStats(icard=50, nindx=10, low_key=1, high_key=50))
    catalog.set_index_stats(
        "EMP_SAL", IndexStats(icard=1000, nindx=30, low_key=0.0, high_key=1000.0)
    )
    catalog.set_index_stats("DEPT_DNO", IndexStats(icard=50, nindx=2, low_key=1, high_key=50))
    return catalog


def selectivity(catalog, where, tables="EMP"):
    block = Binder(catalog).bind(
        parse_statement(f"SELECT * FROM {tables} WHERE {where}")
    )
    factors = to_cnf_factors(block.where, block)
    assert len(factors) == 1
    return SelectivityEstimator(catalog).factor_selectivity(factors[0])


class TestEqualPredicates:
    def test_equal_with_index(self, catalog):
        # F = 1 / ICARD(column index)
        assert selectivity(catalog, "DNO = 7") == pytest.approx(1 / 50)

    def test_equal_without_index(self, catalog):
        assert selectivity(catalog, "ENO = 7") == pytest.approx(DEFAULT_EQ)

    def test_not_equal(self, catalog):
        assert selectivity(catalog, "DNO <> 7") == pytest.approx(1 - 1 / 50)

    def test_column_eq_column_both_indexed(self, catalog):
        # F = 1 / max(ICARD(c1), ICARD(c2))
        value = selectivity(catalog, "EMP.DNO = DEPT.DNO", tables="EMP, DEPT")
        assert value == pytest.approx(1 / 50)

    def test_column_eq_column_one_indexed(self, catalog):
        value = selectivity(catalog, "EMP.ENO = DEPT.DNO", tables="EMP, DEPT")
        assert value == pytest.approx(1 / 50)

    def test_column_eq_column_neither_indexed(self, catalog):
        value = selectivity(catalog, "EMP.NAME = DEPT.LOC", tables="EMP, DEPT")
        assert value == pytest.approx(DEFAULT_EQ)


class TestRangePredicates:
    def test_greater_interpolates(self, catalog):
        # F = (high - value) / (high - low) = (1000 - 750) / 1000
        assert selectivity(catalog, "SAL > 750") == pytest.approx(0.25)

    def test_less_interpolates(self, catalog):
        assert selectivity(catalog, "SAL < 250") == pytest.approx(0.25)

    def test_out_of_range_clamps(self, catalog):
        assert selectivity(catalog, "SAL > 5000") == 0.0
        assert selectivity(catalog, "SAL < 5000") == 1.0

    def test_no_stats_default(self, catalog):
        assert selectivity(catalog, "ENO > 7") == pytest.approx(DEFAULT_RANGE)

    def test_non_arithmetic_default(self, catalog):
        assert selectivity(catalog, "NAME > 'M'") == pytest.approx(DEFAULT_RANGE)

    def test_between_interpolates(self, catalog):
        # F = (v2 - v1) / (high - low)
        assert selectivity(catalog, "SAL BETWEEN 100 AND 300") == pytest.approx(0.2)

    def test_between_default(self, catalog):
        assert selectivity(catalog, "ENO BETWEEN 1 AND 2") == pytest.approx(
            DEFAULT_BETWEEN
        )


class TestInPredicates:
    def test_in_list(self, catalog):
        # F = n * (1/ICARD), here 3/50
        assert selectivity(catalog, "DNO IN (1, 2, 3)") == pytest.approx(3 / 50)

    def test_in_list_capped_at_half(self, catalog):
        values = ", ".join(str(i) for i in range(40))
        assert selectivity(catalog, f"DNO IN ({values})") == pytest.approx(0.5)

    def test_in_subquery(self, catalog):
        # F = expected subquery cardinality / product of subquery FROM
        # cardinalities.  LOC has no index: F_sub = 1/10, so the ratio is
        # (50 * 1/10) / 50 = 1/10.
        value = selectivity(
            catalog, "DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'X')"
        )
        assert value == pytest.approx(1 / 10)

    def test_in_subquery_unfiltered_is_one(self, catalog):
        value = selectivity(catalog, "DNO IN (SELECT DNO FROM DEPT)")
        assert value == pytest.approx(1.0)


class TestBooleanCombinations:
    def test_or(self, catalog):
        # F = f1 + f2 - f1*f2 with f1 = 1/50, f2 = 1/10
        f1, f2 = 1 / 50, DEFAULT_EQ
        assert selectivity(catalog, "DNO = 1 OR ENO = 2") == pytest.approx(
            f1 + f2 - f1 * f2
        )

    def test_not(self, catalog):
        assert selectivity(catalog, "NOT NAME LIKE 'A%'") == pytest.approx(0.9)

    def test_and_within_factor(self, catalog):
        # AND inside an OR-preserved factor multiplies.
        block = Binder(catalog).bind(
            parse_statement("SELECT * FROM EMP WHERE DNO = 1 AND ENO = 2")
        )
        factors = to_cnf_factors(block.where, block)
        estimator = SelectivityEstimator(catalog)
        product = 1.0
        for factor in factors:
            product *= estimator.factor_selectivity(factor)
        assert product == pytest.approx((1 / 50) * DEFAULT_EQ)


class TestCardinalities:
    def test_qcard(self, catalog):
        block = Binder(catalog).bind(
            parse_statement(
                "SELECT * FROM EMP, DEPT "
                "WHERE EMP.DNO = DEPT.DNO AND EMP.DNO = 7"
            )
        )
        factors = to_cnf_factors(block.where, block)
        estimator = SelectivityEstimator(catalog)
        qcard = estimator.block_qcard(block, factors)
        assert qcard == pytest.approx(10000 * 50 * (1 / 50) * (1 / 50))

    def test_missing_stats_means_small(self, catalog):
        catalog.create_table("TINY", [("X", INTEGER)])
        estimator = SelectivityEstimator(catalog)
        assert estimator.relation_cardinality("TINY") == 10

    def test_aggregate_block_returns_one(self, catalog):
        block = Binder(catalog).bind(
            parse_statement("SELECT AVG(SAL) FROM EMP")
        )
        estimator = SelectivityEstimator(catalog)
        assert estimator.block_output_cardinality(block, []) == 1.0

    def test_group_by_bounded_by_icard(self, catalog):
        block = Binder(catalog).bind(
            parse_statement("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO")
        )
        estimator = SelectivityEstimator(catalog)
        assert estimator.block_output_cardinality(block, []) == pytest.approx(50)
