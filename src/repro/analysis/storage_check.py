"""Storage invariant checker: is the physical state self-consistent?

:func:`verify_storage` audits one live database against the recovery
invariants the shadow-paged RSS promises (ISSUE: statement atomicity means
these hold after *every* statement, faulted or not):

- every segment page exists, is a data page, and is not scratch;
- every stored record decodes under its relation's schema;
- every index entry points at a live tuple whose key matches, and every
  tuple appears in exactly the indexes declared on its table (multiset
  equality, so duplicates count);
- index keys are in order, entry counts agree, unique indexes hold no
  duplicate non-NULL keys;
- no non-scratch page is unreachable from the segments and indexes;
- with a backing file: page checksums verify, the committed page set
  matches the in-memory page set, and the frame free list is sound.

All reads go straight to the page store, bypassing the buffer pool, so a
check never perturbs LRU state or the cost counters.

``repro check --storage`` (see :func:`check_storage`) drives this checker
over an in-memory workload, a durable workload re-opened from disk, a
torn-page demonstration, and a deterministic crash/recover loop.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable

from ..errors import RecoveryError, StorageError, TornPageError
from ..rss.btree import orderable_key
from ..rss.page import Page, TupleId
from ..rss.tuples import decode_tuple, record_relation_id
from .plan_check import Violation

if TYPE_CHECKING:
    from ..database import Database


def verify_storage(db: "Database") -> list[Violation]:
    """Audit every storage invariant; returns all violations found."""
    violations: list[Violation] = []
    storage = db.storage
    store = storage.store
    referenced: set[int] = set()

    tables_by_segment: dict[str, list] = {}
    for table in db.catalog.tables():
        tables_by_segment.setdefault(table.segment_name, []).append(table)

    # -- segments: page soundness and decodable records ---------------------
    tuples: dict[str, dict[TupleId, tuple]] = {}
    for segment_name, segment in storage._segments.items():
        seen_pages: set[int] = set()
        for page_id in segment.page_ids:
            where = f"segment {segment_name} page {page_id}"
            if page_id in seen_pages:
                violations.append(
                    Violation("segment-page-duplicate", where, "listed twice")
                )
            seen_pages.add(page_id)
            referenced.add(page_id)
            if page_id not in store:
                violations.append(
                    Violation("segment-page-missing", where, "not in the store")
                )
                continue
            page = store.get(page_id)
            if not isinstance(page, Page):
                violations.append(
                    Violation(
                        "segment-page-kind",
                        where,
                        f"holds a {type(page).__name__}, not a data page",
                    )
                )
                continue
            if store.is_temp(page_id):
                violations.append(
                    Violation(
                        "segment-page-temp", where, "is a scratch page"
                    )
                )
            _decode_page(
                segment_name,
                page,
                tables_by_segment.get(segment_name, []),
                tuples,
                violations,
            )

    # -- indexes: structure and tuple agreement -----------------------------
    for table in db.catalog.tables():
        table_tuples = {
            tid: tagged
            for tid, tagged in tuples.get(table.segment_name, {}).items()
            if tagged[0] == table.relation_id
        }
        for index in db.catalog.indexes_on(table.name):
            _verify_index(storage, table, index, table_tuples, violations)
            try:
                referenced.update(storage.btree(index.name).node_page_ids())
            except StorageError:
                pass  # already reported as index-missing

    # -- reachability: no orphaned non-scratch pages ------------------------
    for page_id in store.page_ids():
        if page_id in referenced or store.is_temp(page_id):
            continue
        violations.append(
            Violation(
                "orphan-page",
                f"page {page_id}",
                f"{type(store.get(page_id)).__name__} unreachable from any "
                "segment or index",
            )
        )

    # -- the backing file, when there is one --------------------------------
    disk = store.disk
    if disk is not None:
        from ..rss.recovery import META_PAGE_ID

        for problem in disk.audit():
            violations.append(Violation("disk-audit", str(disk.path), problem))
        durable = {pid for pid in disk.page_ids() if pid != META_PAGE_ID}
        live = {
            pid for pid in store.page_ids() if not store.is_temp(pid)
        }
        for page_id in sorted(durable - live):
            violations.append(
                Violation(
                    "disk-extra-page",
                    f"page {page_id}",
                    "committed on disk but absent from the live store",
                )
            )
        for page_id in sorted(live - durable):
            violations.append(
                Violation(
                    "disk-missing-page",
                    f"page {page_id}",
                    "live in the store but never committed to disk",
                )
            )
    return violations


def _decode_page(
    segment_name: str,
    page: Page,
    tables: list,
    tuples: dict[str, dict[TupleId, tuple]],
    violations: list[Violation],
) -> None:
    by_relation = {table.relation_id: table for table in tables}
    for slot, record in page.records():
        where = f"segment {segment_name} tid ({page.page_id},{slot})"
        relation_id = record_relation_id(record)
        table = by_relation.get(relation_id)
        if table is None:
            violations.append(
                Violation(
                    "unknown-relation",
                    where,
                    f"record tagged with unknown relation id {relation_id}",
                )
            )
            continue
        try:
            values = decode_tuple(
                record, [column.datatype for column in table.columns]
            )
        except Exception as error:
            violations.append(
                Violation("undecodable-record", where, str(error))
            )
            continue
        tuples.setdefault(segment_name, {})[TupleId(page.page_id, slot)] = (
            relation_id,
            values,
        )


def _verify_index(
    storage,
    table,
    index,
    table_tuples: dict[TupleId, tuple],
    violations: list[Violation],
) -> None:
    where = f"index {index.name}"
    try:
        btree = storage.btree(index.name)
    except StorageError:
        violations.append(
            Violation(
                "index-missing", where, "declared in the catalog but has no B-tree"
            )
        )
        return
    entries = list(btree.entries_uncounted())
    previous = None
    for key, tid in entries:
        okey = orderable_key(key)
        if previous is not None and okey < previous:
            violations.append(
                Violation(
                    "index-disorder", where, f"key {key!r} out of order"
                )
            )
        previous = okey
    if btree.entry_count != len(entries):
        violations.append(
            Violation(
                "index-count",
                where,
                f"entry_count says {btree.entry_count}, "
                f"leaves hold {len(entries)}",
            )
        )
    expected = Counter(
        (index.key_of(values), tid)
        for tid, (__, values) in table_tuples.items()
    )
    actual = Counter(entries)
    for key, tid in (actual - expected).keys():
        violations.append(
            Violation(
                "dangling-entry",
                where,
                f"entry {key!r} -> {tid} has no matching live tuple",
            )
        )
    for key, tid in (expected - actual).keys():
        violations.append(
            Violation(
                "unindexed-tuple",
                where,
                f"tuple at {tid} with key {key!r} is missing from the index",
            )
        )
    if index.unique:
        keys = Counter(
            key for key, __ in entries if None not in key
        )
        for key, count in keys.items():
            if count > 1:
                violations.append(
                    Violation(
                        "unique-violated",
                        where,
                        f"key {key!r} appears {count} times",
                    )
                )


def logical_dump(db: "Database") -> dict[str, list[tuple]]:
    """Sorted rows of every table, read without touching the counters.

    The canonical "what does this database contain" digest used by the
    crash/recover loop and by differential tests: two databases are
    logically equal iff their dumps are equal.
    """
    dump: dict[str, list[tuple]] = {}
    with db.storage.suppress_counting():
        for table in db.catalog.tables():
            rows = [
                values
                for __, values in db.storage._raw_scan(table)
            ]
            dump[table.name] = sorted(rows, key=orderable_key)
    return dump


# ---------------------------------------------------------------------------
# the ``repro check --storage`` scenario
# ---------------------------------------------------------------------------

_WORKLOAD = (
    "CREATE TABLE EMP (ENO INTEGER, NAME VARCHAR(20), DNO INTEGER, "
    "SAL INTEGER)",
    "CREATE UNIQUE INDEX EMPNO ON EMP (ENO)",
    "CREATE INDEX EMPDNO ON EMP (DNO)",
    "CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20))",
    "CREATE INDEX DEPTDNO ON DEPT (DNO)",
    *[
        f"INSERT INTO EMP VALUES ({i}, 'E{i}', {i % 7}, {100 + 13 * i})"
        for i in range(60)
    ],
    *[f"INSERT INTO DEPT VALUES ({i}, 'D{i}')" for i in range(7)],
    "UPDATE EMP SET SAL = SAL + 50 WHERE DNO = 3",
    "UPDATE EMP SET DNO = 6 WHERE ENO < 5",
    "DELETE FROM EMP WHERE ENO >= 55",
    "DELETE FROM DEPT WHERE DNO = 0",
    "UPDATE STATISTICS",
)


def _run_workload(db: "Database") -> None:
    for sql in _WORKLOAD:
        db.execute(sql)


def check_storage(echo: Callable[[str], None] = print) -> list[Violation]:
    """The ``repro check --storage`` section: four scenarios, one report."""
    import os
    import tempfile

    from ..database import Database
    from ..rss.disk import DiskManager
    from ..rss.faults import FaultPlan, fault_plan

    violations: list[Violation] = []

    # 1. the invariants hold after an in-memory workload
    db = Database()
    _run_workload(db)
    violations.extend(verify_storage(db))
    echo("  in-memory workload verified")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. ... and after a durable workload, before and after re-open
        path = os.path.join(tmp, "db.pages")
        db = Database(path=path)
        _run_workload(db)
        violations.extend(verify_storage(db))
        dump = logical_dump(db)
        db.close()
        reopened = Database(path=path)
        violations.extend(verify_storage(reopened))
        if logical_dump(reopened) != dump:
            violations.append(
                Violation(
                    "recovery-drift",
                    path,
                    "re-opened contents differ from the committed contents",
                )
            )
        reopened.close()
        echo("  durable workload verified (before and after re-open)")

        # 3. a torn page in the closed backing file is detected on open.
        # Flip bytes inside a *committed* frame (read the page table to
        # find one — a free frame would legitimately go unchecked).
        import json

        table_body = json.loads(
            open(path + ".pt", encoding="utf-8").read()
        )["body"]
        frame = min(fields[0] for fields in table_body["pages"].values())
        offset = frame * 4096 + 16
        with open(path, "r+b") as handle:
            handle.seek(offset)
            torn = handle.read(8)
            handle.seek(offset)
            handle.write(bytes(byte ^ 0xFF for byte in torn))
        try:
            Database(path=path)
        except TornPageError as error:
            echo(f"  torn page detected on open: {error}")
        except RecoveryError as error:
            echo(f"  torn page table detected on open: {error}")
        else:
            violations.append(
                Violation(
                    "torn-page-missed",
                    path,
                    "flipped bytes in the frame file went undetected",
                )
            )

        # 4. crash at every commit fault point; recovery restores the
        #    last committed state exactly
        for point in ("page.write", "fsync", "pagetable.write", "pagetable.flip"):
            crash_path = os.path.join(tmp, f"crash-{point.replace('.', '-')}")
            db = Database(path=crash_path)
            db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))")
            db.execute("CREATE INDEX TA ON T (A)")
            for i in range(20):
                db.execute(f"INSERT INTO T VALUES ({i}, 'V{i}')")
            committed = logical_dump(db)
            snapshot = None
            with fault_plan(FaultPlan(point, hit=1, action="crash")):
                try:
                    db.execute("DELETE FROM T WHERE A < 10")
                except StorageError as error:
                    snapshot = getattr(error, "snapshot", None)
            db.close()
            if snapshot is None:
                violations.append(
                    Violation(
                        "crash-not-injected",
                        point,
                        "the commit never reached this fault point",
                    )
                )
                continue
            restored_path = os.path.join(tmp, f"restored-{point.replace('.', '-')}")
            DiskManager.restore(snapshot, restored_path)
            survivor = Database(path=restored_path)
            violations.extend(verify_storage(survivor))
            recovered = logical_dump(survivor)
            # Crash before the flip: statement lost.  Crash during/after the
            # flip would keep it — but the injected crash fires *before* the
            # rename, so the committed state must be the pre-statement one.
            if recovered != committed:
                violations.append(
                    Violation(
                        "crash-recovery-drift",
                        point,
                        "recovered contents differ from the last committed "
                        "state",
                    )
                )
            survivor.close()
        echo("  crash/recover loop verified at every commit fault point")
    return violations
