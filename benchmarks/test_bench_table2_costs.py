"""E2 — TABLE 2: single-relation access path costs, predicted vs measured.

Each of the six situations of TABLE 2 is exercised directly: the optimizer
plans a query that lands on that access path, the plan runs against a cold
buffer pool, and the measured page fetches / RSI calls stand next to the
formula's prediction.
"""

import pytest

from conftest import measure_cold
from repro import Database
from repro.optimizer.plan import IndexAccess, ScanNode, SegmentAccess, walk_plan
from repro.workloads import load_rows

ROWS = 5000
GROUPS = 50


@pytest.fixture(scope="module")
def db():
    # buffer deliberately smaller than the relation so the non-clustered
    # NCARD formula (not the buffer-fit alternative) governs.
    database = Database(buffer_pages=16)
    database.execute(
        "CREATE TABLE T2 (ID INTEGER, CL INTEGER, NC INTEGER, PAD VARCHAR(56))"
    )
    rows = [
        (i, i % GROUPS, (i // GROUPS) % GROUPS, "p" * 48) for i in range(ROWS)
    ]
    load_rows(database, "T2", rows)
    database.execute("CREATE UNIQUE INDEX T2_ID ON T2 (ID)")
    database.execute("CREATE INDEX T2_CL ON T2 (CL) CLUSTER")
    database.execute("CREATE INDEX T2_NC ON T2 (NC)")
    database.execute("UPDATE STATISTICS")
    return database


SITUATIONS = [
    ("unique index, equal pred", "SELECT PAD FROM T2 WHERE ID = 4321", "1+1+W"),
    (
        "clustered index, matching",
        "SELECT PAD FROM T2 WHERE CL = 7",
        "F(NINDX+TCARD)+W*RSICARD",
    ),
    (
        "non-clustered, matching",
        "SELECT PAD FROM T2 WHERE NC = 7",
        "F(NINDX+NCARD)+W*RSICARD",
    ),
    (
        "clustered index, non-matching",
        "SELECT CL FROM T2 ORDER BY CL",
        "NINDX+TCARD+W*RSICARD",
    ),
    (
        "segment scan",
        "SELECT PAD FROM T2",
        "TCARD/P+W*RSICARD",
    ),
]


def access_label(planned) -> str:
    for node in walk_plan(planned.root):
        if isinstance(node, ScanNode):
            return node.access.describe()
    return "?"


def test_table2_costs(db, report, benchmark):
    rows = []
    planned_list = [(label, db.plan(sql), formula) for label, sql, formula in SITUATIONS]

    def run_all():
        outcomes = []
        for __, planned, ___ in planned_list:
            outcomes.append(measure_cold(db, planned)[0])
        return outcomes

    snapshots = benchmark.pedantic(run_all, rounds=3, iterations=1)

    for (label, planned, formula), measured in zip(planned_list, snapshots):
        rows.append(
            [
                label,
                formula,
                planned.estimated_cost.pages,
                measured.page_fetches,
                planned.estimated_cost.rsi,
                measured.rsi_calls,
            ]
        )
    report.line("E2 / TABLE 2 — access path costs: predicted vs measured")
    report.line(
        f"T2: NCARD={ROWS} TCARD={db.catalog.relation_stats('T2').tcard} "
        f"buffer={db.storage.buffer.capacity} pages, W={db.w:.4f}"
    )
    report.table(
        [
            "situation",
            "formula",
            "pages pred",
            "pages meas",
            "RSI pred",
            "RSI meas",
        ],
        rows,
        widths=[30, 26, 12, 12, 12, 12],
    )
    report.line()
    report.line(
        "RSI predictions are exact; page predictions carry the paper's"
    )
    report.line(
        "approximations (B-tree descent depth, fractional pages)."
    )

    # Sanity: RSI calls must match exactly for every situation.
    for (label, planned, __), measured in zip(planned_list, snapshots):
        assert measured.rsi_calls == pytest.approx(
            planned.estimated_cost.rsi, rel=0.01
        ), label
    # Page fetches within a small factor for the non-sort paths.
    for (label, planned, __), measured in zip(planned_list[:3], snapshots[:3]):
        assert measured.page_fetches <= planned.estimated_cost.pages * 2 + 4, label
