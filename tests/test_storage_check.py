"""The invariant checker must *catch* corruption, not just bless health.

Each test seeds one specific defect into an otherwise healthy database and
asserts ``verify_storage`` reports it under the right rule — a checker
that returns ``[]`` on a broken store is worse than none.
"""

import pytest

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.rss.btree import TupleId, orderable_key


def healthy_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))")
    db.execute("CREATE UNIQUE INDEX TA ON T (A)")
    db.execute("CREATE INDEX TB ON T (B)")
    for i in range(20):
        db.execute(f"INSERT INTO T VALUES ({i}, 'V{i % 5}')")
    assert verify_storage(db) == []
    return db


def rules(violations):
    return {violation.rule for violation in violations}


def first_leaf(btree):
    return btree._leftmost_leaf_uncounted()


class TestIndexCorruption:
    def test_removed_leaf_entry_is_unindexed_tuple(self):
        db = healthy_db()
        leaf = first_leaf(db.storage.btree("TA"))
        del leaf.entries[0]
        assert "unindexed-tuple" in rules(verify_storage(db))

    def test_bogus_leaf_entry_is_dangling(self):
        db = healthy_db()
        leaf = first_leaf(db.storage.btree("TA"))
        key = (777,)
        leaf.entries.append((orderable_key(key), key, TupleId(999, 0)))
        found = rules(verify_storage(db))
        assert "dangling-entry" in found
        assert "index-count" in found  # entry_count no longer matches

    def test_out_of_order_keys_detected(self):
        db = healthy_db()
        leaf = first_leaf(db.storage.btree("TA"))
        leaf.entries.reverse()
        assert "index-disorder" in rules(verify_storage(db))

    def test_corrupted_entry_count_detected(self):
        db = healthy_db()
        db.storage.btree("TA")._entry_count += 5
        assert rules(verify_storage(db)) == {"index-count"}

    def test_duplicate_key_in_unique_index_detected(self):
        db = healthy_db()
        btree = db.storage.btree("TA")
        leaf = first_leaf(btree)
        okey, key, tid = leaf.entries[0]
        # point a second entry for the same unique key at a real tuple
        other_tid = leaf.entries[1][2]
        leaf.entries.insert(1, (okey, key, other_tid))
        btree._entry_count += 1
        assert "unique-violated" in rules(verify_storage(db))

    def test_missing_btree_detected(self):
        db = healthy_db()
        del db.storage._indexes["TA"]
        assert "index-missing" in rules(verify_storage(db))


class TestPageCorruption:
    def test_orphan_page_detected(self):
        db = healthy_db()
        db.storage.store.allocate_data_page()
        assert rules(verify_storage(db)) == {"orphan-page"}

    def test_segment_listing_missing_page_detected(self):
        db = healthy_db()
        segment = next(iter(db.storage._segments.values()))
        segment.page_ids.append(12345)
        assert "segment-page-missing" in rules(verify_storage(db))

    def test_duplicate_segment_page_detected(self):
        db = healthy_db()
        segment = next(iter(db.storage._segments.values()))
        segment.page_ids.append(segment.page_ids[0])
        assert "segment-page-duplicate" in rules(verify_storage(db))

    def test_garbage_record_bytes_detected(self):
        db = healthy_db()
        segment = next(iter(db.storage._segments.values()))
        page = db.storage.store.get(segment.page_ids[0])
        page.data[40:48] = b"\xff" * 8  # stomp inside the first record
        found = rules(verify_storage(db))
        assert found & {
            "undecodable-record",
            "unknown-relation",
            "dangling-entry",
            "unindexed-tuple",
        }


class TestDiskCorruption:
    def test_flipped_disk_bytes_detected(self, tmp_path):
        db = Database(path=str(tmp_path / "db.pages"))
        db.execute("CREATE TABLE T (A INTEGER)")
        for i in range(10):
            db.execute(f"INSERT INTO T VALUES ({i})")
        assert verify_storage(db) == []
        # corrupt a committed frame behind the live engine's back
        disk = db.storage.store.disk
        entry = next(iter(disk._entries.values()))
        with open(tmp_path / "db.pages", "r+b") as handle:
            handle.seek(entry.frame * 4096 + 8)
            handle.write(b"\xee" * 4)
        assert "disk-audit" in rules(verify_storage(db))
        db.close()

    def test_live_only_page_detected(self, tmp_path):
        db = Database(path=str(tmp_path / "db.pages"))
        db.execute("CREATE TABLE T (A INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        # a page materialized outside any transaction never hits disk
        db.storage.store.allocate_data_page()
        found = rules(verify_storage(db))
        assert "disk-missing-page" in found
        db.close()


class TestLogicalDump:
    def test_dump_is_order_insensitive(self):
        first = Database()
        second = Database()
        first.execute("CREATE TABLE T (A INTEGER)")
        second.execute("CREATE TABLE T (A INTEGER)")
        for i in range(6):
            first.execute(f"INSERT INTO T VALUES ({i})")
            second.execute(f"INSERT INTO T VALUES ({5 - i})")
        assert logical_dump(first) == logical_dump(second)

    def test_dump_does_not_touch_counters(self):
        db = healthy_db()
        before = db.storage.counters.snapshot()
        logical_dump(db)
        verify_storage(db)
        assert db.storage.counters.snapshot() == before
