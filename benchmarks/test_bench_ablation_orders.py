"""A2 — ablation: interesting-order bookkeeping ON vs OFF.

"By remembering 'interesting ordering' equivalence classes ... the
optimizer does more bookkeeping than most path selectors, but this
additional work in many cases results in avoiding the storage and sorting
of intermediate query results."

With the bookkeeping disabled, only the single cheapest solution per
relation subset survives and every ORDER BY / GROUP BY / merge input needs
an explicit sort.  The bench compares predicted cost, measured cost, and
the number of sorts in the final plan.
"""

from conftest import measure_cold, weighted
from repro.optimizer.plan import SortNode, walk_plan
from repro.workloads import build_empdept

QUERIES = [
    ("ORDER BY indexed col", "SELECT DNO FROM EMP ORDER BY DNO"),
    ("GROUP BY indexed col", "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO"),
    (
        "join + ORDER BY join col",
        "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
        "ORDER BY EMP.DNO",
    ),
]


def test_interesting_orders_ablation(report, benchmark):
    db = build_empdept(employees=2000, departments=50, jobs=5, seed=42)

    def plan_both():
        plans = {}
        for enabled in (True, False):
            db.use_interesting_orders = enabled
            for label, sql in QUERIES:
                plans[(enabled, label)] = db.plan(sql)
        return plans

    plans = benchmark(plan_both)
    db.use_interesting_orders = True

    rows = []
    for label, sql in QUERIES:
        for enabled in (True, False):
            planned = plans[(enabled, label)]
            sorts = sum(
                1 for node in walk_plan(planned.root) if isinstance(node, SortNode)
            )
            measured, __ = measure_cold(db, planned)
            rows.append(
                [
                    label,
                    "on" if enabled else "off",
                    sorts,
                    planned.estimated_total(),
                    weighted(measured, planned.w),
                ]
            )

    report.line("A2 — interesting orders: ON vs OFF")
    report.table(
        ["query", "orders", "sorts", "pred cost", "meas cost"],
        rows,
        widths=[26, 8, 7, 12, 12],
    )
    report.line()
    report.line(
        "With bookkeeping off, order-producing access paths are forgotten"
    )
    report.line("and explicit sorts appear; cost never improves.")

    for label, __ in QUERIES:
        on = plans[(True, label)]
        off = plans[(False, label)]
        assert on.estimated_total() <= off.estimated_total() + 1e-9
    # At least one query gains a sort when the bookkeeping is off.
    sort_deltas = []
    for label, __ in QUERIES:
        on_sorts = sum(
            1
            for node in walk_plan(plans[(True, label)].root)
            if isinstance(node, SortNode)
        )
        off_sorts = sum(
            1
            for node in walk_plan(plans[(False, label)].root)
            if isinstance(node, SortNode)
        )
        sort_deltas.append(off_sorts - on_sorts)
    assert max(sort_deltas) >= 1
