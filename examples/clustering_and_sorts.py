"""Clustering and external sorts: the physical side of Table 2 and §5.

Loads the same data twice — once heap-ordered with a non-clustered index,
once physically clustered on the index key — and compares the measured page
fetches of the same range query.  Then shrinks the buffer pool until an
ORDER BY is forced into a multi-pass external merge sort, showing the pass
arithmetic the cost model predicts.

Run with::

    python examples/clustering_and_sorts.py
"""

import random

from repro import Database
from repro.sorting import merge_passes, workspace_rows
from repro.workloads import load_rows

ROWS = 4000
GROUPS = 40


def build(clustered: bool, buffer_pages: int = 8) -> Database:
    db = Database(buffer_pages=buffer_pages)
    db.execute("CREATE TABLE T (G INTEGER, V INTEGER, PAD VARCHAR(56))")
    rng = random.Random(9)
    rows = [(rng.randrange(GROUPS), i, "x" * 48) for i in range(ROWS)]
    load_rows(db, "T", rows)
    cluster = " CLUSTER" if clustered else ""
    db.execute(f"CREATE INDEX T_G ON T (G){cluster}")
    db.execute("UPDATE STATISTICS")
    return db


def measure(db: Database, sql: str):
    planned = db.plan(sql)
    db.cold_cache()
    result = db.executor().execute(planned)
    return planned, db.counters.snapshot(), result


def main() -> None:
    query = "SELECT V FROM T WHERE G = 7"

    print("== clustered vs non-clustered index (same data, same query) ==")
    for clustered in (False, True):
        db = build(clustered)
        planned, measured, result = measure(db, query)
        kind = "clustered" if clustered else "non-clustered"
        print(
            f"{kind:>14}: predicted {planned.estimated_cost.pages:6.1f} pages, "
            f"measured {measured.page_fetches:4d} pages "
            f"({len(result.rows)} rows)"
        )
    print(
        "The clustered layout puts matching tuples on adjacent pages — the"
        "\nF*(NINDX+TCARD) vs F*(NINDX+NCARD) split of TABLE 2.\n"
    )

    print("== external sort passes vs buffer size ==")
    sort_sql = "SELECT V FROM T ORDER BY V"
    row_bytes = 80
    for buffer_pages in (64, 8, 3):
        db = build(clustered=False, buffer_pages=buffer_pages)
        planned, measured, result = measure(db, sort_sql)
        passes = merge_passes(ROWS, buffer_pages, row_bytes)
        print(
            f"buffer {buffer_pages:3d} pages: workspace "
            f"{workspace_rows(buffer_pages, row_bytes):5d} rows, "
            f"~{passes} merge pass(es); predicted "
            f"{planned.estimated_cost.pages:7.1f} pages, measured "
            f"{measured.page_fetches:5d}"
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
    print(
        "\nSmaller buffers mean more runs and more merge passes; the cost"
        "\nmodel and the engine agree on the arithmetic."
    )


if __name__ == "__main__":
    main()
