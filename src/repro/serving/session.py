"""Snapshot-isolated sessions over a :class:`~repro.database.Database`.

Each read statement pins the page-table version current at statement start
(:meth:`~repro.rss.storage.StorageEngine.pin_snapshot`) and executes
against a :class:`SnapshotStorage`: a storage-engine facade whose page
reads resolve *as of* the pinned version while a writer prepares the next
flip.  Writers mutate private clones (copy-on-write in
:meth:`~repro.rss.pagestore.PageStore.prepare_write`), so the committed
objects a snapshot resolves to are immutable and can be read without
locks.  Buffer accounting flows into the shared pool
(:meth:`~repro.rss.buffer.BufferPool.note_fetch`), which keeps a
fault-free single-session run's cost counters bit-identical to the
classic engine path in every exec mode.

Write statements are delegated to the database's group-commit pipeline;
the session is a thin convenience handle owned by exactly one client
thread.
"""

from __future__ import annotations

from typing import Callable

from ..engine.executor import Executor
from ..errors import StorageError
from ..rss.btree import BTree
from ..rss.buffer import BufferPool
from ..rss.scan import DEFAULT_BATCH_SIZE, IndexScan, SegmentScan
from ..rss.segment import Segment
from ..rss.storage import CommittedMeta, ScanSnapshot, StorageEngine
from ..sql import ast, parse_statement


class _SnapshotPages:
    """Page-store facade resolving every read as of a pinned version.

    Writes still reach the live store: sessions allocate and free only
    *temp* pages (sort runs, temporary lists), whose ids are fresh and
    therefore resolve to the live map unchanged.
    """

    def __init__(self, store, version: int):
        self._store = store
        self._version = version

    def get(self, page_id: int) -> object:
        return self._store.resolve(page_id, self._version)

    def allocate_data_page(self, temp: bool = False):
        return self._store.allocate_data_page(temp=temp)

    def free(self, page_id: int) -> None:
        self._store.free(page_id)

    def is_temp(self, page_id: int) -> bool:
        return self._store.is_temp(page_id)


# concurrency: statement-scoped
class _SnapshotBuffer:
    """Buffer facade: shared LRU/counter accounting, versioned contents."""

    def __init__(self, shared: BufferPool, pages: _SnapshotPages):
        self._shared = shared
        self._pages = pages
        self.capacity = shared.capacity

    def fetch(self, page_id: int) -> object:
        self._shared.note_fetch(page_id)
        return self._pages.get(page_id)

    def invalidate(self, page_id: int) -> None:
        self._shared.invalidate(page_id)

    def clear(self) -> None:
        self._shared.clear()


# concurrency: statement-scoped
class SnapshotStorage:
    """A storage-engine facade that serves reads as of one pinned version.

    Exposes exactly the surface the executor consumes — ``counters``,
    ``buffer``, ``store``, the three scan constructors, and
    ``_datatypes`` — with segments and B-trees rebuilt from the frozen
    :class:`~repro.rss.storage.CommittedMeta` of the pinned version.
    Statement-scoped: built per read statement, discarded with the pin.
    """

    def __init__(self, engine: StorageEngine, version: int, meta: CommittedMeta):
        self.version = version
        self.counters = engine.counters
        self.store = _SnapshotPages(engine.store, version)
        self.buffer = _SnapshotBuffer(engine.buffer, self.store)
        self._meta = meta
        self._segments: dict[str, Segment] = {}
        self._btrees: dict[str, BTree] = {}

    def segment(self, name: str) -> Segment:
        segment = self._segments.get(name)
        if segment is None:
            page_ids = self._meta.segments.get(name)
            if page_ids is None:
                raise StorageError(f"no such segment {name!r}")
            segment = Segment(name, self.store, self.buffer)
            segment.page_ids = list(page_ids)
            self._segments[name] = segment
        return segment

    def btree(self, index_name: str) -> BTree:
        tree = self._btrees.get(index_name)
        if tree is None:
            try:
                key_types, root, first_leaf, count = self._meta.indexes[
                    index_name
                ]
            except KeyError:
                raise StorageError(f"no such index {index_name!r}") from None
            tree = BTree.from_recovered(
                self.store, self.buffer, list(key_types), root, first_leaf, count
            )
            self._btrees[index_name] = tree
        return tree

    def segment_scan(
        self,
        table,
        sargs=None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        decode_cache: dict | None = None,
    ) -> SegmentScan:
        return SegmentScan(
            self.segment(table.segment_name),
            table.relation_id,
            self._datatypes(table),
            self.buffer,
            self.counters,
            sargs,
            matcher=matcher,
            decode_plan=decode_plan,
            batch_size=batch_size,
            decode_cache=decode_cache,
        )

    def scan_snapshot(self, table) -> ScanSnapshot:
        return ScanSnapshot(
            page_ids=tuple(self.segment(table.segment_name).page_ids),
            relation_id=table.relation_id,
            get_page=self.store.get,
        )

    def index_scan(
        self,
        index,
        table,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        sargs=None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan=None,
        batch_size: int = 1,
        decode_cache: dict | None = None,
    ) -> IndexScan:
        return IndexScan(
            self.btree(index.name),
            self.segment(table.segment_name),
            table.relation_id,
            self._datatypes(table),
            self.buffer,
            self.counters,
            low,
            high,
            low_inclusive,
            high_inclusive,
            sargs,
            matcher=matcher,
            decode_plan=decode_plan,
            batch_size=batch_size,
            decode_cache=decode_cache,
        )

    def _datatypes(self, table):
        return [column.datatype for column in table.columns]


# concurrency: driver-confined — a session is owned by one client thread
class Session:
    """One client's handle on a shared database.

    Reads are snapshot-isolated (each statement pins the version current
    at its start); writes queue through the shared group-commit pipeline.
    Obtain sessions from :meth:`repro.database.Database.session`; one
    session must not be shared between threads (open one per client).
    """

    def __init__(self, db, name: str | None = None):
        self._db = db
        self.name = name if name is not None else f"session-{id(self):x}"
        self._closed = False

    def execute(self, sql: str):
        """Parse and execute one SQL statement in this session."""
        return self.execute_statement(parse_statement(sql))

    def execute_statement(self, statement: ast.Statement):
        """Execute an already-parsed statement in this session."""
        if self._closed:
            raise StorageError(f"session {self.name!r} is closed")
        if isinstance(statement, ast.SelectQuery):
            return self._read(statement)
        return self._db._execute_write(statement)

    def query(self, sql: str):
        """Alias of :meth:`execute` for read statements."""
        return self.execute(sql)

    def _read(self, statement: ast.SelectQuery):
        from ..database import StatementResult

        db = self._db
        # Shared latch: the catalog (and the planner's statistics) stay
        # stable for the whole statement; DML proceeds concurrently — page
        # stability comes from the pin, not the latch.
        with db.ddl_latch.shared():
            version, meta = db.storage.pin_snapshot()
            try:
                planned = db.plan_query(statement)
                executor = Executor(
                    SnapshotStorage(db.storage, version, meta),
                    db.catalog,
                    db.subquery_cache_mode,
                    exec_mode=db.exec_mode,
                    workers=db.workers,
                )
                result = executor.execute(planned)
            finally:
                db.storage.unpin(version)
        return StatementResult(
            statement_type="SELECT",
            columns=result.columns,
            rows=result.rows,
            affected_rows=len(result.rows),
            snapshot_version=version,
        )

    def close(self) -> None:
        """Release the session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._db._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
