"""The cost model: ``COST = PAGE_FETCHES + W * RSI_CALLS``.

:class:`Cost` keeps the two components separate so EXPLAIN output and the
Table 2 validation benchmarks can compare pages and RSI calls against
measured counters independently; comparisons between plans always use the
weighted total.

:class:`CostModel` implements TABLE 2 (single-relation access paths) and the
Section 5 join, merge, and sort formulas, reading statistics from the
catalog and the effective buffer size from the storage engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import sorting
from ..catalog.catalog import Catalog
from ..catalog.schema import IndexDef, TableDef
from .selectivity import SMALL_NCARD, SMALL_TCARD

#: Default weighting factor between a page fetch and an RSI call.  One page
#: fetch is worth roughly thirty tuple retrievals; swept in ablation A1.
DEFAULT_W = 1.0 / 30.0

#: C-hash: CPU cost of hashing one tuple (a build insert or a probe
#: lookup), in RSI-call equivalents.  Charged per tuple on *both* sides of
#: a hash join, it is the analogue of the paper's per-tuple RSI weighting
#: and keeps hash slightly costlier than a merge of two already-ordered
#: inputs — hash wins only when merge needs sorts or nested loops rescan.
HASH_TUPLE_FACTOR = 1.0


@dataclass(frozen=True)
class Cost:
    """Predicted page fetches and RSI calls for (part of) a plan."""

    pages: float = 0.0
    rsi: float = 0.0

    def total(self, w: float) -> float:
        """Weighted total under the given W."""
        return self.pages + w * self.rsi

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.pages + other.pages, self.rsi + other.rsi)

    def scaled(self, factor: float) -> "Cost":
        """This cost multiplied by a factor (used for N probes)."""
        return Cost(self.pages * factor, self.rsi * factor)

    def __str__(self) -> str:
        return f"{self.pages:.2f} pages + W*{self.rsi:.1f} calls"


ZERO_COST = Cost()


class CostModel:
    """Evaluates the paper's cost formulas against catalog statistics.

    Statistics lookups are memoized: NCARD/TCARD/P come from a *single*
    catalog fetch per relation (and NINDX one per index), cached under
    :attr:`Catalog.version` so any DDL or ``UPDATE STATISTICS`` drops the
    cache.  The join search calls these accessors inside its innermost
    loops; without the memo every candidate plan would re-run the same
    dictionary lookups and default handling.
    """

    def __init__(
        self,
        catalog: Catalog,
        w: float = DEFAULT_W,
        buffer_pages: int = 64,
    ):
        self._catalog = catalog
        self.w = w
        self.buffer_pages = buffer_pages
        self._version = catalog.version
        #: table name -> (NCARD, TCARD, P), one relation_stats fetch each.
        self._table_cache: dict[str, tuple[float, float, float]] = {}
        self._nindx_cache: dict[str, float] = {}

    def total(self, cost: Cost) -> float:
        """Weighted total under the given W."""
        return cost.total(self.w)

    # -- statistics with the paper's "small relation" defaults ---------------------

    def _table_stats(self, table: TableDef) -> tuple[float, float, float]:
        version = self._catalog.version
        if version != self._version:
            self._version = version
            self._table_cache.clear()
            self._nindx_cache.clear()
        cached = self._table_cache.get(table.name)
        if cached is None:
            stats = self._catalog.relation_stats(table.name)
            if stats is None:
                cached = (float(SMALL_NCARD), float(SMALL_TCARD), 1.0)
            else:
                cached = (
                    float(stats.ncard),
                    float(stats.tcard),
                    stats.fraction if stats.fraction > 0 else 1.0,
                )
            self._table_cache[table.name] = cached
        return cached

    def ncard(self, table: TableDef) -> float:
        """NCARD(T), defaulting to the paper's small-relation guess."""
        return self._table_stats(table)[0]

    def tcard(self, table: TableDef) -> float:
        """TCARD(T), defaulting to one page when unknown."""
        return self._table_stats(table)[1]

    def fraction(self, table: TableDef) -> float:
        """P(T): fraction of the segment's pages holding T's tuples."""
        return self._table_stats(table)[2]

    def nindx(self, index: IndexDef) -> float:
        """NINDX(I): pages in the index."""
        version = self._catalog.version
        if version != self._version:
            self._version = version
            self._table_cache.clear()
            self._nindx_cache.clear()
        cached = self._nindx_cache.get(index.name)
        if cached is None:
            stats = self._catalog.index_stats(index.name)
            cached = float(stats.nindx) if stats is not None else 1.0
            self._nindx_cache[index.name] = cached
        return cached

    # -- TABLE 2: single relation access paths ---------------------------------------

    def segment_scan_cost(self, table: TableDef, rsicard: float) -> Cost:
        """Segment scan: TCARD/P + W * RSICARD."""
        return Cost(pages=self.tcard(table) / self.fraction(table), rsi=rsicard)

    def unique_index_cost(self) -> Cost:
        """Unique index matching an equal predicate: 1 + 1 + W."""
        return Cost(pages=2.0, rsi=1.0)

    def matching_index_cost(
        self,
        index: IndexDef,
        table: TableDef,
        matched_selectivity: float,
        rsicard: float,
        available_buffer: float | None = None,
    ) -> Cost:
        """Index matching one or more boolean factors.

        Clustered: F(preds) * (NINDX + TCARD) + W * RSICARD.
        Non-clustered: F(preds) * (NINDX + NCARD) + W * RSICARD, improving
        to the clustered formula when the pages involved fit in the buffer.
        ``available_buffer`` costs the path as a join inner, where only
        part of the pool (the rest pinned by the outer pipeline) remains.
        """
        nindx = self.nindx(index)
        fraction = max(0.0, min(1.0, matched_selectivity))
        if index.clustered or self._relation_fits_in_buffer(
            index, table, available_buffer
        ):
            # When the relation and index fit in the buffer, a data page is
            # never fetched twice, so the clustered formula bounds the cost
            # ("...if this number fits in the System R buffer").
            pages = fraction * (nindx + self.tcard(table))
        else:
            pages = fraction * (nindx + self.ncard(table))
        return Cost(pages=pages, rsi=rsicard)

    def non_matching_index_cost(
        self,
        index: IndexDef,
        table: TableDef,
        rsicard: float,
        available_buffer: float | None = None,
    ) -> Cost:
        """Index not matching any boolean factor (full index traversal).

        Clustered: NINDX + TCARD.  Non-clustered: NINDX + NCARD, improving
        to NINDX + TCARD when that fits in the buffer.
        """
        nindx = self.nindx(index)
        if index.clustered or self._relation_fits_in_buffer(
            index, table, available_buffer
        ):
            pages = nindx + self.tcard(table)
        else:
            pages = nindx + self.ncard(table)
        return Cost(pages=pages, rsi=rsicard)

    def _relation_fits_in_buffer(
        self,
        index: IndexDef,
        table: TableDef,
        available_buffer: float | None = None,
    ) -> bool:
        """The buffer-fit condition of Table 2's alternative formulas.

        The paper's "if this number fits in the System R buffer" is read as:
        the relation's data pages plus the index pages all fit in the
        effective buffer, in which case no page is ever fetched twice and
        the TCARD-based formula applies.  ``available_buffer`` restricts
        the condition to the pages a join inner can actually claim.
        """
        available = (
            self.buffer_pages if available_buffer is None else available_buffer
        )
        return self.tcard(table) + self.nindx(index) <= available

    def inner_available_buffer(self, outer_claim: float) -> float:
        """Buffer pages a join inner can claim beside an outer pipeline
        already holding ``outer_claim`` pages hot."""
        return max(1.0, self.buffer_pages - outer_claim)

    def relation_resident_pages(
        self, table: TableDef, index: IndexDef | None
    ) -> float:
        """All pages of a relation (plus one index) — its maximal footprint."""
        pages = self.tcard(table) / self.fraction(table)
        if index is not None:
            pages = self.tcard(table) + self.nindx(index)
        return pages

    # -- Section 5: joins and sorting ------------------------------------------------

    def nested_loop_cost(
        self,
        outer: Cost,
        outer_rows: float,
        inner_per_probe: Cost,
        inner_resident_pages: float | None = None,
    ) -> Cost:
        """C-nested-loop-join(path1, path2) = C-outer + N * C-inner.

        When the inner relation's whole footprint fits in the buffer share
        (``inner_resident_pages`` is passed), repeated probes re-hit the
        same resident pages: the inner's total page fetches are capped at
        that footprint.  RSI calls are CPU work and always scale with N.
        """
        probes = max(0.0, outer_rows)
        inner_pages = inner_per_probe.pages * probes
        if inner_resident_pages is not None:
            inner_pages = min(inner_pages, inner_resident_pages)
        return outer + Cost(pages=inner_pages, rsi=inner_per_probe.rsi * probes)

    def merge_cost(
        self,
        outer: Cost,
        inner_one_pass_pages: float,
        join_matches: float,
    ) -> Cost:
        """Merge-scan join after both inputs are ordered.

        The synchronized scans read the inner's pages once; every matching
        inner tuple crosses the RSI once per outer occurrence, which totals
        the join output cardinality.  Summed over outer tuples this is the
        paper's ``C-outer + N * C-inner``.
        """
        return outer + Cost(pages=inner_one_pass_pages, rsi=max(0.0, join_matches))

    def hash_join_cost(
        self,
        outer: Cost,
        outer_rows: float,
        inner: Cost,
        inner_rows: float,
        matches: float,
        outer_bytes: int,
        inner_bytes: int,
        available_buffer: float | None = None,
    ) -> tuple[Cost, int]:
        """Build/probe hash join in the style of TABLE 2's formulas.

        The inner (build) input is scanned once and hashed into memory; the
        outer (probe) input is scanned once and each tuple looks up its
        bucket.  Pages are the two input scans.  RSI calls are the two
        input scans' calls, plus ``HASH_TUPLE_FACTOR`` per tuple hashed on
        either side, plus one call per join match delivered (the same
        consumption term the merge formula charges).

        When the build side's footprint exceeds the available buffer the
        join grace-partitions: both inputs are hashed out to temporary
        lists (one write each) and read back once per partition pass,
        adding ``2 * (TEMPPAGES(inner) + TEMPPAGES(outer))`` page fetches
        and one RSI call per tuple written and re-read.  Returns the cost
        and the partition count (1 = fully in memory).
        """
        probe_rows = max(0.0, outer_rows)
        build_rows = max(0.0, inner_rows)
        build_pages = self.temp_pages(build_rows, inner_bytes)
        available = (
            self.buffer_pages if available_buffer is None else available_buffer
        )
        pages = outer.pages + inner.pages
        rsi = (
            outer.rsi
            + inner.rsi
            + HASH_TUPLE_FACTOR * (build_rows + probe_rows)
            + max(0.0, matches)
        )
        partitions = 1
        if build_pages > available:
            partitions = int(math.ceil(build_pages / max(1.0, available)))
            spill_pages = build_pages + self.temp_pages(probe_rows, outer_bytes)
            pages += 2.0 * spill_pages
            rsi += 2.0 * (build_rows + probe_rows)
        return Cost(pages=pages, rsi=rsi), partitions

    def sort_build_cost(self, source: Cost, rows: float, row_bytes: int) -> Cost:
        """C-sort(path): retrieve, sort ("may involve several passes"),
        and write the temporary list.

        Retrieval is ``source``.  Run generation writes TEMPPAGES pages with
        one RSI call per inserted tuple; every merge pass re-reads and
        re-writes the whole list (2 x TEMPPAGES pages, 2 x rows RSI calls).
        The pass count comes from the same workspace/fan-in arithmetic the
        engine's external sorter uses.
        """
        temppages = self.temp_pages(rows, row_bytes)
        passes = sorting.merge_passes(rows, self.buffer_pages, row_bytes)
        return source + Cost(
            pages=temppages * (1 + 2 * passes),
            rsi=max(0.0, rows) * (1 + 2 * passes),
        )

    def temp_scan_cost(self, rows: float, row_bytes: int) -> Cost:
        """One sequential pass over a temporary list."""
        return Cost(pages=self.temp_pages(rows, row_bytes), rsi=max(0.0, rows))

    @staticmethod
    def temp_pages(rows: float, row_bytes: int) -> float:
        """TEMPPAGES: pages needed to hold ``rows`` tuples of ``row_bytes``."""
        if rows <= 0:
            return 0.0
        return float(math.ceil(rows / sorting.temp_rows_per_page(row_bytes)))


def tuple_byte_width(table: TableDef) -> int:
    """Worst-case stored width of one tuple of ``table`` (for TEMPPAGES)."""
    from ..rss.tuples import max_record_size

    return max_record_size([column.datatype for column in table.columns])
