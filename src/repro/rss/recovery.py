"""Recovery: (de)serializing pages and rebuilding a store from disk.

The durable layer (:mod:`repro.rss.disk`) stores opaque checksummed
payloads; this module defines what those payloads *are*:

=========  ==============================================================
tag byte   payload
=========  ==============================================================
``P``      a slotted data page — its raw 4096 bytes
``L``      a B-tree leaf — pickled ``(entries, next_page_id)`` where
           entries are ``(key, (page_id, slot))`` pairs in key order
``I``      a B-tree internal node — pickled ``(separator okeys, children)``
``M``      the metadata page (page id 0): pickled catalog, segment page
           lists, and index descriptors — everything needed to rebuild
           the logical structures over the raw pages
=========  ==============================================================

:func:`recover` reads a committed backing file back into the in-memory
shapes the rest of the RSS operates on.  Recovery is deliberately dumb:
the page table names exactly the committed state, so "recovering" is
loading it — uncommitted shadow frames were never referenced and are
reclaimed by the disk layer's free-frame sweep.  This mirrors Section 3
of the paper, where shadow pages make every RSI call atomic against
failures without log replay for statement-level recovery.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import RecoveryError
from .btree import _InternalNode, _LeafNode, orderable_key
from .page import PAGE_SIZE, Page, TupleId

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog
    from .disk import DiskManager

#: Reserved page id of the metadata page (real pages start at 1).
META_PAGE_ID = 0

_TAG_PAGE = b"P"
_TAG_LEAF = b"L"
_TAG_INTERNAL = b"I"
_TAG_META = b"M"


# ---------------------------------------------------------------------------
# page serialization
# ---------------------------------------------------------------------------


def serialize_page(obj: object) -> bytes:
    """Encode any page-id-space object into a durable payload."""
    if isinstance(obj, Page):
        return _TAG_PAGE + bytes(obj.data)
    if isinstance(obj, _LeafNode):
        entries = [(key, tuple(tid)) for __, key, tid in obj.entries]
        return _TAG_LEAF + pickle.dumps(
            (entries, obj.next_page_id), protocol=pickle.HIGHEST_PROTOCOL
        )
    if isinstance(obj, _InternalNode):
        return _TAG_INTERNAL + pickle.dumps(
            (obj.keys, obj.children), protocol=pickle.HIGHEST_PROTOCOL
        )
    raise RecoveryError(f"cannot serialize page object {type(obj).__name__}")


def deserialize_page(page_id: int, payload: bytes) -> object:
    """Decode a durable payload back into its in-memory page object."""
    tag, body = payload[:1], payload[1:]
    if tag == _TAG_PAGE:
        if len(body) != PAGE_SIZE:
            raise RecoveryError(
                f"page {page_id}: data payload is {len(body)} bytes, "
                f"expected {PAGE_SIZE}"
            )
        return Page(page_id, bytearray(body))
    if tag == _TAG_LEAF:
        entries, next_page_id = pickle.loads(body)
        leaf = _LeafNode()
        leaf.page_id = page_id
        leaf.next_page_id = next_page_id
        leaf.entries = [
            (orderable_key(key), key, TupleId(*tid)) for key, tid in entries
        ]
        return leaf
    if tag == _TAG_INTERNAL:
        keys, children = pickle.loads(body)
        node = _InternalNode()
        node.page_id = page_id
        node.keys = list(keys)
        node.children = list(children)
        return node
    raise RecoveryError(f"page {page_id}: unknown payload tag {tag!r}")


# ---------------------------------------------------------------------------
# the metadata page
# ---------------------------------------------------------------------------


@dataclass
class IndexMeta:
    """Durable descriptor of one physical B-tree."""

    name: str
    root_page_id: int
    first_leaf_page_id: int
    entry_count: int
    key_types: list  # list[DataType]


@dataclass
class StoreMeta:
    """Everything on the metadata page besides raw page contents."""

    catalog: "Catalog | None" = None
    segments: list[tuple[str, list[int]]] = field(default_factory=list)
    indexes: list[IndexMeta] = field(default_factory=list)


def serialize_meta(meta: StoreMeta) -> bytes:
    """Encode the metadata page payload."""
    return _TAG_META + pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_meta(payload: bytes) -> StoreMeta:
    """Decode the metadata page payload."""
    if payload[:1] != _TAG_META:
        raise RecoveryError(
            f"metadata page has tag {payload[:1]!r}, expected {_TAG_META!r}"
        )
    meta = pickle.loads(payload[1:])
    if not isinstance(meta, StoreMeta):
        raise RecoveryError("metadata page does not hold a StoreMeta")
    return meta


# ---------------------------------------------------------------------------
# recovery proper
# ---------------------------------------------------------------------------


@dataclass
class RecoveredState:
    """A committed backing file, loaded back into memory."""

    pages: dict[int, object]
    next_page_id: int
    meta: StoreMeta


def recover(disk: "DiskManager") -> RecoveredState:
    """Load the committed state of a backing file.

    Every committed page is checksum-verified as it is read (torn pages
    raise :class:`~repro.errors.TornPageError` naming the page), and the
    metadata page is decoded into segment/index/catalog descriptors.
    """
    pages: dict[int, object] = {}
    meta: StoreMeta | None = None
    for page_id in disk.page_ids():
        payload = disk.read_page(page_id)
        if page_id == META_PAGE_ID:
            meta = deserialize_meta(payload)
        else:
            pages[page_id] = deserialize_page(page_id, payload)
    if meta is None:
        meta = StoreMeta()
    for __, page_ids in meta.segments:
        for page_id in page_ids:
            if page_id not in pages:
                raise RecoveryError(
                    f"segment references missing page {page_id}"
                )
    for index_meta in meta.indexes:
        if index_meta.root_page_id not in pages:
            raise RecoveryError(
                f"index {index_meta.name!r} references missing root page "
                f"{index_meta.root_page_id}"
            )
    return RecoveredState(pages, disk.next_page_id, meta)
