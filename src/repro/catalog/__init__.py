"""System catalog: schemas, indexes, and optimizer statistics.

This package is the System R catalog of the reproduction.  It records table
and index definitions (:mod:`repro.catalog.schema`), holds them in a
:class:`~repro.catalog.catalog.Catalog`, and maintains the statistics the
optimizer consumes — NCARD, TCARD, P, ICARD, NINDX and key ranges
(:mod:`repro.catalog.statistics`).
"""

from .schema import Column, IndexDef, TableDef
from .catalog import Catalog
from .statistics import IndexStats, RelationStats, collect_statistics

__all__ = [
    "Catalog",
    "Column",
    "IndexDef",
    "IndexStats",
    "RelationStats",
    "TableDef",
    "collect_statistics",
]
