"""Quickstart: create a database, load data, and watch the optimizer work.

Run with::

    python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # -- DDL: a table and two indexes ------------------------------------
    db.execute(
        "CREATE TABLE EMP (ENO INTEGER, NAME VARCHAR(20), DNO INTEGER, "
        "SAL FLOAT)"
    )
    db.execute("CREATE UNIQUE INDEX EMP_ENO ON EMP (ENO)")
    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)")

    # -- load some rows ----------------------------------------------------
    for eno in range(1, 501):
        name = f"EMP{eno}"
        dno = eno % 25
        sal = 100.0 + (eno * 37 % 900)
        db.execute(
            f"INSERT INTO EMP VALUES ({eno}, '{name}', {dno}, {sal})"
        )

    # Statistics drive the optimizer; System R updated them on demand.
    db.execute("UPDATE STATISTICS")

    # -- the optimizer picks access paths by cost ---------------------------
    for sql in (
        "SELECT NAME FROM EMP WHERE ENO = 123",  # unique index: 2 pages
        "SELECT NAME FROM EMP WHERE DNO = 7",  # matching index
        "SELECT NAME FROM EMP WHERE SAL > 900.0",  # segment scan + SARG
        "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO",  # index avoids a sort
    ):
        print("=" * 72)
        print(sql)
        print(db.explain(sql))
        db.cold_cache()
        result = db.execute(sql)
        counters = db.counters
        print(
            f"--> {len(result.rows)} row(s); measured "
            f"{counters.page_fetches} page fetches, "
            f"{counters.rsi_calls} RSI calls"
        )
        for row in result.rows[:3]:
            print("   ", row)

    # -- DML goes through the same access path selection ---------------------
    print("=" * 72)
    updated = db.execute("UPDATE EMP SET SAL = SAL * 1.1 WHERE DNO = 7")
    print(f"gave department 7 a raise: {updated.affected_rows} employees")
    deleted = db.execute("DELETE FROM EMP WHERE SAL < 150.0")
    print(f"deleted {deleted.affected_rows} underpaid employees")


if __name__ == "__main__":
    main()
