"""An interactive SQL shell for the miniature System R.

Run with ``python -m repro``.  Statements end with ``;``.  Meta-commands:

- ``\\q`` — quit
- ``\\d`` — list tables; ``\\d NAME`` — describe one table and its indexes
- ``\\timing`` — toggle per-statement timing and cost counters
- ``\\explain SELECT ...;`` or ``EXPLAIN SELECT ...;`` — show the plan
- ``\\i FILE`` — execute statements from a file
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, TextIO

from .database import Database, StatementResult
from .errors import ReproError


def format_table(columns: list[str], rows: list[tuple], limit: int = 100) -> str:
    """Align a result set as a text table (capped at ``limit`` rows)."""
    shown = rows[:limit]
    rendered = [
        ["NULL" if value is None else str(value) for value in row]
        for row in shown
    ]
    widths = [len(name) for name in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(name.ljust(width) for name, width in zip(columns, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    if len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more rows)")
    return "\n".join(lines)


class Shell:
    """Reads statements, executes them, prints results."""

    def __init__(
        self,
        db: Database | None = None,
        out: TextIO | None = None,
    ):
        self.db = db or Database()
        self.out = out or sys.stdout
        self.timing = False
        self._buffer: list[str] = []
        self._done = False

    # -- line handling ----------------------------------------------------------

    def handle_line(self, line: str) -> None:
        """Feed one input line to the shell."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            self._meta_command(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        joined = "\n".join(self._buffer)
        if joined.rstrip().endswith(";"):
            self._buffer = []
            self._run_statement(joined.rstrip().rstrip(";"))

    def run(self, lines: Iterable[str]) -> None:
        """Drive the shell from an iterable of input lines."""
        for line in lines:
            if self._done:
                break
            self.handle_line(line)

    @property
    def finished(self) -> bool:
        """True once a quit command has been processed."""
        return self._done

    # -- commands --------------------------------------------------------------------

    def _meta_command(self, command: str) -> None:
        parts = command.split()
        name = parts[0].lower()
        if name in ("\\q", "\\quit"):
            self._done = True
        elif name == "\\d":
            if len(parts) > 1:
                self._describe(parts[1])
            else:
                self._list_tables()
        elif name == "\\timing":
            self.timing = not self.timing
            self._print(f"timing {'on' if self.timing else 'off'}")
        elif name == "\\i":
            if len(parts) < 2:
                self._print("usage: \\i FILE")
                return
            try:
                with open(parts[1], encoding="utf-8") as handle:
                    self.run(handle)
            except OSError as error:
                self._print(f"error: {error}")
        elif name == "\\explain":
            rest = command[len("\\explain") :].strip().rstrip(";")
            self._explain(rest)
        else:
            self._print(f"unknown command {parts[0]!r}")

    def _run_statement(self, sql: str) -> None:
        upper = sql.lstrip().upper()
        if upper.startswith("EXPLAIN "):
            self._explain(sql.lstrip()[len("EXPLAIN ") :])
            return
        started = time.perf_counter()
        self.db.counters.reset()
        try:
            result = self.db.execute(sql)
        except ReproError as error:
            self._print(f"error: {error}")
            return
        elapsed = time.perf_counter() - started
        self._print_result(result)
        if self.timing:
            counters = self.db.counters
            self._print(
                f"time: {elapsed * 1000:.1f} ms; "
                f"{counters.page_fetches} page fetches, "
                f"{counters.rsi_calls} RSI calls"
            )

    def _explain(self, sql: str) -> None:
        try:
            self._print(self.db.explain(sql))
        except ReproError as error:
            self._print(f"error: {error}")

    def _print_result(self, result: StatementResult) -> None:
        if result.statement_type == "SELECT":
            self._print(format_table(result.columns, result.rows))
            self._print(f"({len(result.rows)} row(s))")
        elif result.statement_type in ("INSERT", "UPDATE", "DELETE"):
            self._print(
                f"{result.statement_type}: {result.affected_rows} row(s)"
            )
        else:
            self._print(f"{result.statement_type}: ok")

    def _list_tables(self) -> None:
        tables = self.db.catalog.tables()
        if not tables:
            self._print("(no tables)")
            return
        for table in sorted(tables, key=lambda t: t.name):
            stats = self.db.catalog.relation_stats(table.name)
            suffix = f"  [{stats}]" if stats else "  [no statistics]"
            self._print(f"{table.name}{suffix}")

    def _describe(self, name: str) -> None:
        try:
            table = self.db.catalog.table(name)
        except ReproError as error:
            self._print(f"error: {error}")
            return
        self._print(f"table {table.name}:")
        for column in table.columns:
            self._print(f"  {column}")
        for index in self.db.catalog.indexes_on(table.name):
            stats = self.db.catalog.index_stats(index.name)
            suffix = f"  [{stats}]" if stats else ""
            self._print(f"  {index!r}{suffix}")

    def _print(self, text: str) -> None:
        print(text, file=self.out)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``.

    ``python -m repro check [--plans|--costs|--lint|--storage|--fusion|
    --effects|--concurrency|--dead-code]`` runs the
    static verification suite, ``python -m repro bench
    [--quick|--compare]`` the optimizer micro-benchmarks, and
    ``python -m repro stress [--clients N|--fault SPEC|--fault-smoke]``
    the concurrent-serving stress harness instead of the shell.  ``--db PATH`` opens (or creates) a durable database backed by
    ``PATH``; any other arguments are read as SQL script files before the
    interactive prompt starts.  Fault plans in ``REPRO_FAULTS`` (e.g.
    ``pagetable.flip@1:crash``) are armed before the first statement.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "check":
        from .analysis.check import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "bench":
        from .perf.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "stress":
        from .serving.stress import main as stress_main

        return stress_main(argv[1:])
    db_path: str | None = None
    if "--db" in argv:
        position = argv.index("--db")
        if position + 1 >= len(argv):
            print("usage: --db PATH", file=sys.stderr)
            return 2
        db_path = argv[position + 1]
        del argv[position : position + 2]
    from .rss.faults import arm_from_env

    arm_from_env()
    shell = Shell(Database(path=db_path))
    print("repro — a miniature System R. \\q to quit; statements end with ;")
    for path in argv:
        with open(path, encoding="utf-8") as handle:
            shell.run(handle)
    try:
        while not shell.finished:
            prompt = "repro> " if not shell._buffer else "  ...> "
            try:
                line = input(prompt)
            except EOFError:
                break
            shell.handle_line(line)
    except KeyboardInterrupt:
        pass
    return 0
