"""RSI scans: the tuple interface onto stored relations, in batches.

Two scan types exist, exactly as in Section 3:

- :class:`SegmentScan` examines **all** non-empty pages of a segment (tuples
  of other relations sharing the segment still cost page touches) and
  returns tuples of the requested relation that satisfy the SARGs.
- :class:`IndexScan` walks B-tree leaf pages between optional start and stop
  keys, fetching each referenced data page to return tuples in key order.

Both expose two consumption styles:

- ``__iter__`` — the classic tuple-at-a-time RSI; each yielded tuple counts
  one RSI call.
- ``batches()`` — lists of matching ``(tid, values)`` pairs with **no**
  RSI accounting; the consumer counts one call per tuple it actually
  consumes (``CostCounters.count_rsi_call``), which keeps RSICARD
  semantics identical under partial consumption (a merge join that stops
  pulling early must not be charged for tuples it never saw).

Batching never changes the cost counters.  A segment scan's batches are
page-aligned: the page is fetched once before any of its tuples surface,
exactly as in tuple-at-a-time iteration, and decoding ahead within an
already-fetched page touches no counter.  An index scan fetches data pages
strictly per matching entry in index order with the default
``batch_size=1``, so interleaved consumer fetches (nested-loop inners,
correlated subqueries) hit and evict the buffer at identical points.
Larger index batch sizes group entry fetches ahead of consumer work — a
measurement-semantics trade-off documented on :class:`IndexScan` — so the
executor keeps the default.

Tuples rejected by SARGs are filtered below the interface and are *not*
counted — this is the CPU saving that makes RSICARD (not QCARD or NCARD)
the right multiplier for the W term of the cost formulas.  SARGs evaluate
through a matcher closure compiled once per scan open (see
:func:`repro.rss.sargs.compile_matcher`), and records decode through a
per-relation :class:`~repro.rss.tuples.DecodePlan`.

A consumer that re-opens the *same* scan many times against unchanged
pages — the fused nested-loop driver probing its inner relation once per
outer row — may pass a ``decode_cache`` dict shared across opens.  Pages
are still fetched through the buffer pool in exactly the same sequence
(``page_fetches`` and ``buffer_hits`` stay bit-identical), but record
extraction and decoding run once per page (or once per index entry)
instead of once per probe; only the per-open SARG matcher re-evaluates.
The cache must not outlive the statement that created it: any tuple
mutation invalidates it.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..datatypes import DataType
from .btree import BTree
from .buffer import BufferPool
from .counters import CostCounters
from .page import Page, TupleId
from .sargs import ConjunctiveSargs, Sargs, compile_matcher
from .segment import Segment
from .tuples import DecodePlan, record_relation_id

#: Matching tuples per yielded batch for page-aligned segment scans.
DEFAULT_BATCH_SIZE = 256

Batch = list[tuple[TupleId, tuple]]


def _resolve_matcher(
    sargs: "Sargs | ConjunctiveSargs | None",
    matcher: Callable[[tuple], bool] | None,
    datatypes: list[DataType],
) -> Callable[[tuple], bool] | None:
    if matcher is not None:
        return matcher
    return compile_matcher(sargs, datatypes)


def decode_page_rows(
    page_id: int,
    page: Page,
    relation_id: int,
    decode: Callable[[bytes], tuple],
) -> Batch:
    """Decode every record of one relation on an already-fetched page.

    Pure over the page's current records — no counters, no buffer —
    which is what lets parallel workers run it against a page-store
    snapshot while the driving thread replays the buffer-pool fetches.
    """
    return [
        (TupleId(page_id, slot), decode(record))
        for slot, record in page.records()
        if record_relation_id(record) == relation_id
    ]


class SegmentScan:
    """Scan every page of a segment for tuples of one relation."""

    def __init__(
        self,
        segment: Segment,
        relation_id: int,
        datatypes: list[DataType],
        buffer: BufferPool,
        counters: CostCounters,
        sargs: "Sargs | ConjunctiveSargs | None" = None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan: DecodePlan | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        decode_cache: dict[int, Batch] | None = None,
    ):
        self._segment = segment
        self._relation_id = relation_id
        self._buffer = buffer
        self._counters = counters
        self._matcher = _resolve_matcher(sargs, matcher, datatypes)
        self._plan = decode_plan or DecodePlan(datatypes)
        self._batch_size = batch_size
        # concurrency: statement-scoped — owned by the driving statement
        self._decode_cache = decode_cache
        #: The segment's page list frozen at open: the scan's view of the
        #: segment, immune to pages appended or freed while it runs, and
        #: copied once per open rather than once per ``batches()`` call.
        self._page_ids: tuple[int, ...] = tuple(segment.page_ids)

    def batches(self) -> Iterator[Batch]:
        """Page-aligned batches of matching tuples, with no RSI accounting."""
        decode = self._plan.decode
        matcher = self._matcher
        relation_id = self._relation_id
        batch_size = self._batch_size
        fetch = self._buffer.fetch
        cache = self._decode_cache
        if cache is not None:
            for page_id in self._page_ids:
                page = fetch(page_id)  # counter-faithful even on cache hits
                assert isinstance(page, Page)
                rows = cache.get(page_id)
                if rows is None:
                    rows = decode_page_rows(page_id, page, relation_id, decode)
                    cache[page_id] = rows
                batch: Batch = []
                for item in rows:
                    if matcher is not None and not matcher(item[1]):
                        continue
                    batch.append(item)
                    if len(batch) >= batch_size:
                        yield batch
                        batch = []
                if batch:
                    yield batch
            return
        for page_id in self._page_ids:
            page = fetch(page_id)
            assert isinstance(page, Page)
            batch = []
            for slot, record in page.records():
                if record_relation_id(record) != relation_id:
                    continue
                values = decode(record)
                if matcher is not None and not matcher(values):
                    continue
                batch.append((TupleId(page_id, slot), values))
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
            if batch:
                yield batch

    def __iter__(self) -> Iterator[tuple[TupleId, tuple]]:
        counters = self._counters
        for batch in self.batches():
            for item in batch:
                counters.rsi_calls += 1
                yield item


class IndexScan:
    """Scan a relation through a B-tree index, optionally over a key range.

    ``low``/``high`` are prefixes of the index key.  The scan touches index
    leaf pages once each; data pages are fetched per matching entry, so a
    non-clustered index may fetch the same data page repeatedly (buffer
    permitting) — the behaviour Table 2's NCARD-vs-TCARD split models.

    ``batch_size`` defaults to 1: every leaf-entry and data-page fetch then
    interleaves with consumer work exactly as tuple-at-a-time iteration
    did, so page fetches and buffer hits stay bit-identical.  Larger sizes
    prefetch entries ahead of the consumer, which can turn what would have
    been a post-eviction re-fetch into a buffer hit; only use them when the
    fidelity of the fetch trace does not matter.
    """

    def __init__(
        self,
        index: BTree,
        segment: Segment,
        relation_id: int,
        datatypes: list[DataType],
        buffer: BufferPool,
        counters: CostCounters,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        sargs: "Sargs | ConjunctiveSargs | None" = None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan: DecodePlan | None = None,
        batch_size: int = 1,
        decode_cache: dict[TupleId, tuple] | None = None,
    ):
        self._index = index
        self._segment = segment
        self._relation_id = relation_id
        self._buffer = buffer
        self._counters = counters
        self._low = low
        self._high = high
        self._low_inclusive = low_inclusive
        self._high_inclusive = high_inclusive
        self._matcher = _resolve_matcher(sargs, matcher, datatypes)
        self._plan = decode_plan or DecodePlan(datatypes)
        self._batch_size = batch_size
        # concurrency: statement-scoped — owned by the driving statement
        self._decode_cache = decode_cache

    def batches(self) -> Iterator[Batch]:
        """Batches of matching tuples in key order, with no RSI accounting."""
        decode = self._plan.decode
        matcher = self._matcher
        batch_size = self._batch_size
        fetch = self._buffer.fetch
        cache = self._decode_cache
        entries = self._index.scan_range(
            self._low, self._high, self._low_inclusive, self._high_inclusive
        )
        batch: Batch = []
        for __, tid in entries:
            page = fetch(tid.page_id)  # counter-faithful even on cache hits
            assert isinstance(page, Page)
            if cache is None:
                values = decode(page.read(tid.slot))
            else:
                values = cache.get(tid)
                if values is None:
                    values = decode(page.read(tid.slot))
                    cache[tid] = values
            if matcher is not None and not matcher(values):
                continue
            batch.append((tid, values))
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def __iter__(self) -> Iterator[tuple[TupleId, tuple]]:
        counters = self._counters
        for batch in self.batches():
            for item in batch:
                counters.rsi_calls += 1
                yield item
