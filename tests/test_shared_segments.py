"""Shared segments: relations interleaved on pages, and the P(T) statistic.

Section 3: "Segments may contain one or more relations ... Tuples from two
or more relations may occur on the same page"; a segment scan touches all
non-empty pages of the segment regardless of which relation it wants, which
is why TABLE 2's segment-scan formula is TCARD/P rather than TCARD.
"""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture
def shared(db):
    db.execute("CREATE TABLE A (X INTEGER, PAD VARCHAR(40)) IN SEGMENT SHARED")
    db.execute("CREATE TABLE B (Y INTEGER, PAD VARCHAR(40)) IN SEGMENT SHARED")
    # Loading one relation after the other gives each a contiguous run of
    # pages: half the segment holds no A tuples, so P(A) ~ 0.5.
    load_rows(db, "A", [(i, "a" * 30) for i in range(300)])
    load_rows(db, "B", [(i, "b" * 30) for i in range(300)])
    db.execute("UPDATE STATISTICS")
    return db


class TestSharedSegments:
    def test_parse_in_segment(self):
        from repro.sql import ast, parse_statement

        statement = parse_statement(
            "CREATE TABLE T (A INTEGER) IN SEGMENT SEG1"
        )
        assert isinstance(statement, ast.CreateTableStmt)
        assert statement.segment_name == "SEG1"

    def test_same_segment_object(self, shared):
        a = shared.catalog.table("A")
        b = shared.catalog.table("B")
        assert a.segment_name == b.segment_name == "SHARED"

    def test_fraction_below_one(self, shared):
        stats = shared.catalog.relation_stats("A")
        assert stats.fraction < 0.7
        assert stats.fraction > 0.3

    def test_results_are_separated(self, shared):
        assert shared.execute("SELECT COUNT(*) FROM A").scalar() == 300
        assert shared.execute("SELECT COUNT(*) FROM B").scalar() == 300
        pads = {row[0] for row in shared.execute("SELECT PAD FROM A").rows}
        assert pads == {"a" * 30}

    def test_segment_scan_touches_whole_segment(self, shared):
        """Measured fetches = all segment pages, matching TCARD/P."""
        planned = shared.plan("SELECT X FROM A")
        stats = shared.catalog.relation_stats("A")
        predicted = stats.tcard / stats.fraction
        shared.cold_cache()
        shared.executor().execute(planned)
        measured = shared.counters.page_fetches
        assert measured == pytest.approx(predicted, abs=1)
        assert planned.estimated_cost.pages == pytest.approx(predicted)
        # Strictly more than the relation's own pages.
        assert measured > stats.tcard

    def test_drop_one_relation_leaves_other(self, shared):
        shared.execute("DROP TABLE A")
        assert shared.execute("SELECT COUNT(*) FROM B").scalar() == 300

    def test_interleaved_load_gives_fraction_one(self, db):
        db.execute("CREATE TABLE C (X INTEGER, PAD VARCHAR(40)) IN SEGMENT MIX")
        db.execute("CREATE TABLE D (Y INTEGER, PAD VARCHAR(40)) IN SEGMENT MIX")
        table_c = db.catalog.table("C")
        table_d = db.catalog.table("D")
        for i in range(200):
            db.storage.insert(table_c, [], (i, "c" * 30))
            db.storage.insert(table_d, [], (i, "d" * 30))
        db.execute("UPDATE STATISTICS")
        # Every page holds tuples of both relations.
        assert db.catalog.relation_stats("C").fraction == pytest.approx(1.0)
