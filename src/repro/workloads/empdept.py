"""The paper's running example: EMP, DEPT, JOB (Figure 1).

Retrieve the name, salary, job title, and department name of employees who
are clerks and work for departments in Denver::

    SELECT NAME, TITLE, SAL, DNAME
    FROM EMP, DEPT, JOB
    WHERE TITLE='CLERK' AND LOC='DENVER'
      AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB

The schema carries the access paths the worked example assumes: indexes on
EMP.DNO and EMP.JOB, a unique index on DEPT.DNO, and an index on JOB.JOB.
"""

from __future__ import annotations

import random

from ..database import Database

FIG1_QUERY = (
    "SELECT NAME, TITLE, SAL, DNAME "
    "FROM EMP, DEPT, JOB "
    "WHERE TITLE='CLERK' AND LOC='DENVER' "
    "AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB"
)

JOB_TITLES = ["CLERK", "TYPIST", "SALES", "MECHANIC", "MANAGER"]
LOCATIONS = ["DENVER", "SAN JOSE", "NYC", "AUSTIN"]


def load_rows(db: Database, table_name: str, rows: list[tuple]) -> None:
    """Bulk-load validated tuples, bypassing per-row SQL parsing.

    Index maintenance and page placement behave exactly as they would for
    INSERT statements; only the parser round-trip is skipped.
    """
    table = db.catalog.table(table_name)
    indexes = db.catalog.indexes_on(table.name)
    with db.storage.suppress_counting():
        for row in rows:
            values = tuple(
                column.datatype.validate(value)
                for column, value in zip(table.columns, row)
            )
            db.storage.insert(table, indexes, values)


def build_empdept(
    employees: int = 500,
    departments: int = 20,
    jobs: int = 5,
    seed: int = 42,
    clustered_emp_dno: bool = False,
) -> Database:
    """Create and populate the Figure 1 database.

    ``clustered_emp_dno`` makes the EMP.DNO index clustered (the table is
    physically reorganized into DNO order), matching the scenarios where
    Table 2's clustered formulas apply.
    """
    rng = random.Random(seed)
    db = Database()
    db.execute(
        "CREATE TABLE EMP (ENO INTEGER, NAME VARCHAR(20), DNO INTEGER, "
        "JOB INTEGER, SAL FLOAT)"
    )
    db.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))")
    db.execute("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR(20))")

    job_count = min(jobs, len(JOB_TITLES))
    load_rows(
        db,
        "JOB",
        [(number + 1, JOB_TITLES[number]) for number in range(job_count)],
    )
    load_rows(
        db,
        "DEPT",
        [
            (number + 1, f"DEPT{number + 1}", rng.choice(LOCATIONS))
            for number in range(departments)
        ],
    )
    load_rows(
        db,
        "EMP",
        [
            (
                number + 1,
                f"EMP{number + 1}",
                rng.randint(1, departments),
                rng.randint(1, job_count),
                round(rng.uniform(100.0, 1000.0), 2),
            )
            for number in range(employees)
        ],
    )

    cluster = " CLUSTER" if clustered_emp_dno else ""
    db.execute(f"CREATE INDEX EMP_DNO ON EMP (DNO){cluster}")
    db.execute("CREATE INDEX EMP_JOB ON EMP (JOB)")
    db.execute("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")
    db.execute("CREATE INDEX JOB_JOB ON JOB (JOB)")
    db.execute("UPDATE STATISTICS")
    return db
