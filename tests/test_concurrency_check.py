"""The shared-mutable-state report and its baseline ratchet.

The fixture trees seed one interference point each and prove the report
classifies (or flags) it; the baseline tests walk the ratchet workflow
end to end (acknowledge, reclassify, go stale, go malformed).  The
real-tree tests pin the acceptance classifications: the cost counters are
mergeable, the decode cache is statement-scoped, the stat caches are
version-stamped, and the compiled-plan slot is covered by the committed
baseline.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.concurrency import (
    analyze_concurrency,
    default_baseline_path,
    render_baseline,
    render_report,
)
from repro.analysis.dataflow import ProgramGraph

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def analyze(tmp_path, baseline=None):
    graph = ProgramGraph.build(tmp_path)
    # default to a missing baseline file so the committed repo baseline
    # never leaks into fixture-tree assertions
    baseline_path = baseline if baseline is not None else tmp_path / "none.toml"
    return analyze_concurrency(graph, baseline_path=baseline_path)


def rules(report):
    return [v.rule for v in report.violations]


#: One module-level mutable mutated at runtime: the canonical seeded
#: violation the acceptance criteria require the check to fail on.
_UNGUARDED_GLOBAL = """
    CACHE = {}

    def memo(key, value):
        CACHE[key] = value
"""


# ---------------------------------------------------------------------------
# classification of seeded fixtures
# ---------------------------------------------------------------------------


def test_seeded_unguarded_global_fails(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    report = analyze(tmp_path)
    finding = report.finding("m.py::CACHE")
    assert finding is not None
    assert finding.classification == "UNGUARDED"
    assert finding.kind == "module-global"
    assert rules(report) == ["unguarded-shared-state"]
    assert "m.py::CACHE" in report.violations[0].where


def test_unmutated_module_container_is_immutable_after_init(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        LOOKUP = {"a": 1}

        def get(key):
            return LOOKUP[key]
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::LOOKUP")
    assert finding is not None
    assert finding.classification == "immutable-after-init"
    assert report.violations == []


def test_class_attr_mutated_outside_init_is_unguarded(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Holder:
            def __init__(self):
                self._rows = []

            def push(self, x):
                self._rows.append(x)
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::Holder._rows")
    assert finding is not None
    assert finding.classification == "UNGUARDED"
    assert "unguarded-shared-state" in rules(report)


def test_init_only_class_attr_is_not_reported(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Frozen:
            def __init__(self):
                self._table = {}

            def get(self, key):
                return self._table.get(key)
        """,
    )
    report = analyze(tmp_path)
    assert report.finding("m.py::Frozen._table") is None
    assert report.violations == []


def test_version_stamped_attr_is_auto_detected(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Catalog:
            def __init__(self):
                self._version = 0
                self._tables = {}

            def create(self, name):
                self._version += 1
                self._tables[name] = name
        """,
    )
    report = analyze(tmp_path)
    tables = report.finding("m.py::Catalog._tables")
    version = report.finding("m.py::Catalog._version")
    assert tables is not None and tables.classification == "version-stamped"
    assert version is not None and version.classification == "version-stamped"
    assert report.violations == []


def test_annotation_classifies_at_the_declaration(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        SCRATCH = []  # concurrency: statement-scoped

        def stash(x):
            SCRATCH.append(x)
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::SCRATCH")
    assert finding is not None
    assert finding.classification == "statement-scoped"
    assert finding.source == "annotation"
    assert report.violations == []


def test_class_level_annotation_covers_every_attr(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Runtime:  # concurrency: statement-scoped
            def __init__(self):
                self.rows = []
                self.depth = 0

            def push(self, x):
                self.rows.append(x)
                self.depth += 1
        """,
    )
    report = analyze(tmp_path)
    for attr in ("rows", "depth"):
        finding = report.finding(f"m.py::Runtime.{attr}")
        assert finding is not None
        assert finding.classification == "statement-scoped"
        assert finding.source == "annotation"
    assert report.violations == []


def test_parallel_path_state_gets_the_parallel_rule(tmp_path):
    # a global mutated from engine/fuse.py is on the future parallel path
    write(
        tmp_path,
        "engine/fuse.py",
        """
        BATCHES = []

        def drive(batch):
            BATCHES.append(batch)
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("engine/fuse.py::BATCHES")
    assert finding is not None
    assert finding.parallel
    assert rules(report) == ["unguarded-parallel-state"]


# ---------------------------------------------------------------------------
# counter audit
# ---------------------------------------------------------------------------


def test_counter_increment_in_rss_is_mergeable(tmp_path):
    write(
        tmp_path,
        "rss/counters.py",
        """
        class CostCounters:
            page_fetches: int = 0
        """,
    )
    write(
        tmp_path,
        "rss/buffer.py",
        """
        def fetch(counters):
            counters.page_fetches += 1
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("rss/counters.py::CostCounters.page_fetches")
    assert finding is not None
    assert finding.classification == "mergeable-counter"
    assert report.violations == []


def test_counter_mutation_outside_rss_is_confinement_violation(tmp_path):
    write(
        tmp_path,
        "engine/executor.py",
        """
        def sneak(counters):
            counters.page_fetches += 1
        """,
    )
    report = analyze(tmp_path)
    assert "counter-confinement" in rules(report)


def test_counter_overwrite_outside_counters_module_not_mergeable(tmp_path):
    # regression for the real finding this PR fixed: suppress_counting in
    # rss/storage.py restored counters by absolute assignment; absolute
    # writes do not merge across workers, so restore() moved into
    # CostCounters itself (rule counter-not-mergeable)
    write(
        tmp_path,
        "rss/storage.py",
        """
        def restore(counters, saved):
            counters.rsi_calls = saved
        """,
    )
    report = analyze(tmp_path)
    assert "counter-not-mergeable" in rules(report)
    finding = report.finding("rss/counters.py::CostCounters.rsi_calls")
    assert finding is not None
    assert finding.classification == "UNGUARDED"


def test_non_additive_counter_operator_not_mergeable(tmp_path):
    write(
        tmp_path,
        "rss/scan.py",
        """
        def halve(counters):
            counters.buffer_hits //= 2
        """,
    )
    report = analyze(tmp_path)
    assert "counter-not-mergeable" in rules(report)


# ---------------------------------------------------------------------------
# the baseline ratchet
# ---------------------------------------------------------------------------


def test_baseline_acknowledges_unguarded_state(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::CACHE"]\n'
        'classification = "UNGUARDED"\n'
        'reason = "single-threaded today; reviewed"\n',
        encoding="utf-8",
    )
    report = analyze(tmp_path, baseline=baseline)
    assert report.violations == []
    finding = report.finding("m.py::CACHE")
    assert finding is not None
    assert finding.source == "baseline"
    assert finding.reason == "single-threaded today; reviewed"


def test_baseline_reclassifies_unguarded_state(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::CACHE"]\n'
        'classification = "statement-scoped"\n'
        'reason = "rebuilt per statement by the driver"\n',
        encoding="utf-8",
    )
    report = analyze(tmp_path, baseline=baseline)
    assert report.violations == []
    finding = report.finding("m.py::CACHE")
    assert finding is not None
    assert finding.classification == "statement-scoped"
    assert finding.source == "baseline"


def test_stale_baseline_entry_is_a_violation(tmp_path):
    write(tmp_path, "m.py", "def nop():\n    return 1\n")
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::GONE"]\n'
        'classification = "UNGUARDED"\n'
        'reason = "this state was deleted"\n',
        encoding="utf-8",
    )
    report = analyze(tmp_path, baseline=baseline)
    assert rules(report) == ["stale-baseline"]


def test_baseline_shadowing_an_annotation_is_stale(tmp_path):
    # once the code classifies itself, the baseline entry must go
    write(
        tmp_path,
        "m.py",
        """
        SCRATCH = []  # concurrency: statement-scoped

        def stash(x):
            SCRATCH.append(x)
        """,
    )
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::SCRATCH"]\n'
        'classification = "UNGUARDED"\n'
        'reason = "obsolete"\n',
        encoding="utf-8",
    )
    report = analyze(tmp_path, baseline=baseline)
    assert rules(report) == ["stale-baseline"]


def test_malformed_baseline_entries_are_violations(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::CACHE"]\n'
        'classification = "thread-local"\n'  # not a classification
        'reason = "nope"\n',
        encoding="utf-8",
    )
    report = analyze(tmp_path, baseline=baseline)
    assert "baseline-malformed" in rules(report)
    # the entry is ignored, so the finding still fails the check
    assert "unguarded-shared-state" in rules(report)


def test_baseline_entry_requires_a_reason(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::CACHE"]\nclassification = "UNGUARDED"\n', encoding="utf-8"
    )
    report = analyze(tmp_path, baseline=baseline)
    assert "baseline-malformed" in rules(report)


def test_render_baseline_drafts_fixme_entries(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    report = analyze(tmp_path)
    draft = render_baseline(report.findings)
    assert '["m.py::CACHE"]' in draft
    assert "FIXME" in draft
    # drafted entries keep UNGUARDED: the check stays red until reviewed
    assert 'classification = "UNGUARDED"' in draft


def test_render_report_groups_by_classification(tmp_path):
    write(tmp_path, "m.py", _UNGUARDED_GLOBAL)
    write(tmp_path, "n.py", 'LOOKUP = {"a": 1}\n\ndef get(k):\n    return LOOKUP[k]\n')
    lines = render_report(analyze(tmp_path))
    text = "\n".join(lines)
    assert "UNGUARDED (1):" in text
    assert "immutable-after-init (1):" in text
    assert "mutated at m.py:" in text


# ---------------------------------------------------------------------------
# the real tree: the acceptance classifications
# ---------------------------------------------------------------------------


def real_report():
    graph = ProgramGraph.build(PACKAGE_ROOT)
    return analyze_concurrency(graph, baseline_path=default_baseline_path())


def test_real_tree_is_clean_under_committed_baseline():
    report = real_report()
    assert report.violations == []


def test_real_tree_cost_counters_are_mergeable():
    report = real_report()
    for field in ("page_fetches", "rsi_calls", "buffer_hits"):
        finding = report.finding(f"rss/counters.py::CostCounters.{field}")
        assert finding is not None
        assert finding.classification == "mergeable-counter"
        assert finding.kind == "counter-field"


def test_real_tree_decode_cache_is_statement_scoped():
    report = real_report()
    for scan in ("SegmentScan", "IndexScan"):
        finding = report.finding(f"rss/scan.py::{scan}._decode_cache")
        assert finding is not None
        assert finding.classification == "statement-scoped"
        assert finding.source == "annotation"


def test_real_tree_stat_caches_are_version_stamped():
    report = real_report()
    finding = report.finding(
        "optimizer/selectivity.py::SelectivityEstimator._qcard_cache"
    )
    assert finding is not None
    assert finding.classification == "version-stamped"
    assert finding.source == "auto"


def test_real_tree_compiled_plan_slot_is_classified():
    report = real_report()
    finding = report.finding("optimizer/plan.py::PlanNode.compiled")
    assert finding is not None
    assert finding.classification == "statement-scoped"
    assert finding.source == "baseline"


def test_real_tree_evaluator_keeps_no_module_level_cache():
    # regression for the unguarded-parallel-state finding this PR fixed:
    # engine/evaluator.py memoized LIKE patterns in a module-level dict
    # mutated from the compiled closures (a parallel path); like_regex is
    # pure now, and the module's only shared state is the per-statement
    # EvalEnv
    report = real_report()
    module_findings = [
        f for f in report.findings if f.key.startswith("engine/evaluator.py::")
    ]
    assert [f.key for f in module_findings] == [
        "engine/evaluator.py::EvalEnv.row"
    ]
    assert module_findings[0].classification == "statement-scoped"


def test_real_tree_no_unacknowledged_parallel_state():
    # anything on the fused-driver / compiled-closure / batches() paths is
    # either guarded or carries a reviewed baseline reason
    report = real_report()
    for finding in report.findings:
        if finding.parallel and finding.classification == "UNGUARDED":
            assert finding.source == "baseline"
            assert finding.reason


# ---------------------------------------------------------------------------
# lock-guarded detection
# ---------------------------------------------------------------------------


def test_lock_guarded_attr_is_auto_detected(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        import threading

        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def push(self, x):
                with self._lock:
                    self._items.append(x)

            def drain(self):
                with self._lock:
                    claimed = list(self._items)
                    self._items.clear()
                return claimed
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::Queue._items")
    assert finding is not None
    assert finding.classification == "lock-guarded"
    assert finding.source == "auto"
    assert report.violations == []


def test_one_mutation_outside_the_lock_defeats_lock_guarded(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        import threading

        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def push(self, x):
                with self._lock:
                    self._items.append(x)

            def sneak(self, x):
                self._items.append(x)
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::Queue._items")
    assert finding is not None
    assert finding.classification == "UNGUARDED"
    assert "unguarded-shared-state" in rules(report)


def test_with_block_without_a_lockish_name_does_not_count(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Writer:
            def __init__(self):
                self._rows = []

            def push(self, x, path):
                with open(path) as handle:
                    self._rows.append(handle.read() + x)
        """,
    )
    report = analyze(tmp_path)
    finding = report.finding("m.py::Writer._rows")
    assert finding is not None
    assert finding.classification == "UNGUARDED"


def test_real_tree_serving_state_is_lock_guarded():
    report = real_report()
    for key in (
        "serving/coordinator.py::GroupCommitCoordinator._queue",
        "serving/coordinator.py::_Ticket.pending",
        "rss/pagestore.py::PageStore._pages",
        "rss/pagestore.py::PageStore.version",
        "rss/buffer.py::BufferPool._counters",
        "rss/storage.py::StorageEngine._committed_meta",
    ):
        finding = report.finding(key)
        assert finding is not None, key
        assert finding.classification == "lock-guarded", key
