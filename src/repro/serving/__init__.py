"""The concurrent serving layer: sessions, snapshot reads, group commit.

Shadow paging (PR 4) already produces an immutable page-table version per
commit; this package exploits it.  A :class:`~repro.serving.session.Session`
pins the committed version current at each read statement's start and scans
a frozen view of it while writers prepare the next flip; writers serialize
through a single commit lock (bounded exponential backoff, typed
:class:`~repro.errors.DatabaseBusyError` on timeout) and the
:class:`~repro.serving.coordinator.GroupCommitCoordinator` batches
concurrently queued statements into one fsync+rename page-table flip.
:mod:`repro.serving.stress` drives hundreds of concurrent clients against
one durable database and checks the snapshot-isolation invariants, under
the fault-injection matrix when asked.
"""

from .coordinator import GroupCommitCoordinator
from .locks import CommitLock, RWLatch
from .session import Session, SnapshotStorage

__all__ = [
    "CommitLock",
    "GroupCommitCoordinator",
    "RWLatch",
    "Session",
    "SnapshotStorage",
]
