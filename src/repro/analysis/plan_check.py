"""Structural verification of optimizer plan trees.

The checker walks any :class:`~repro.optimizer.plan.PlanNode` tree and
asserts the invariants a correct access path selection must satisfy:

- every :class:`ScanNode` references a table that exists in the catalog,
  and every :class:`IndexAccess` an index of that table (object identity,
  so stale definitions from dropped relations are caught);
- the join tree accesses every FROM-list relation exactly once, and join
  column bindings resolve against the side that produces them;
- :class:`SortNode` keys are produced by the child subtree, and the node's
  claimed output order is exactly its key list;
- both :class:`MergeJoinNode` inputs carry the required interesting order
  (modulo order equivalence classes from :mod:`repro.optimizer.orders`);
- a :class:`HashJoinNode` builds from a single-relation scan, binds every
  key pair to the side that produces it, and claims no output order;
- the predicates applied across the tree (scan SARGs, probe SARGs, merge
  columns, join residuals, filter predicates) *partition* the bound WHERE
  clause's boolean factors — none dropped, none applied twice;
- claimed output orders never overstate what the children produce.

``check_statement`` verifies a whole :class:`PlannedStatement` including
its nested blocks; ``verify_planned`` additionally runs the cost audit and
raises :class:`PlanCheckError`, and is what the ``REPRO_CHECK=1``
environment flag calls on every ``plan_query()`` result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..errors import ReproError
from ..optimizer.bound import BoundColumn, BoundQueryBlock
from ..optimizer.orders import InterestingOrders
from ..optimizer.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SegmentAccess,
    SortNode,
)
from ..optimizer.planner import PlannedStatement
from ..optimizer.predicates import (
    BooleanFactor,
    JoinPredicate,
    SargExpression,
)
from ..sql import ast


class PlanCheckError(ReproError):
    """A plan (or its costing) violated a checked invariant."""

    def __init__(self, violations: list["Violation"]):
        self.violations = list(violations)
        shown = "; ".join(str(v) for v in self.violations[:8])
        if len(self.violations) > 8:
            shown += f"; ... ({len(self.violations) - 8} more)"
        super().__init__(f"plan check failed: {shown}")


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a checker."""

    rule: str  # short stable identifier, e.g. "dangling-index"
    where: str  # node label or file location
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.where}: {self.message}"


# ---------------------------------------------------------------------------
# predicate application sites
# ---------------------------------------------------------------------------


@dataclass
class _Site:
    """One place in the plan tree where a predicate is enforced."""

    kind: str  # "sarg" | "residual" | "filter" | "merge" | "hash"
    where: str
    sarg: SargExpression | None = None
    expr: ast.Expr | None = None
    merge_columns: frozenset[BoundColumn] | None = None


def _is_probe_for(sarg: SargExpression, join: JoinPredicate) -> bool:
    """Whether a scan SARG is the probe form of a join predicate."""
    if len(sarg.groups) != 1 or len(sarg.groups[0]) != 1:
        return False
    pred = sarg.groups[0][0]
    if pred.column == join.left:
        return pred.value == join.right and pred.op is join.op
    if pred.column == join.right:
        return pred.value == join.left and pred.op is join.op.flipped()
    return False


def _factor_matches_site(factor: BooleanFactor, site: _Site) -> bool:
    if site.kind == "sarg":
        assert site.sarg is not None
        if factor.sarg is not None and site.sarg is factor.sarg:
            return True
        return factor.join is not None and _is_probe_for(site.sarg, factor.join)
    if site.kind in ("merge", "hash"):
        # A hash-join key pair enforces an equijoin factor exactly the way
        # a merge's column pair does: by the unordered column set.
        assert site.merge_columns is not None
        return (
            factor.join is not None
            and factor.join.is_equijoin
            and frozenset((factor.join.left, factor.join.right))
            == site.merge_columns
        )
    # residual / filter: predicate expressions pass through by reference.
    return site.expr is factor.expr


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


class _Checker:
    """Single-use checker for one plan tree of one bound block."""

    def __init__(
        self,
        catalog: Catalog,
        block: BoundQueryBlock | None,
        factors: list[BooleanFactor] | None,
    ):
        self._catalog = catalog
        self._block = block
        self._orders: InterestingOrders | None = None
        if block is not None and factors is not None:
            self._orders = InterestingOrders(block, factors)
        self._factors = factors
        self._scans: dict[str, ScanNode] = {}
        self._sites: list[_Site] = []
        self.violations: list[Violation] = []

    # -- entry point ------------------------------------------------------------

    def check(self, root: PlanNode) -> None:
        """Walk the tree, then verify block-level invariants."""
        produced = self._walk(root)
        if self._block is not None:
            wanted = set(self._block.aliases)
            if set(produced) != wanted:
                self._flag(
                    "missing-relation",
                    root,
                    f"plan accesses {sorted(produced)} but the block's FROM "
                    f"list is {sorted(wanted)}",
                )
        if self._factors is not None:
            self._check_partition(self._factors)

    # -- node dispatch (exhaustive over PlanNode subclasses) --------------------

    def _walk(
        self, node: PlanNode, probe_aliases: frozenset[str] = frozenset()
    ) -> frozenset[str]:
        """Check one subtree; returns the aliases it produces rows for."""
        if isinstance(node, ScanNode):
            return self._check_scan(node, probe_aliases)
        if isinstance(node, NestedLoopJoinNode):
            return self._check_nested_loop(node)
        if isinstance(node, MergeJoinNode):
            return self._check_merge_join(node)
        if isinstance(node, HashJoinNode):
            return self._check_hash_join(node)
        if isinstance(node, SortNode):
            return self._check_sort(node)
        if isinstance(node, FilterNode):
            return self._check_filter(node)
        if isinstance(node, AggregateNode):
            return self._check_aggregate(node)
        if isinstance(node, ProjectNode):
            return self._check_project(node)
        if isinstance(node, DistinctNode):
            return self._check_distinct(node)
        self._flag(
            "unknown-node",
            node,
            f"no checker for plan node type {type(node).__name__}",
        )
        return frozenset()

    # -- scans ------------------------------------------------------------------

    def _check_scan(
        self, node: ScanNode, probe_aliases: frozenset[str]
    ) -> frozenset[str]:
        if node.alias in self._scans:
            self._flag(
                "duplicate-alias",
                node,
                f"alias {node.alias!r} scanned more than once",
            )
        self._scans[node.alias] = node

        if not self._catalog.has_table(node.table.name):
            self._flag(
                "dangling-table",
                node,
                f"table {node.table.name!r} does not exist in the catalog",
            )
        elif self._catalog.table(node.table.name) is not node.table:
            self._flag(
                "stale-table",
                node,
                f"table {node.table.name!r} is not the catalog's definition",
            )
        if self._block is not None:
            try:
                bound = self._block.alias_table(node.alias)
            except KeyError:
                bound = None
                self._flag(
                    "unknown-alias",
                    node,
                    f"alias {node.alias!r} is not in the block's FROM list",
                )
            if bound is not None and bound is not node.table:
                self._flag(
                    "alias-table-mismatch",
                    node,
                    f"alias {node.alias!r} is bound to {bound.name!r}, "
                    f"not {node.table.name!r}",
                )

        if isinstance(node.access, IndexAccess):
            self._check_index_access(node)
        elif isinstance(node.access, SegmentAccess):
            if node.order_columns:
                self._flag(
                    "phantom-order",
                    node,
                    "segment scans are unordered but the node claims "
                    f"{node.order_columns}",
                )
        else:
            self._flag(
                "unknown-access",
                node,
                f"unrecognized access path {type(node.access).__name__}",
            )

        for sarg in node.sargs:
            self._check_sarg(node, sarg, probe_aliases)
            self._sites.append(_Site("sarg", node.label(), sarg=sarg))
        for expr in node.residual:
            for column in self._local_columns(expr):
                if column.alias != node.alias:
                    self._flag(
                        "unbound-residual",
                        node,
                        f"residual {expr} references {column} which this "
                        "scan does not produce",
                    )
            self._sites.append(_Site("residual", node.label(), expr=expr))
        return frozenset({node.alias})

    def _check_index_access(self, node: ScanNode) -> None:
        access = node.access
        assert isinstance(access, IndexAccess)
        index = access.index
        catalog_indexes = self._catalog.indexes_on(node.table.name)
        if not any(existing is index for existing in catalog_indexes):
            self._flag(
                "dangling-index",
                node,
                f"index {index.name!r} is not an index of "
                f"{node.table.name!r} in the catalog",
            )
        if index.table_name != node.table.name:
            self._flag(
                "index-table-mismatch",
                node,
                f"index {index.name!r} belongs to {index.table_name!r}, "
                f"not {node.table.name!r}",
            )
        for position in index.key_positions:
            if not 0 <= position < len(node.table.columns):
                self._flag(
                    "bad-key-position",
                    node,
                    f"index {index.name!r} key position {position} is out of "
                    f"range for {node.table.name!r}",
                )
        expected_order = tuple(
            (node.alias, position) for position in index.key_positions
        )
        if node.order_columns[: len(node.order_columns)] != expected_order[
            : len(node.order_columns)
        ]:
            self._flag(
                "phantom-order",
                node,
                f"claimed order {node.order_columns} is not a prefix of the "
                f"index key order {expected_order}",
            )
        if len(access.low) > len(index.key_positions) or len(access.high) > len(
            index.key_positions
        ):
            self._flag(
                "bad-key-bounds",
                node,
                f"key bounds are longer than the {len(index.key_positions)}"
                f"-column key of {index.name!r}",
            )

    def _check_sarg(
        self,
        node: ScanNode,
        sarg: SargExpression,
        probe_aliases: frozenset[str],
    ) -> None:
        for group in sarg.groups:
            for pred in group:
                if pred.column.alias != node.alias:
                    self._flag(
                        "unbound-sarg",
                        node,
                        f"SARG column {pred.column} does not belong to "
                        f"alias {node.alias!r}",
                    )
                else:
                    self._check_column_binding(node, pred.column)
                for column in self._local_columns(pred.value):
                    if column.alias not in probe_aliases:
                        self._flag(
                            "unbound-probe",
                            node,
                            f"SARG value references {column} but only "
                            f"{sorted(probe_aliases)} are available from "
                            "the outer side",
                        )

    def _check_column_binding(self, node: PlanNode, column: BoundColumn) -> None:
        scan = self._scans.get(column.alias)
        if scan is None:
            return  # flagged by the caller's alias check
        table = scan.table
        if not 0 <= column.position < len(table.columns):
            self._flag(
                "unbound-column",
                node,
                f"{column} position {column.position} is out of range for "
                f"{table.name!r}",
            )
            return
        defined = table.columns[column.position]
        if defined.name != column.column_name or table.name != column.table_name:
            self._flag(
                "unbound-column",
                node,
                f"{column} does not resolve: position {column.position} of "
                f"{table.name!r} is {defined.name!r}",
            )

    # -- joins ------------------------------------------------------------------

    def _check_nested_loop(self, node: NestedLoopJoinNode) -> frozenset[str]:
        outer = self._walk(node.outer)
        if not isinstance(node.inner, ScanNode):
            self._flag(
                "bad-inner",
                node,
                "nested-loop inner must be a single-relation scan, got "
                f"{type(node.inner).__name__}",
            )
            inner = self._walk(node.inner)
        else:
            inner = self._walk(node.inner, probe_aliases=outer)
        if outer & inner:
            self._flag(
                "duplicate-alias",
                node,
                f"outer and inner both produce {sorted(outer & inner)}",
            )
        combined = outer | inner
        self._check_residual(node, node.residual, combined)
        self._check_order_claim(node, node.order_columns, node.outer.order_columns)
        return combined

    def _check_merge_join(self, node: MergeJoinNode) -> frozenset[str]:
        outer = self._walk(node.outer)
        inner = self._walk(node.inner)
        if outer & inner:
            self._flag(
                "duplicate-alias",
                node,
                f"outer and inner both produce {sorted(outer & inner)}",
            )
        combined = outer | inner
        for column, side, aliases in (
            (node.outer_column, "outer", outer),
            (node.inner_column, "inner", inner),
        ):
            if column.alias not in aliases:
                self._flag(
                    "unbound-join-column",
                    node,
                    f"{side} merge column {column} is not produced by the "
                    f"{side} input ({sorted(aliases)})",
                )
            else:
                self._check_column_binding(node, column)
        self._check_merge_order(node, node.outer, node.outer_column, "outer")
        self._check_merge_order(node, node.inner, node.inner_column, "inner")
        self._check_residual(node, node.residual, combined)
        self._sites.append(
            _Site(
                "merge",
                node.label(),
                merge_columns=frozenset((node.outer_column, node.inner_column)),
            )
        )
        self._check_order_claim(
            node,
            node.order_columns,
            ((node.outer_column.alias, node.outer_column.position),),
        )
        return combined

    def _check_hash_join(self, node: HashJoinNode) -> frozenset[str]:
        outer = self._walk(node.outer)
        if not isinstance(node.inner, ScanNode):
            self._flag(
                "bad-inner",
                node,
                "hash-join build side must be a single-relation scan, got "
                f"{type(node.inner).__name__}",
            )
        inner = self._walk(node.inner)
        if outer & inner:
            self._flag(
                "duplicate-alias",
                node,
                f"outer and inner both produce {sorted(outer & inner)}",
            )
        combined = outer | inner
        if not node.keys:
            self._flag(
                "hash-no-keys",
                node,
                "hash join carries no equijoin key pairs",
            )
        for outer_column, inner_column in node.keys:
            for column, side, aliases in (
                (outer_column, "probe", outer),
                (inner_column, "build", inner),
            ):
                if column.alias not in aliases:
                    self._flag(
                        "unbound-join-column",
                        node,
                        f"{side} hash key {column} is not produced by the "
                        f"{side} input ({sorted(aliases)})",
                    )
                else:
                    self._check_column_binding(node, column)
            self._sites.append(
                _Site(
                    "hash",
                    node.label(),
                    merge_columns=frozenset((outer_column, inner_column)),
                )
            )
        self._check_residual(node, node.residual, combined)
        if node.partitions < 1:
            self._flag(
                "bad-partitions",
                node,
                f"hash join claims {node.partitions} grace partitions",
            )
        if node.order_columns:
            self._flag(
                "phantom-order",
                node,
                "hash joins produce no order but the node claims "
                f"{node.order_columns}",
            )
        return combined

    def _check_merge_order(
        self,
        node: MergeJoinNode,
        child: PlanNode,
        column: BoundColumn,
        side: str,
    ) -> None:
        """A merge input must be ordered on its join column's order class."""
        if not child.order_columns:
            self._flag(
                "merge-unordered-input",
                node,
                f"{side} input {child.label()!r} carries no order but the "
                f"merge consumes an order on {column}",
            )
            return
        produced = child.order_columns[0]
        wanted = (column.alias, column.position)
        if produced == wanted:
            return
        if self._orders is not None and self._orders.class_of(
            produced
        ) == self._orders.class_of(wanted):
            return
        self._flag(
            "merge-wrong-order",
            node,
            f"{side} input is ordered on {produced} which is not in the "
            f"order equivalence class of {column}",
        )

    def _check_residual(
        self, node: PlanNode, residual: list[ast.Expr], available: frozenset[str]
    ) -> None:
        for expr in residual:
            for column in self._local_columns(expr):
                if column.alias not in available:
                    self._flag(
                        "unbound-residual",
                        node,
                        f"residual {expr} references {column} but this join "
                        f"only produces {sorted(available)}",
                    )
            self._sites.append(_Site("residual", node.label(), expr=expr))

    # -- sorting / aggregation / projection ------------------------------------

    def _check_sort(self, node: SortNode) -> frozenset[str]:
        produced = self._walk(node.child)
        for column, __ in node.keys:
            if column.alias not in produced:
                self._flag(
                    "unbound-sort-key",
                    node,
                    f"sort key {column} is not produced by the child "
                    f"({sorted(produced)})",
                )
            else:
                self._check_column_binding(node, column)
        expected = tuple((column.alias, column.position) for column, __ in node.keys)
        if node.order_columns != expected:
            self._flag(
                "phantom-order",
                node,
                f"sort claims order {node.order_columns} but its keys are "
                f"{expected}",
            )
        return produced

    def _check_filter(self, node: FilterNode) -> frozenset[str]:
        produced = self._walk(node.child)
        for expr in node.predicates:
            for column in self._local_columns(expr):
                if column.alias not in produced:
                    self._flag(
                        "unbound-filter",
                        node,
                        f"filter {expr} references {column} but the child "
                        f"only produces {sorted(produced)}",
                    )
            self._sites.append(_Site("filter", node.label(), expr=expr))
        self._check_order_claim(node, node.order_columns, node.child.order_columns)
        return produced

    def _check_aggregate(self, node: AggregateNode) -> frozenset[str]:
        produced = self._walk(node.child)
        for column in node.group_by:
            if column.alias not in produced:
                self._flag(
                    "unbound-group-key",
                    node,
                    f"grouping column {column} is not produced by the child",
                )
            else:
                self._check_column_binding(node, column)
        if node.group_by:
            wanted = tuple(
                (column.alias, column.position) for column in node.group_by
            )
            child_order = node.child.order_columns[: len(wanted)]
            if not self._order_satisfies(child_order, wanted):
                self._flag(
                    "group-order-missing",
                    node,
                    f"grouping needs order {wanted} but the child produces "
                    f"{node.child.order_columns}",
                )
        return produced

    def _check_project(self, node: ProjectNode) -> frozenset[str]:
        produced = self._walk(node.child)
        if len(node.exprs) != len(node.names):
            self._flag(
                "project-arity",
                node,
                f"{len(node.exprs)} expressions but {len(node.names)} names",
            )
        return produced

    def _check_distinct(self, node: DistinctNode) -> frozenset[str]:
        if not isinstance(node.child, ProjectNode):
            self._flag(
                "distinct-below-project",
                node,
                "DISTINCT must apply to fully-projected rows, got "
                f"{type(node.child).__name__}",
            )
        return self._walk(node.child)

    # -- order claims ------------------------------------------------------------

    def _order_satisfies(
        self,
        produced: tuple[tuple[str, int], ...],
        wanted: tuple[tuple[str, int], ...],
    ) -> bool:
        """Prefix satisfaction modulo order equivalence classes."""
        if len(produced) < len(wanted):
            return False
        for have, want in zip(produced, wanted):
            if have == want:
                continue
            if self._orders is None or self._orders.class_of(
                have
            ) != self._orders.class_of(want):
                return False
        return True

    def _check_order_claim(
        self,
        node: PlanNode,
        claimed: tuple[tuple[str, int], ...],
        available: tuple[tuple[str, int], ...],
    ) -> None:
        """A node may not claim more order than its input establishes."""
        if not claimed:
            return
        if not self._order_satisfies(available[: len(claimed)], claimed):
            self._flag(
                "phantom-order",
                node,
                f"claimed order {claimed} is not established by the input "
                f"order {available}",
            )

    # -- predicate partition -----------------------------------------------------

    def _check_partition(self, factors: list[BooleanFactor]) -> None:
        """Applied predicates must partition the WHERE clause's factors."""
        remaining = list(self._sites)
        matched: list[tuple[BooleanFactor, _Site]] = []
        for factor in factors:
            site = next(
                (s for s in remaining if _factor_matches_site(factor, s)), None
            )
            if site is None:
                self._flag(
                    "dropped-predicate",
                    None,
                    f"boolean factor {factor} is not applied anywhere in "
                    "the plan",
                )
                continue
            remaining.remove(site)
            matched.append((factor, site))
        for factor, __ in matched:
            extra = next(
                (s for s in remaining if _factor_matches_site(factor, s)), None
            )
            if extra is not None:
                remaining.remove(extra)
                self._flag(
                    "double-applied-predicate",
                    None,
                    f"boolean factor {factor} is applied more than once "
                    f"(again at {extra.where})",
                )
        for site in remaining:
            self._flag(
                "unknown-predicate",
                None,
                f"{site.kind} at {site.where} enforces a predicate that is "
                "not a boolean factor of the WHERE clause",
            )

    # -- bookkeeping -------------------------------------------------------------

    def _local_columns(self, expr: ast.Expr) -> list[BoundColumn]:
        """Same-block bound columns referenced anywhere in an expression."""
        if self._block is None:
            return [
                n for n in ast.walk_expr(expr) if isinstance(n, BoundColumn)
            ]
        return [
            n
            for n in ast.walk_expr(expr)
            if isinstance(n, BoundColumn)
            and n.block_id == self._block.block_id
        ]

    def _flag(self, rule: str, node: PlanNode | None, message: str) -> None:
        where = node.label() if node is not None else "<statement>"
        self.violations.append(Violation(rule, where, message))


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def check_plan(
    root: PlanNode,
    catalog: Catalog,
    block: BoundQueryBlock | None = None,
    factors: list[BooleanFactor] | None = None,
) -> list[Violation]:
    """Check one plan tree; block/factors enable the block-level checks."""
    checker = _Checker(catalog, block, factors)
    checker.check(root)
    return checker.violations


def check_statement(
    planned: PlannedStatement, catalog: Catalog
) -> list[Violation]:
    """Check a planned statement and every nested block's plan."""
    violations = check_plan(planned.root, catalog, planned.block, planned.factors)
    seen: set[int] = set()
    for sub in planned.subquery_plans.values():
        if id(sub) in seen:
            continue
        seen.add(id(sub))
        violations.extend(
            check_plan(sub.root, catalog, sub.block, sub.factors)
        )
    return violations


def verify_planned(planned: PlannedStatement, catalog: Catalog) -> None:
    """Full static verification of one planned statement; raises on failure.

    Runs the structural plan check, the cost audit, and — when the search
    recorded its pruning decisions — the DP prune audit.  This is the hook
    behind the ``REPRO_CHECK=1`` environment flag.
    """
    from .cost_audit import audit_search_stats, audit_statement

    violations = check_statement(planned, catalog)
    violations.extend(audit_statement(planned, catalog))
    seen: set[int] = set()
    for statement in [planned, *planned.subquery_plans.values()]:
        if id(statement) in seen or statement.search_stats is None:
            continue
        seen.add(id(statement))
        violations.extend(audit_search_stats(statement.search_stats))
    if violations:
        raise PlanCheckError(violations)
