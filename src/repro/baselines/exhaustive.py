"""Exhaustive plan enumeration: the ground truth for plan quality (E9).

Enumerates every left-deep plan — all join orders (Cartesian products
included), every access path for the leading relation, every inner access
path for each nested-loop step, and the sort-both-sides merge join for each
equi-join predicate — then lets the caller cost or *execute* each plan to
determine the true optimum the paper's conclusion refers to.

This is factorial work; it is only feasible for the small FROM lists the
experiments use, which is exactly why the real optimizer exists.
"""

from __future__ import annotations

import itertools

from ..catalog.catalog import Catalog
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.plan import PlanNode
from ..optimizer.planner import Optimizer, PlannedStatement
from ..optimizer.predicates import to_cnf_factors
from .common import LeftDeepBuilder

DEFAULT_MAX_PLANS = 2000


class ExhaustivePlanner:
    """Enumerates all candidate plans for a query block."""

    def __init__(self, optimizer: Optimizer, catalog: Catalog):
        self._optimizer = optimizer
        self._catalog = catalog

    def enumerate_statements(
        self,
        block: BoundQueryBlock,
        max_plans: int = DEFAULT_MAX_PLANS,
    ) -> list[PlannedStatement]:
        """All candidate plans, each finished into a runnable statement."""
        factors = to_cnf_factors(block.where, block)
        builder = LeftDeepBuilder(
            block,
            factors,
            self._catalog,
            self._optimizer.estimator,
            self._optimizer.cost_model,
        )
        plans = self._enumerate_roots(builder, max_plans)
        return [
            self._optimizer.wrap_plan(block, factors, root) for root in plans
        ]

    def _enumerate_roots(
        self, builder: LeftDeepBuilder, max_plans: int
    ) -> list[PlanNode]:
        aliases = builder.block.aliases
        plans: list[PlanNode] = []
        for permutation in itertools.permutations(aliases):
            first, rest = permutation[0], permutation[1:]
            for candidate in builder.path_candidates(first):
                stack: list[tuple[PlanNode, frozenset[str], int]] = [
                    (candidate.node, frozenset({first}), 0)
                ]
                while stack:
                    plan, built, depth = stack.pop()
                    if depth == len(rest):
                        plans.append(plan)
                        if len(plans) >= max_plans:
                            return plans
                        continue
                    alias = rest[depth]
                    probes, __ = builder.probes_for(built, alias)
                    for inner in builder.path_candidates(alias, probes):
                        stack.append(
                            (
                                builder.nested_loop(plan, built, alias, inner),
                                built | {alias},
                                depth + 1,
                            )
                        )
                    for merge_factor in builder.equijoin_factors(built, alias):
                        stack.append(
                            (
                                builder.merge_with_sorts(
                                    plan, built, alias, merge_factor
                                ),
                                built | {alias},
                                depth + 1,
                            )
                        )
        return plans

    def plan_count_estimate(self, block: BoundQueryBlock) -> int:
        """A quick upper bound on the candidate space (for reporting)."""
        import math

        n = len(block.aliases)
        paths = 1
        for entry in block.tables:
            paths = max(paths, 1 + len(self._catalog.indexes_on(entry.table.name)))
        return math.factorial(n) * paths**n * 2 ** max(0, n - 1)
