"""Plan-equivalence gate: the bitmask DP must match the seed enumerator.

The optimizer hot path was rewritten around interned integer bitmasks and
memoized statistics.  That refactor must not change *what* the optimizer
decides, only how fast it decides it: for every relation subset, the new
search must keep the same interesting-order classes with the same costed
totals (within float tolerance — the seed multiplied selectivities in
``frozenset`` iteration order, so the products can differ in the last few
ulps) and the same search-effort statistics.  The frozen seed enumerator
lives in :mod:`tests._seed_joins`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.check import verifying_optimizer
from repro.optimizer.binder import Binder
from repro.optimizer.cost import CostModel
from repro.optimizer.joins import JoinSearch
from repro.optimizer.orders import InterestingOrders
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY, build_empdept
from repro.workloads.generator import (
    build_database,
    chain_join_query,
    clique_join_query,
    random_chain_spec,
    random_clique_spec,
    random_star_spec,
    star_join_query,
)

from ._seed_joins import SeedJoinSearch

#: Totals must agree to this relative tolerance.  The two enumerators
#: multiply the same selectivity factors in different orders, which is
#: enough to perturb the last bits of a float product.
REL_TOL = 1e-9


def _close(left: float, right: float) -> bool:
    scale = max(abs(left), abs(right), 1.0)
    return abs(left - right) <= REL_TOL * scale


def _run_search(search_class, db, sql, **kwargs):
    block = Binder(db.catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    orders = InterestingOrders(block, factors)
    model = CostModel(
        db.catalog, w=db.w, buffer_pages=db.storage.buffer.capacity
    )
    search = search_class(
        block,
        factors,
        db.catalog,
        SelectivityEstimator(db.catalog),
        model,
        orders,
        **kwargs,
    )
    search.search()
    return search, model


def assert_equivalent(db, sql, **kwargs) -> None:
    """Both enumerators agree on every subset's surviving solutions.

    The comparison runs on the search space the seed enumerator knows:
    nested loops and merge scans.  The hash-join method postdates the
    seed, so the mask search disables it here; hash plans have their own
    cost/plan audits and mode-equivalence tests.
    """
    seed, seed_model = _run_search(SeedJoinSearch, db, sql, **kwargs)
    mask, mask_model = _run_search(
        JoinSearch, db, sql, use_hash_join=False, **kwargs
    )

    # Identical search effort: the rewrite must not visit more or fewer
    # candidate plans than the seed.
    assert mask.stats.plans_considered == seed.stats.plans_considered
    assert mask.stats.entries_stored == seed.stats.entries_stored
    assert mask.stats.subsets_expanded == seed.stats.subsets_expanded
    assert (
        mask.stats.extensions_pruned_by_heuristic
        == seed.stats.extensions_pruned_by_heuristic
    )

    seed_by_subset = {aliases: entries for aliases, entries in seed.best.items()}
    mask_by_subset = {
        mask.aliases_of(key): entries for key, entries in mask.best.items()
    }
    assert set(mask_by_subset) == set(seed_by_subset)
    for aliases, seed_entries in seed_by_subset.items():
        mask_entries = mask_by_subset[aliases]
        assert set(mask_entries) == set(seed_entries), aliases
        for order_key, seed_entry in seed_entries.items():
            mask_entry = mask_entries[order_key]
            seed_total = seed_model.total(seed_entry.cost)
            mask_total = mask_model.total(mask_entry.cost)
            assert _close(seed_total, mask_total), (
                aliases,
                order_key,
                seed_total,
                mask_total,
            )
            assert _close(seed_entry.rows, mask_entry.rows)


# ---------------------------------------------------------------------------
# the paper's running examples (Figures 1-6 all plan over this database)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def empdept():
    return build_empdept(employees=800, departments=30, jobs=5, seed=11)


FIGURE_QUERIES = [
    # Fig. 1/6: the paper's three-way clerk/Denver join.
    FIG1_QUERY,
    # Fig. 2: single-relation access path selection, sargable predicate.
    "SELECT NAME FROM EMP WHERE DNO = 7",
    "SELECT NAME FROM EMP WHERE SAL > 500 ORDER BY DNO",
    # Fig. 4: two-way nested-loop shape.
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO",
    # Fig. 5: merge-join shape with an interesting final order.
    "SELECT NAME, DNAME FROM EMP, DEPT "
    "WHERE EMP.DNO = DEPT.DNO ORDER BY EMP.DNO",
    # Fig. 3: full search tree with a local predicate on each relation.
    "SELECT NAME, TITLE FROM EMP, DEPT, JOB "
    "WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB AND SAL > 300",
    # Grouping introduces an interesting order requirement.
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
]


@pytest.mark.parametrize("sql", FIGURE_QUERIES)
def test_figure_queries_equivalent(empdept, sql):
    assert_equivalent(empdept, sql)


@pytest.mark.parametrize("sql", [FIG1_QUERY, FIGURE_QUERIES[3]])
def test_figure_queries_equivalent_without_heuristic(empdept, sql):
    assert_equivalent(empdept, sql, use_heuristic=False)


def test_figure_query_equivalent_without_interesting_orders(empdept):
    assert_equivalent(empdept, FIG1_QUERY, use_interesting_orders=False)


def test_figure_queries_verify_under_repro_check(empdept):
    """The new enumerator's plans pass the full static audit stack."""
    optimizer = verifying_optimizer(empdept)
    for sql in FIGURE_QUERIES:
        planned = optimizer.plan_query(parse_statement(sql))
        assert planned.search_stats is not None


# ---------------------------------------------------------------------------
# generated workload sweep (chain / star / clique topologies)
# ---------------------------------------------------------------------------


def _workload(topology: str, relations: int, seed: int):
    rng = random.Random(seed)
    if topology == "chain":
        tables = random_chain_spec(relations, rng, min_rows=30, max_rows=200)
        sql = chain_join_query(tables)
    elif topology == "star":
        tables = random_star_spec(relations - 1, rng, fact_rows=300)
        sql = star_join_query(tables)
    else:
        tables = random_clique_spec(relations, rng, min_rows=30, max_rows=150)
        sql = clique_join_query(tables)
    return build_database(tables, seed=seed), sql


@pytest.mark.parametrize("topology", ["chain", "star", "clique"])
@pytest.mark.parametrize("relations", [2, 3, 5])
def test_generated_workloads_equivalent(topology, relations):
    db, sql = _workload(topology, relations, seed=relations * 17 + 3)
    assert_equivalent(db, sql)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    topology=st.sampled_from(["chain", "star", "clique"]),
    relations=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_equivalence_sweep(topology, relations, seed):
    db, sql = _workload(topology, relations, seed)
    assert_equivalent(db, sql)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    relations=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_sweep_verifies_under_repro_check(relations, seed):
    """REPRO_CHECK-style audits stay green on generated workloads."""
    db, sql = _workload("chain", relations, seed)
    planned = verifying_optimizer(db).plan_query(parse_statement(sql))
    stats = planned.search_stats
    assert stats is not None
    assert stats.survivor_totals  # record_prunes path exercised
